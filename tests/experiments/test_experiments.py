"""Tests for the experiment drivers (tiny configurations).

Each driver runs end to end at a miniature scale, checking output
structure and — where cheap enough — the paper's qualitative claims.
Full-shape checks live in the benchmark harness.
"""

import numpy as np
import pytest

from repro.errors import MosaicError
from repro.experiments import figure5, figure6, figure7, table1, visibility_table
from repro.experiments.ascii_plot import ascii_bars, ascii_scatter
from repro.experiments.harness import ExperimentResult, render_table
from repro.experiments.registry import get, names, run_experiment
from repro.generative.mswg import MswgConfig
from repro.workloads.flights import FlightsConfig
from repro.workloads.migrants import MigrantsConfig
from repro.workloads.spiral import SpiralConfig


def tiny_mswg(**overrides):
    base = dict(
        hidden_layers=2,
        hidden_units=16,
        latent_dim=2,
        lambda_coverage=0.01,
        num_projections=8,
        batch_size=64,
        epochs=2,
        steps_per_epoch=2,
        seed=0,
    )
    base.update(overrides)
    return MswgConfig(**base)


class TestHarness:
    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "b": "xy"}, {"a": 22, "c": 3.5}])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0] and "c" in lines[0]
        assert len(lines) == 4

    def test_render_empty(self):
        assert render_table([]) == "(no rows)"

    def test_result_render_contains_sections(self):
        result = ExperimentResult("x", "title", rows=[{"v": 1}])
        result.add_section("extra", "body text")
        rendered = result.render()
        assert "== x: title ==" in rendered
        assert "extra" in rendered and "body text" in rendered


class TestAsciiPlots:
    def test_scatter_contains_legend_and_points(self):
        rng = np.random.default_rng(0)
        text = ascii_scatter(rng.random(50), rng.random(50))
        assert "legend" in text
        assert "." in text

    def test_scatter_overlay_symbols(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 1.0])
        text = ascii_scatter(x, y, x, y)
        assert "@" in text  # overlap marker

    def test_bars(self):
        text = ascii_bars(["a", "bb"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[1].count("#") > lines[0].count("#")


class TestFigure5:
    def test_runs_and_reports_both_datasets(self):
        config = figure5.Figure5Config(
            spiral=SpiralConfig(population_size=2_000, sample_size=400),
            mswg=tiny_mswg(),
            generated_rows=400,
        )
        result = figure5.run(config)
        assert [row["dataset"] for row in result.rows] == [
            "biased sample",
            "M-SWG generated",
        ]
        assert len(result.sections) == 2
        for row in result.rows:
            assert np.isfinite(row["W1_x"])
            assert np.isfinite(row["sliced_W1_to_population"])


class TestFigure6:
    def test_structure(self):
        config = figure6.Figure6Config(
            spiral=SpiralConfig(population_size=2_000, sample_size=400),
            mswg=tiny_mswg(),
            coverages=(0.3, 0.8),
            queries_per_coverage=10,
            generated_samples=2,
        )
        result = figure6.run(config)
        assert len(result.rows) == 4  # 2 coverages x 2 methods
        methods = {row["method"] for row in result.rows}
        assert methods == {"Unif", "M-SWG"}
        for row in result.rows:
            assert row["p3"] <= row["median"] <= row["p97"]


class TestFigure7:
    @pytest.fixture(scope="class")
    def result_continuous(self):
        config = figure7.Figure7Config(
            flights=FlightsConfig(rows=8_000),
            mswg=tiny_mswg(latent_dim=None, lambda_coverage=1e-7),
            generated_samples=2,
            queries="continuous",
        )
        return figure7.run(config)

    def test_queries_1_to_4(self, result_continuous):
        assert [row["query"] for row in result_continuous.rows] == ["1", "2", "3", "4"]

    def test_all_methods_reported(self, result_continuous):
        for row in result_continuous.rows:
            assert set(row) >= {"Unif", "IPF", "M-SWG"}

    def test_unif_nearly_exact_on_bias_aligned_query(self, result_continuous):
        """Query 1's predicate matches the sample bias: Unif error tiny."""
        row = result_continuous.rows[0]
        assert row["Unif"] < 5.0

    def test_categorical_variant(self):
        config = figure7.Figure7Config(
            flights=FlightsConfig(rows=8_000),
            mswg=tiny_mswg(latent_dim=None, lambda_coverage=1e-7),
            generated_samples=2,
            queries="categorical",
        )
        result = figure7.run(config)
        assert [row["query"] for row in result.rows] == ["5", "6", "7", "8"]
        assert "Unif_groups" in result.rows[0]


class TestTable1:
    def test_dims_match_paper(self):
        result = table1.run(table1.Table1Config(flights=FlightsConfig(rows=5_000)))
        by_attr = {row["Flights"]: row for row in result.rows}
        assert by_attr["carrier"]["M-SWG Dim"] == 14
        for attr in ("taxi_out", "taxi_in", "elapsed_time", "distance"):
            assert by_attr[attr]["M-SWG Dim"] == 1
        assert all(row["match"] for row in result.rows)
        assert result.params["total_width"] == 18  # the paper's "18 dimensional space"


class TestVisibilityTable:
    @pytest.fixture(scope="class")
    def result(self):
        config = visibility_table.VisibilityTableConfig(
            migrants=MigrantsConfig(
                country_counts={"UK": 1500, "FR": 800, "DE": 900, "ES": 400}
            ),
            open_repetitions=3,
        )
        return visibility_table.run(config)

    def test_closed_and_semi_open_no_false_positives(self, result):
        for row in result.rows:
            if row["visibility"] in ("CLOSED", "SEMI-OPEN"):
                assert row["false_positive_groups"] == 0

    def test_open_fewer_false_negatives(self, result):
        by_visibility = {row["visibility"]: row for row in result.rows}
        assert (
            by_visibility["OPEN"]["false_negative_groups"]
            <= by_visibility["CLOSED"]["false_negative_groups"]
        )

    def test_closed_equals_semi_open_fn(self, result):
        by_visibility = {row["visibility"]: row for row in result.rows}
        assert (
            by_visibility["CLOSED"]["false_negative_groups"]
            == by_visibility["SEMI-OPEN"]["false_negative_groups"]
        )


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(names()) == {
            "figure5",
            "figure6",
            "figure7_continuous",
            "figure7_categorical",
            "random_queries",
            "table1",
            "visibility_table",
        }

    def test_get_unknown_raises(self):
        with pytest.raises(MosaicError, match="unknown experiment"):
            get("figure99")

    def test_run_experiment_bad_scale(self):
        with pytest.raises(MosaicError, match="unknown scale"):
            run_experiment("table1", scale="huge")

    def test_run_experiment_quick_table1(self):
        result = run_experiment("table1", scale="quick")
        assert result.experiment_id == "table1"


class TestCli:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure6" in out

    def test_run_and_write(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_file = tmp_path / "result.txt"
        assert main(["table1", "--out", str(out_file)]) == 0
        assert "Flights" in out_file.read_text()
