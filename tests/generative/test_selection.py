"""Tests for M-SWG model selection (grid search + restarts)."""

import numpy as np
import pytest

from repro.catalog.metadata import Marginal
from repro.generative.mswg import MSWG, MswgConfig
from repro.generative.selection import (
    CandidateScore,
    paper_grid,
    score_model,
    select_model,
)
from repro.relational.relation import Relation
from repro.workloads.queries import random_template_queries


def tiny(**overrides):
    base = dict(
        hidden_layers=2,
        hidden_units=16,
        latent_dim=1,
        lambda_coverage=0.01,
        num_projections=8,
        batch_size=64,
        epochs=4,
        steps_per_epoch=3,
        seed=0,
    )
    base.update(overrides)
    return MswgConfig(**base)


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(0)
    population = Relation.from_dict(
        {
            "taxi_out": np.round(rng.gamma(2.0, 6.0, size=3000) + 8),
            "elapsed_time": np.round(rng.gamma(3.0, 40.0, size=3000) + 40),
        }
    )
    biased = population.filter(population.column("elapsed_time") > 150).head(400)
    marginals = [
        Marginal.from_data(population, ["taxi_out"]),
        Marginal.from_data(population, ["elapsed_time"]),
    ]
    queries = random_template_queries(
        np.random.default_rng(1), 20, attributes=("taxi_out", "elapsed_time")
    )
    return population, biased, marginals, queries


class TestPaperGrid:
    def test_grid_size_matches_paper_pruning(self):
        grid = paper_grid(tiny())
        # layers x units = {3,5,10} x {50,200} minus (10,200) and (3,50)
        # leaves 4 combinations, each with two lambdas.
        assert len(grid) == 8
        combos = {(c.hidden_layers, c.hidden_units) for c in grid}
        assert (10, 200) not in combos
        assert (3, 50) not in combos
        assert {(5, 50), (5, 200), (3, 200), (10, 50)} == combos

    def test_lambdas(self):
        lams = {c.lambda_coverage for c in paper_grid(tiny())}
        assert lams == {1e-6, 1e-7}


class TestScoreModel:
    def test_score_is_finite_for_fitted_model(self, case):
        population, biased, marginals, queries = case
        model = MSWG(tiny())
        model.fit(biased, marginals)
        score = score_model(
            model, queries, population, population.num_rows,
            rng=np.random.default_rng(2),
        )
        assert isinstance(score, CandidateScore)
        assert np.isfinite(score.mean_error)
        assert score.answered_queries > 0
        assert "layers=2" in score.describe()


class TestSelectModel:
    def test_returns_best_of_grid(self, case):
        population, biased, marginals, queries = case
        grid = [tiny(seed=0), tiny(seed=1, hidden_units=24)]
        best, scores = select_model(
            biased, marginals, queries, population, population.num_rows,
            grid=grid, restarts=2, rng=np.random.default_rng(3),
        )
        # grid points + (restarts - 1) reruns of the winner.
        assert len(scores) == 3
        best_error = min(s.mean_error for s in scores)
        fitted_score = score_model(
            best, queries, population, population.num_rows,
            rng=np.random.default_rng(3),
        )
        assert np.isfinite(fitted_score.mean_error)
        assert best_error <= min(s.mean_error for s in scores[:2]) + 1e-9
