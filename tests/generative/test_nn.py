"""Gradient checks and unit tests for the numpy NN substrate.

Every layer's analytic backward pass is verified against central finite
differences, both for input gradients and parameter gradients.
"""

import numpy as np
import pytest

from repro.errors import GenerativeModelError
from repro.generative.nn import (
    BatchNorm1d,
    BlockSoftmax,
    Linear,
    ReLU,
    Sequential,
)
from repro.generative.optim import Adam, ReduceLROnPlateau


def numeric_grad_input(module, x, upstream, eps=1e-6):
    """Central finite-difference gradient of sum(out * upstream) w.r.t. x."""
    grad = np.zeros_like(x)
    flat = grad.ravel()
    x_flat = x.ravel()
    for i in range(x_flat.size):
        original = x_flat[i]
        x_flat[i] = original + eps
        up = np.sum(module.forward(x) * upstream)
        x_flat[i] = original - eps
        down = np.sum(module.forward(x) * upstream)
        x_flat[i] = original
        flat[i] = (up - down) / (2 * eps)
    return grad


def numeric_grad_param(module, x, upstream, parameter, eps=1e-6):
    grad = np.zeros_like(parameter.value)
    flat = grad.ravel()
    p_flat = parameter.value.ravel()
    for i in range(p_flat.size):
        original = p_flat[i]
        p_flat[i] = original + eps
        up = np.sum(module.forward(x) * upstream)
        p_flat[i] = original - eps
        down = np.sum(module.forward(x) * upstream)
        p_flat[i] = original
        flat[i] = (up - down) / (2 * eps)
    return grad


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_input_gradient(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(5, 4))
        upstream = rng.normal(size=(5, 3))
        layer.forward(x)
        analytic = layer.backward(upstream)
        numeric = numeric_grad_input(layer, x, upstream)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_parameter_gradients(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(5, 4))
        upstream = rng.normal(size=(5, 3))
        layer.zero_grad()
        layer.forward(x)
        layer.backward(upstream)
        assert np.allclose(
            layer.weight.grad, numeric_grad_param(layer, x, upstream, layer.weight), atol=1e-6
        )
        assert np.allclose(
            layer.bias.grad, numeric_grad_param(layer, x, upstream, layer.bias), atol=1e-6
        )

    def test_backward_without_forward_raises(self, rng):
        layer = Linear(2, 2, rng)
        with pytest.raises(GenerativeModelError, match="without a matching forward"):
            layer.backward(np.ones((1, 2)))

    def test_unknown_init_rejected(self, rng):
        with pytest.raises(ValueError):
            Linear(2, 2, rng, init="magic")


class TestReLU:
    def test_forward(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0], [0.0, -3.0]]))
        assert out.tolist() == [[0.0, 2.0], [0.0, 0.0]]

    def test_gradient_masks_negatives(self, rng):
        layer = ReLU()
        x = rng.normal(size=(6, 4)) + 0.05  # keep away from the kink
        upstream = rng.normal(size=(6, 4))
        layer.forward(x)
        analytic = layer.backward(upstream)
        numeric = numeric_grad_input(layer, x, upstream)
        assert np.allclose(analytic, numeric, atol=1e-6)


class TestBlockSoftmax:
    def test_rows_sum_to_one_inside_block(self, rng):
        layer = BlockSoftmax([(0, 3)])
        out = layer.forward(rng.normal(size=(4, 5)))
        assert np.allclose(out[:, :3].sum(axis=1), 1.0)
        # Identity outside the block.
        x = rng.normal(size=(4, 5))
        out = layer.forward(x)
        assert np.allclose(out[:, 3:], x[:, 3:])

    def test_gradient(self, rng):
        layer = BlockSoftmax([(0, 3), (3, 5)])
        x = rng.normal(size=(4, 6))
        upstream = rng.normal(size=(4, 6))
        layer.forward(x)
        analytic = layer.backward(upstream)
        numeric = numeric_grad_input(layer, x, upstream)
        assert np.allclose(analytic, numeric, atol=1e-6)

    def test_harden(self, rng):
        layer = BlockSoftmax([(0, 3)])
        soft = layer.forward(rng.normal(size=(4, 4)))
        hard = layer.harden(soft)
        assert set(np.unique(hard[:, :3])) <= {0.0, 1.0}
        assert np.allclose(hard[:, :3].sum(axis=1), 1.0)
        assert np.allclose(hard[:, 3], soft[:, 3])

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(GenerativeModelError, match="overlap"):
            BlockSoftmax([(0, 3), (2, 5)])

    def test_empty_block_rejected(self):
        with pytest.raises(GenerativeModelError, match="empty"):
            BlockSoftmax([(3, 3)])


class TestBatchNorm:
    def test_training_output_normalised(self, rng):
        layer = BatchNorm1d(4)
        out = layer.forward(rng.normal(loc=5.0, scale=3.0, size=(64, 4)))
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-8)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_input_gradient_training(self, rng):
        layer = BatchNorm1d(3)
        x = rng.normal(size=(8, 3))
        upstream = rng.normal(size=(8, 3))
        layer.forward(x)
        analytic = layer.backward(upstream)
        numeric = numeric_grad_input(layer, x, upstream)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_parameter_gradients(self, rng):
        layer = BatchNorm1d(3)
        x = rng.normal(size=(8, 3))
        upstream = rng.normal(size=(8, 3))
        layer.zero_grad()
        layer.forward(x)
        layer.backward(upstream)
        assert np.allclose(
            layer.gamma.grad, numeric_grad_param(layer, x, upstream, layer.gamma), atol=1e-5
        )
        assert np.allclose(
            layer.beta.grad, numeric_grad_param(layer, x, upstream, layer.beta), atol=1e-5
        )

    def test_eval_mode_uses_running_stats(self, rng):
        layer = BatchNorm1d(2, momentum=0.5)
        for _ in range(20):
            layer.forward(rng.normal(loc=2.0, size=(32, 2)))
        layer.eval()
        out = layer.forward(np.full((4, 2), 2.0))
        # Input at the running mean maps near zero.
        assert np.allclose(out, 0.0, atol=0.35)


class TestSequential:
    def test_end_to_end_gradient(self, rng):
        net = Sequential(
            Linear(3, 8, rng),
            BatchNorm1d(8),
            ReLU(),
            Linear(8, 4, rng, init="xavier"),
            BlockSoftmax([(0, 2)]),
        )
        x = rng.normal(size=(10, 3))
        upstream = rng.normal(size=(10, 4))
        net.forward(x)
        analytic = net.backward(upstream)
        numeric = numeric_grad_input(net, x, upstream)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng), BatchNorm1d(2))
        net.eval()
        assert all(not layer.training for layer in net.layers)
        net.train()
        assert all(layer.training for layer in net.layers)

    def test_parameters_enumerated(self, rng):
        net = Sequential(Linear(2, 3, rng), BatchNorm1d(3), ReLU(), Linear(3, 1, rng))
        assert len(list(net.parameters())) == 6  # 2x(W,b) + (gamma,beta)


class TestAdam:
    def test_minimises_quadratic(self, rng):
        from repro.generative.nn.module import Parameter

        p = Parameter(np.array([5.0, -3.0]))
        optimizer = Adam([p], learning_rate=0.1)
        for _ in range(500):
            p.zero_grad()
            p.grad += 2.0 * p.value  # d/dp ||p||²
            optimizer.step()
        assert np.allclose(p.value, 0.0, atol=1e-3)

    def test_zero_grad(self, rng):
        from repro.generative.nn.module import Parameter

        p = Parameter(np.ones(2))
        p.grad += 5.0
        optimizer = Adam([p])
        optimizer.zero_grad()
        assert np.all(p.grad == 0)


class TestScheduler:
    def make(self, patience=2):
        from repro.generative.nn.module import Parameter

        optimizer = Adam([Parameter(np.zeros(1))], learning_rate=1.0)
        return optimizer, ReduceLROnPlateau(optimizer, factor=0.1, patience=patience)

    def test_decays_after_patience(self):
        optimizer, scheduler = self.make(patience=2)
        scheduler.step(1.0)
        assert not scheduler.step(1.0)  # stale 1
        assert not scheduler.step(1.0)  # stale 2
        assert scheduler.step(1.0)      # stale 3 > patience -> decay
        assert optimizer.learning_rate == pytest.approx(0.1)

    def test_improvement_resets(self):
        optimizer, scheduler = self.make(patience=1)
        scheduler.step(1.0)
        scheduler.step(1.0)
        scheduler.step(0.5)  # improvement
        assert not scheduler.step(0.5)
        assert optimizer.learning_rate == 1.0

    def test_min_lr_floor(self):
        optimizer, scheduler = self.make(patience=0)
        optimizer.learning_rate = 1e-7
        scheduler.step(1.0)
        assert not scheduler.step(1.0)  # cannot go below floor
        assert optimizer.learning_rate == pytest.approx(1e-7)

    def test_bad_factor_rejected(self):
        optimizer, _ = self.make()
        with pytest.raises(ValueError):
            ReduceLROnPlateau(optimizer, factor=1.5)
