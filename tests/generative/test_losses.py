"""Unit + gradient tests for the M-SWG loss terms."""

import numpy as np
import pytest
from scipy.stats import wasserstein_distance

from repro.errors import GenerativeModelError
from repro.generative.losses import (
    CoveragePenalty,
    QuantileMatchingLoss,
    SlicedMarginalLoss,
    WeightedQuantileFunction,
    random_unit_projections,
    wasserstein_1d,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestWeightedQuantileFunction:
    def test_unweighted_median(self):
        qf = WeightedQuantileFunction(np.array([1.0, 2.0, 3.0]))
        assert qf(np.array([0.5]))[0] == 2.0

    def test_weighted_shifts_quantiles(self):
        qf = WeightedQuantileFunction(np.array([0.0, 10.0]), np.array([9.0, 1.0]))
        assert qf(np.array([0.5]))[0] == 0.0
        assert qf(np.array([0.95]))[0] == 10.0

    def test_extremes(self):
        qf = WeightedQuantileFunction(np.array([5.0, 1.0, 3.0]))
        assert qf(np.array([0.0]))[0] == 1.0
        assert qf(np.array([1.0]))[0] == 5.0

    def test_validation(self):
        with pytest.raises(GenerativeModelError):
            WeightedQuantileFunction(np.array([]))
        with pytest.raises(GenerativeModelError):
            WeightedQuantileFunction(np.array([1.0]), np.array([-1.0]))
        with pytest.raises(GenerativeModelError):
            WeightedQuantileFunction(np.array([1.0]), np.array([0.0]))


class TestExactWasserstein:
    def test_identical_distributions(self, rng):
        values = rng.normal(size=50)
        assert wasserstein_1d(values, values) == pytest.approx(0.0, abs=1e-12)

    def test_translation(self):
        a = np.array([0.0, 1.0, 2.0])
        assert wasserstein_1d(a, a + 3.0) == pytest.approx(3.0)

    def test_matches_scipy_unweighted(self, rng):
        u, v = rng.normal(size=40), rng.normal(loc=1.0, size=60)
        assert wasserstein_1d(u, v) == pytest.approx(wasserstein_distance(u, v), rel=1e-9)

    def test_matches_scipy_weighted(self, rng):
        u, v = rng.normal(size=30), rng.normal(size=45)
        uw, vw = rng.random(30) + 0.1, rng.random(45) + 0.1
        expected = wasserstein_distance(u, v, u_weights=uw, v_weights=vw)
        assert wasserstein_1d(u, v, uw, vw) == pytest.approx(expected, rel=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(GenerativeModelError):
            wasserstein_1d(np.array([]), np.array([1.0]))


class TestQuantileMatchingLoss:
    def test_zero_loss_on_matching_batch(self):
        target = np.arange(10, dtype=float)
        loss = QuantileMatchingLoss(target, None, batch_size=10)
        # Batch equal to the target quantiles at (j-0.5)/10.
        batch = loss.target_quantiles.copy()
        value, grad = loss.loss_and_grad(batch)
        assert value == pytest.approx(0.0)
        assert np.allclose(grad, 0.0)

    def test_gradient_matches_finite_difference(self, rng):
        target = rng.normal(size=30)
        loss = QuantileMatchingLoss(target, None, batch_size=12)
        x = rng.normal(size=12)
        _, analytic = loss.loss_and_grad(x)
        numeric = np.zeros_like(x)
        eps = 1e-6
        for i in range(12):
            xp, xm = x.copy(), x.copy()
            xp[i] += eps
            xm[i] -= eps
            numeric[i] = (loss.loss_and_grad(xp)[0] - loss.loss_and_grad(xm)[0]) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_gradient_descent_reduces_exact_w1(self, rng):
        """Following the surrogate gradient shrinks the true W1 distance."""
        target = rng.normal(loc=5.0, size=200)
        loss = QuantileMatchingLoss(target, None, batch_size=50)
        x = rng.normal(size=50)
        before = wasserstein_1d(x, target)
        # grad = 2*diff/n, so a step of 0.4*n*grad = 0.8*diff contracts the
        # gap by 0.2 per iteration.
        for _ in range(200):
            _, grad = loss.loss_and_grad(x)
            x = x - 0.4 * grad * 50
        after = wasserstein_1d(x, target)
        assert after < before * 0.1

    def test_l1_power(self, rng):
        target = rng.normal(size=20)
        loss = QuantileMatchingLoss(target, None, batch_size=8, power=1)
        x = rng.normal(size=8)
        value, grad = loss.loss_and_grad(x)
        assert value >= 0
        assert set(np.unique(np.sign(grad))) <= {-1.0, 0.0, 1.0}

    def test_weighted_target(self):
        # Mass concentrated at 0 -> most quantiles are 0.
        loss = QuantileMatchingLoss(
            np.array([0.0, 100.0]), np.array([99.0, 1.0]), batch_size=10
        )
        assert np.sum(loss.target_quantiles == 0.0) >= 9

    def test_shape_validation(self):
        loss = QuantileMatchingLoss(np.array([1.0]), None, batch_size=4)
        with pytest.raises(GenerativeModelError):
            loss.loss_and_grad(np.zeros(5))


class TestRandomProjections:
    def test_unit_norm(self, rng):
        proj = random_unit_projections(rng, dim=5, count=64)
        assert proj.shape == (64, 5)
        assert np.allclose(np.linalg.norm(proj, axis=1), 1.0)

    def test_invalid_arguments(self, rng):
        with pytest.raises(GenerativeModelError):
            random_unit_projections(rng, 0, 5)


class TestSlicedMarginalLoss:
    def make_loss(self, rng, batch=16, cells=25, dim=3, count=32):
        points = rng.normal(size=(cells, dim))
        masses = rng.random(cells) + 0.1
        projections = random_unit_projections(rng, dim, count)
        return SlicedMarginalLoss(points, masses, projections, batch), points, masses

    def test_gradient_matches_finite_difference(self, rng):
        loss, _, _ = self.make_loss(rng, batch=6, cells=10, dim=2, count=8)
        x = rng.normal(size=(6, 2))
        _, analytic = loss.loss_and_grad(x)
        numeric = np.zeros_like(x)
        eps = 1e-6
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                xp, xm = x.copy(), x.copy()
                xp[i, j] += eps
                xm[i, j] -= eps
                numeric[i, j] = (
                    loss.loss_and_grad(xp)[0] - loss.loss_and_grad(xm)[0]
                ) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_descent_moves_towards_target(self, rng):
        """Gradient steps shrink the sliced distance to the target cloud."""
        target = rng.normal(loc=[4.0, -2.0], size=(100, 2))
        projections = random_unit_projections(rng, 2, 64)
        loss = SlicedMarginalLoss(target, np.ones(100), projections, batch_size=64)
        x = rng.normal(size=(64, 2))
        first, _ = loss.loss_and_grad(x)
        for _ in range(300):
            value, grad = loss.loss_and_grad(x)
            x = x - 50.0 * grad
        last, _ = loss.loss_and_grad(x)
        assert last < first * 0.05
        # The generated cloud mean approaches the target mean.
        assert np.allclose(x.mean(axis=0), [4.0, -2.0], atol=0.5)

    def test_dimension_validation(self, rng):
        points = rng.normal(size=(5, 3))
        projections = random_unit_projections(rng, 2, 4)
        with pytest.raises(GenerativeModelError, match="does not match"):
            SlicedMarginalLoss(points, np.ones(5), projections, 8)

    def test_block_shape_validation(self, rng):
        loss, _, _ = self.make_loss(rng, batch=8, dim=3)
        with pytest.raises(GenerativeModelError):
            loss.loss_and_grad(np.zeros((8, 2)))


class TestCoveragePenalty:
    def test_zero_on_sample_points(self, rng):
        sample = rng.normal(size=(50, 3))
        penalty = CoveragePenalty(sample, lam=1.0)
        value, grad = penalty.loss_and_grad(sample[:10])
        assert value == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(grad, 0.0)

    def test_pulls_towards_nearest_sample(self, rng):
        sample = np.zeros((1, 2))
        penalty = CoveragePenalty(sample, lam=1.0)
        x = np.array([[3.0, 4.0]])
        value, grad = penalty.loss_and_grad(x)
        assert value == pytest.approx(25.0)  # squared distance
        # Gradient points away from the sample -> descending moves closer.
        assert np.allclose(grad, [[6.0, 8.0]])

    def test_norm_variant(self):
        penalty = CoveragePenalty(np.zeros((1, 2)), lam=2.0, squared=False)
        value, grad = penalty.loss_and_grad(np.array([[3.0, 4.0]]))
        assert value == pytest.approx(10.0)  # 2 * ||(3,4)||
        assert np.allclose(grad, [[2.0 * 3.0 / 5.0, 2.0 * 4.0 / 5.0]])

    def test_lambda_zero_is_free(self, rng):
        penalty = CoveragePenalty(rng.normal(size=(10, 2)), lam=0.0)
        value, grad = penalty.loss_and_grad(rng.normal(size=(5, 2)))
        assert value == 0.0
        assert np.allclose(grad, 0.0)

    def test_gradient_matches_finite_difference(self, rng):
        sample = rng.normal(size=(20, 2))
        penalty = CoveragePenalty(sample, lam=0.7)
        x = rng.normal(size=(4, 2)) * 3.0
        _, analytic = penalty.loss_and_grad(x)
        numeric = np.zeros_like(x)
        eps = 1e-6
        for i in range(4):
            for j in range(2):
                xp, xm = x.copy(), x.copy()
                xp[i, j] += eps
                xm[i, j] -= eps
                numeric[i, j] = (
                    penalty.loss_and_grad(xp)[0] - penalty.loss_and_grad(xm)[0]
                ) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_negative_lambda_rejected(self, rng):
        with pytest.raises(GenerativeModelError):
            CoveragePenalty(rng.normal(size=(5, 2)), lam=-1.0)
