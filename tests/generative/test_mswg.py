"""End-to-end tests for the M-SWG generator on small problems."""

import numpy as np
import pytest

from repro.catalog.metadata import Marginal
from repro.errors import GenerativeModelError
from repro.generative.losses import wasserstein_1d
from repro.generative.mswg import MSWG, MswgConfig
from repro.relational.relation import Relation


def quick_config(**overrides):
    base = dict(
        hidden_layers=2,
        hidden_units=32,
        latent_dim=2,
        lambda_coverage=0.01,
        num_projections=24,
        batch_size=128,
        epochs=12,
        steps_per_epoch=8,
        seed=0,
    )
    base.update(overrides)
    return MswgConfig(**base)


@pytest.fixture(scope="module")
def gaussian_case():
    """Biased 1-D sample vs a shifted population marginal."""
    rng = np.random.default_rng(0)
    population = rng.normal(loc=2.0, scale=1.0, size=4000)
    biased_sample = population[population > 1.5][:600]  # heavy right bias
    sample_rel = Relation.from_dict({"x": biased_sample})
    marginal = Marginal.from_data(
        Relation.from_dict({"x": np.round(population, 1)}), ["x"]
    )
    return sample_rel, marginal, population


class TestFitValidation:
    def test_empty_sample_rejected(self):
        empty = Relation.from_dict({"x": np.array([], dtype=float)})
        with pytest.raises(GenerativeModelError, match="empty sample"):
            MSWG(quick_config()).fit(empty, [Marginal(["x"], {(1.0,): 1})])

    def test_no_marginals_rejected(self):
        rel = Relation.from_dict({"x": [1.0, 2.0]})
        with pytest.raises(GenerativeModelError, match="at least one"):
            MSWG(quick_config()).fit(rel, [])

    def test_generate_before_fit_rejected(self):
        with pytest.raises(GenerativeModelError, match="before fit"):
            MSWG(quick_config()).generate(10)

    def test_generate_nonpositive_rejected(self, gaussian_case):
        sample_rel, marginal, _ = gaussian_case
        model = MSWG(quick_config(epochs=1, steps_per_epoch=1))
        model.fit(sample_rel, [marginal])
        with pytest.raises(GenerativeModelError):
            model.generate(0)


class TestTrainingDynamics:
    def test_loss_decreases(self, gaussian_case):
        sample_rel, marginal, _ = gaussian_case
        model = MSWG(quick_config())
        history = model.fit(sample_rel, [marginal])
        losses = history.losses()
        assert losses[-1] < losses[0]

    def test_history_terms_present(self, gaussian_case):
        sample_rel, marginal, _ = gaussian_case
        model = MSWG(quick_config(epochs=2))
        history = model.fit(sample_rel, [marginal])
        record = history.epochs[-1]
        assert any(name.startswith("W[") for name in record.term_losses)
        assert "coverage" in record.term_losses

    def test_deterministic_given_seed(self, gaussian_case):
        sample_rel, marginal, _ = gaussian_case
        a = MSWG(quick_config(epochs=3))
        b = MSWG(quick_config(epochs=3))
        a.fit(sample_rel, [marginal])
        b.fit(sample_rel, [marginal])
        ga = a.generate(50, rng=np.random.default_rng(1))
        gb = b.generate(50, rng=np.random.default_rng(1))
        assert np.allclose(ga.column("x"), gb.column("x"))


class TestDebiasing:
    def test_generated_marginal_closer_than_biased_sample(self, gaussian_case):
        """The headline claim: M-SWG output fits the population marginal
        better than the biased sample does."""
        sample_rel, marginal, population = gaussian_case
        model = MSWG(quick_config(epochs=25, steps_per_epoch=10))
        model.fit(sample_rel, [marginal])
        generated = model.generate(1500, rng=np.random.default_rng(5))

        w_generated = wasserstein_1d(generated.column("x"), population)
        w_sample = wasserstein_1d(sample_rel.column("x"), population)
        assert w_generated < w_sample * 0.5

    def test_generates_values_absent_from_sample(self, gaussian_case):
        """OPEN-world behaviour: mass below the bias cutoff reappears."""
        sample_rel, marginal, _ = gaussian_case
        model = MSWG(quick_config(epochs=25, steps_per_epoch=10))
        model.fit(sample_rel, [marginal])
        generated = model.generate(1500, rng=np.random.default_rng(6))
        sample_min = sample_rel.column("x").min()
        assert np.mean(generated.column("x") < sample_min) > 0.1


class TestCategorical:
    @pytest.fixture(scope="class")
    def categorical_case(self):
        rng = np.random.default_rng(3)
        # Sample sees mostly 'a'; population is split a/b/c.
        sample = Relation.from_dict(
            {
                "tag": rng.choice(["a", "b"], size=400, p=[0.9, 0.1]).tolist(),
                "v": rng.normal(size=400),
            }
        )
        marginal = Marginal(["tag"], {("a",): 400, ("b",): 400, ("c",): 200})
        return sample, marginal

    def test_one_hot_output_hardened(self, categorical_case):
        sample, marginal = categorical_case
        model = MSWG(quick_config(epochs=6))
        model.fit(sample, [marginal])
        generated = model.generate(300, rng=np.random.default_rng(4))
        assert set(generated.column("tag").tolist()) <= {"a", "b", "c"}

    def test_unseen_category_generable(self, categorical_case):
        """'c' never occurs in the sample; the marginal demands 20% of it."""
        sample, marginal = categorical_case
        model = MSWG(quick_config(epochs=30, steps_per_epoch=10, lambda_coverage=0.0))
        model.fit(sample, [marginal])
        generated = model.generate(600, rng=np.random.default_rng(4))
        share_c = np.mean([t == "c" for t in generated.column("tag")])
        assert share_c > 0.02  # light hitters are hard (paper Sec. 5.3) but present

    def test_uncovered_attribute_gets_sample_marginal(self, categorical_case):
        sample, marginal = categorical_case
        model = MSWG(quick_config(epochs=2))
        history = model.fit(sample, [marginal])
        assert any("sample:v" in name for name in history.epochs[-1].term_losses)


class TestGenerateMany:
    def test_repetitions(self, gaussian_case):
        sample_rel, marginal, _ = gaussian_case
        model = MSWG(quick_config(epochs=2))
        model.fit(sample_rel, [marginal])
        outs = model.generate_many(100, repetitions=3, rng=np.random.default_rng(9))
        assert len(outs) == 3
        assert all(o.num_rows == 100 for o in outs)
        # Independent draws differ.
        assert not np.allclose(outs[0].column("x"), outs[1].column("x"))
