"""Unit tests for the table encoder."""

import numpy as np
import pytest

from repro.catalog.metadata import Marginal
from repro.errors import EncodingError
from repro.generative.encoding import TableEncoder
from repro.relational.dtypes import DType
from repro.relational.relation import Relation


@pytest.fixture
def rel():
    return Relation.from_dict(
        {
            "carrier": ["AA", "WN", "AA", "DL"],
            "distance": [100, 500, 900, 300],
            "elapsed": [60.0, 120.0, 180.0, 90.0],
        }
    )


class TestFit:
    def test_width_matches_table1_semantics(self, rel):
        encoder = TableEncoder.fit(rel)
        # carrier -> 3 one-hot dims, distance -> 1, elapsed -> 1.
        assert encoder.width == 5
        assert encoder.column("carrier").kind == "categorical"
        assert encoder.column("carrier").width == 3
        assert encoder.column("distance").width == 1

    def test_marginal_extends_categories(self, rel):
        # 'US' never appears in the sample but the marginal mentions it.
        marginal = Marginal(["carrier"], {("AA",): 10, ("US",): 5})
        encoder = TableEncoder.fit(rel, [marginal])
        assert "US" in encoder.column("carrier").categories
        assert encoder.column("carrier").width == 4

    def test_marginal_extends_numeric_range(self, rel):
        marginal = Marginal(["distance"], {(2000,): 3})
        encoder = TableEncoder.fit(rel, [marginal])
        assert encoder.column("distance").high == 2000

    def test_forced_categorical_numeric(self, rel):
        encoder = TableEncoder.fit(rel, categorical_columns={"distance"})
        assert encoder.column("distance").kind == "categorical"
        assert encoder.column("distance").width == 4

    def test_constant_numeric_column(self):
        rel = Relation.from_dict({"x": [5.0, 5.0]})
        encoder = TableEncoder.fit(rel)
        matrix = encoder.transform(rel)
        assert np.all(np.isfinite(matrix))


class TestTransform:
    def test_numeric_scaled_to_unit_interval(self, rel):
        encoder = TableEncoder.fit(rel)
        matrix = encoder.transform(rel)
        distance_col = encoder.column("distance").start
        assert matrix[:, distance_col].min() == 0.0
        assert matrix[:, distance_col].max() == 1.0

    def test_one_hot_block(self, rel):
        encoder = TableEncoder.fit(rel)
        matrix = encoder.transform(rel)
        block = encoder.column("carrier")
        one_hot = matrix[:, block.start : block.stop]
        assert np.allclose(one_hot.sum(axis=1), 1.0)
        assert set(np.unique(one_hot)) == {0.0, 1.0}

    def test_unseen_category_raises(self, rel):
        encoder = TableEncoder.fit(rel)
        other = Relation.from_dict(
            {"carrier": ["ZZ"], "distance": [100], "elapsed": [60.0]}
        )
        with pytest.raises(EncodingError, match="not.*seen"):
            encoder.transform(other)


class TestRoundTrip:
    def test_exact_round_trip(self, rel):
        encoder = TableEncoder.fit(rel)
        back = encoder.inverse_transform(encoder.transform(rel))
        assert back.equals(rel)

    def test_int_columns_rounded(self, rel):
        encoder = TableEncoder.fit(rel)
        matrix = encoder.transform(rel)
        matrix[:, encoder.column("distance").start] += 0.0004  # sub-integer noise
        back = encoder.inverse_transform(matrix)
        assert back.schema.dtype("distance") is DType.INT
        assert back.column("distance").tolist() == [100, 500, 900, 300]

    def test_out_of_range_clipped(self, rel):
        encoder = TableEncoder.fit(rel)
        matrix = encoder.transform(rel)
        matrix[:, encoder.column("elapsed").start] = 2.0  # above the [0,1] range
        back = encoder.inverse_transform(matrix)
        assert back.column("elapsed").max() == 180.0

    def test_soft_one_hot_decodes_argmax(self, rel):
        encoder = TableEncoder.fit(rel)
        matrix = encoder.transform(rel)
        block = encoder.column("carrier")
        matrix[0, block.start : block.stop] = [0.2, 0.5, 0.3]
        back = encoder.inverse_transform(matrix)
        assert back.column("carrier")[0] == block.categories[1]


class TestHelpers:
    def test_block_indices_concatenate(self, rel):
        encoder = TableEncoder.fit(rel)
        indices = encoder.block_indices(["carrier", "elapsed"])
        carrier, elapsed = encoder.column("carrier"), encoder.column("elapsed")
        expected = list(range(carrier.start, carrier.stop)) + [elapsed.start]
        assert indices.tolist() == expected

    def test_softmax_blocks(self, rel):
        encoder = TableEncoder.fit(rel)
        blocks = encoder.softmax_blocks()
        carrier = encoder.column("carrier")
        assert blocks == [(carrier.start, carrier.stop)]

    def test_encode_value_numeric(self, rel):
        encoder = TableEncoder.fit(rel)
        encoded = encoder.encode_value("distance", 500)
        assert encoded.shape == (1,)
        assert encoded[0] == pytest.approx(0.5)

    def test_encode_value_categorical(self, rel):
        encoder = TableEncoder.fit(rel)
        encoded = encoder.encode_value("carrier", "WN")
        assert encoded.sum() == 1.0

    def test_encode_unknown_value_raises(self, rel):
        encoder = TableEncoder.fit(rel)
        with pytest.raises(EncodingError):
            encoder.encode_value("carrier", "ZZ")

    def test_matrix_shape_validation(self, rel):
        encoder = TableEncoder.fit(rel)
        with pytest.raises(EncodingError, match="width"):
            encoder.inverse_transform(np.zeros((2, 3)))
