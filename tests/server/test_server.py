"""End-to-end tests for the network service layer.

Covers the acceptance criteria: 32 concurrent clients receive results
bit-identical to in-process ``session.execute()`` (including OPEN queries
under fixed seeds, matched by session spawn index), every ``MosaicError``
subclass re-raises client-side over a real socket, and the operational
envelope — cancellation, per-query timeout, connection limit, pipeline
backpressure, graceful shutdown draining in-flight queries.
"""

import socket
import threading
import time

import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.engine.open_world import IPFSynthesizer, OpenQueryConfig
from repro.errors import (
    MosaicError,
    ProtocolError,
    QueryCancelledError,
    QueryTimeoutError,
    ServerError,
    SessionClosedError,
    UnknownRelationError,
)
from repro.client import Client, Connection
from repro.server import protocol
from repro.server.server import MosaicServer

from test_protocol import all_mosaic_error_types, make_instance

CLOSED_SQL = "SELECT CLOSED country, COUNT(*) AS n FROM S GROUP BY country"
SEMI_SQL = (
    "SELECT SEMI-OPEN country, email, COUNT(*) AS n "
    "FROM EuropeMigrants GROUP BY country, email"
)
OPEN_SQL = (
    "SELECT OPEN country, email, COUNT(*) AS n "
    "FROM EuropeMigrants GROUP BY country, email"
)


def build_tiny_db(seed: int = 0) -> MosaicDB:
    """Migrants-style database small enough for fast OPEN queries."""
    db = MosaicDB(
        seed=seed,
        open_config=OpenQueryConfig(
            generator_factory=IPFSynthesizer, repetitions=3
        ),
    )
    db.execute_script(
        """
        CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);
        CREATE SAMPLE S AS (SELECT * FROM EuropeMigrants);
        """
    )
    db.register_marginal(
        "M1", "EuropeMigrants", Marginal(["country"], {("UK",): 700, ("FR",): 300})
    )
    db.register_marginal(
        "M2", "EuropeMigrants", Marginal(["email"], {("Yahoo",): 600, ("AOL",): 400})
    )
    db.ingest_rows("S", [("UK", "Yahoo")] * 60 + [("FR", "Yahoo")] * 40)
    return db


def assert_results_identical(received, expected, compare_notes=True):
    assert received.visibility == expected.visibility
    assert received.sample_name == expected.sample_name
    if compare_notes:
        assert received.notes == expected.notes
    assert received.columns == expected.columns
    assert received.num_rows == expected.num_rows
    for name in expected.columns:
        mine, theirs = received.column(name), expected.column(name)
        if mine.dtype == object:
            assert list(mine) == list(theirs)
        else:
            # Bit-for-bit, not approximately: the wire ships raw buffers.
            assert mine.tobytes() == theirs.tobytes()


@pytest.fixture()
def tiny_server():
    db = build_tiny_db()
    server = MosaicServer(
        db.engine, port=0, session_config=db.session.config
    ).start_in_thread()
    try:
        yield server, db
    finally:
        server.stop_in_thread()


class TestSmoke:
    def test_ddl_insert_select_over_the_wire(self, tiny_server):
        server, _ = tiny_server
        with Connection("127.0.0.1", server.port) as conn:
            results = conn.execute_script(
                """
                CREATE TEMPORARY TABLE T (name TEXT, n INT);
                INSERT INTO T VALUES ('a', 1), ('b', 2), ('a', 3);
                """
            )
            assert len(results) == 2
            result = conn.execute(
                "SELECT name, SUM(n) AS total FROM T GROUP BY name"
            )
            assert result.rows() == [("a", 4), ("b", 2)]
            conn.execute("DROP TABLE T")

    def test_stats_frame(self, tiny_server):
        server, _ = tiny_server
        with Client("127.0.0.1", server.port, pool_size=1) as client:
            client.execute(CLOSED_SQL)
            stats = client.stats()
        assert stats["server"]["connections"] == 1
        assert stats["server"]["queries_total"] >= 1
        assert "plans" in stats["engine"]

    def test_default_visibility_hello_option(self, tiny_server):
        server, _ = tiny_server
        sql = "SELECT country, COUNT(*) AS n FROM EuropeMigrants GROUP BY country"
        with Connection("127.0.0.1", server.port) as conn:
            assert conn.execute(sql).visibility == "SEMI-OPEN"  # template default
        with Connection(
            "127.0.0.1", server.port, options={"default_visibility": "CLOSED"}
        ) as conn:
            assert conn.execute(sql).visibility == "CLOSED"


class TestBitIdentity:
    """The acceptance bar: wire results == in-process results, per session."""

    CLIENTS = 32

    def test_sequential_client_is_fully_identical(self, tiny_server):
        # One client against a fresh server engine vs. session 0 of an
        # identically seeded in-process engine: everything matches, the
        # execution-trail notes included (cache states evolve in lockstep).
        server, _ = tiny_server
        reference_session = build_tiny_db().connect()
        with Connection("127.0.0.1", server.port) as conn:
            assert conn.session_index == 0
            for sql in (CLOSED_SQL, SEMI_SQL, OPEN_SQL, CLOSED_SQL):
                assert_results_identical(
                    conn.execute(sql), reference_session.execute(sql)
                )

    def test_32_concurrent_clients_match_in_process_sessions(self, tiny_server):
        server, _ = tiny_server
        reference_db = build_tiny_db()  # identical catalog, identical seed
        reference = []
        for _ in range(self.CLIENTS):
            session = reference_db.connect()
            reference.append(
                {
                    "closed": session.execute(CLOSED_SQL),
                    "semi": session.execute(SEMI_SQL),
                    "open": session.execute(OPEN_SQL),
                }
            )

        outcomes: dict[int, dict] = {}
        errors: list[Exception] = []
        barrier = threading.Barrier(self.CLIENTS)

        def worker():
            try:
                with Connection("127.0.0.1", server.port) as conn:
                    barrier.wait()
                    outcomes[conn.session_index] = {
                        "closed": conn.execute(CLOSED_SQL),
                        "semi": conn.execute(SEMI_SQL),
                        "open": conn.execute(OPEN_SQL),
                    }
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(self.CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        assert sorted(outcomes) == list(range(self.CLIENTS))
        for index, got in outcomes.items():
            for key in ("closed", "semi", "open"):
                # Data, visibility and backing sample must be bit-identical;
                # notes are excluded here because cache hit/miss annotations
                # legitimately depend on 32-way interleaving.
                assert_results_identical(
                    got[key], reference[index][key], compare_notes=False
                )


@pytest.fixture()
def slow_server():
    """A server whose engine sleeps when the query mentions 'slow'."""
    db = build_tiny_db()
    engine = db.engine
    real_execute = engine.execute

    def sleepy_execute(sql, session):
        if "slow" in sql:
            time.sleep(0.4)
        return real_execute(sql, session)

    engine.execute = sleepy_execute
    server = MosaicServer(
        db.engine, port=0, session_config=db.session.config
    ).start_in_thread()
    try:
        yield server
    finally:
        server.stop_in_thread()


SLOW_SQL = "SELECT CLOSED COUNT(*) AS n FROM S WHERE country = 'slow'"


def raw_connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port))
    protocol.write_frame(
        sock,
        protocol.HELLO,
        0,
        protocol.json_payload(
            {"magic": protocol.MAGIC, "version": protocol.PROTOCOL_VERSION}
        ),
    )
    frame_type, _, _ = protocol.read_frame(sock)
    assert frame_type == protocol.WELCOME
    return sock


class TestCancellation:
    def test_cancel_queued_query(self, slow_server):
        sock = raw_connect(slow_server.port)
        try:
            # The slow query takes the per-connection execution slot; the
            # victim queues behind it and is cancelled while waiting.
            protocol.write_frame(sock, protocol.QUERY, 1, SLOW_SQL.encode())
            time.sleep(0.05)
            protocol.write_frame(sock, protocol.QUERY, 2, CLOSED_SQL.encode())
            protocol.write_frame(
                sock, protocol.CANCEL, 3, (2).to_bytes(4, "little")
            )
            responses = {}
            for _ in range(2):
                frame_type, request_id, payload = protocol.read_frame(sock)
                responses[request_id] = (frame_type, payload)
        finally:
            sock.close()
        assert responses[1][0] == protocol.RESULT
        frame_type, payload = responses[2]
        assert frame_type == protocol.ERROR
        assert isinstance(protocol.decode_error(payload), QueryCancelledError)

    def test_cancel_unknown_request_is_a_noop(self, slow_server):
        sock = raw_connect(slow_server.port)
        try:
            protocol.write_frame(
                sock, protocol.CANCEL, 1, (99).to_bytes(4, "little")
            )
            protocol.write_frame(sock, protocol.QUERY, 2, CLOSED_SQL.encode())
            frame_type, request_id, _ = protocol.read_frame(sock)
            assert (frame_type, request_id) == (protocol.RESULT, 2)
        finally:
            sock.close()


class TestBackpressureAndLimits:
    def test_pipeline_depth_backpressure(self):
        db = build_tiny_db()
        engine = db.engine
        real_execute = engine.execute

        def sleepy_execute(sql, session):
            if "slow" in sql:
                time.sleep(0.3)
            return real_execute(sql, session)

        engine.execute = sleepy_execute
        server = MosaicServer(db.engine, port=0, pipeline_depth=1).start_in_thread()
        try:
            sock = raw_connect(server.port)
            try:
                protocol.write_frame(sock, protocol.QUERY, 1, SLOW_SQL.encode())
                time.sleep(0.05)
                protocol.write_frame(sock, protocol.QUERY, 2, CLOSED_SQL.encode())
                responses = {}
                for _ in range(2):
                    frame_type, request_id, payload = protocol.read_frame(sock)
                    responses[request_id] = (frame_type, payload)
            finally:
                sock.close()
            # The overflowing query is refused immediately with a SERVER
            # error; the in-flight one still completes.
            frame_type, payload = responses[2]
            assert frame_type == protocol.ERROR
            refusal = protocol.decode_error(payload)
            assert isinstance(refusal, ServerError)
            assert "pipeline depth" in str(refusal)
            assert responses[1][0] == protocol.RESULT
        finally:
            server.stop_in_thread()

    def test_duplicate_request_id_refused(self, slow_server):
        sock = raw_connect(slow_server.port)
        try:
            protocol.write_frame(sock, protocol.QUERY, 7, SLOW_SQL.encode())
            time.sleep(0.05)
            protocol.write_frame(sock, protocol.QUERY, 7, CLOSED_SQL.encode())
            # The duplicate is refused immediately; the original still
            # answers once the slow query completes.
            first_type, first_id, first_payload = protocol.read_frame(sock)
            assert (first_type, first_id) == (protocol.ERROR, 7)
            refusal = protocol.decode_error(first_payload)
            assert isinstance(refusal, ProtocolError)
            assert "already in flight" in str(refusal)
            second_type, second_id, _ = protocol.read_frame(sock)
            assert (second_type, second_id) == (protocol.RESULT, 7)
        finally:
            sock.close()

    def test_connection_limit_refused_with_error(self):
        db = build_tiny_db()
        server = MosaicServer(db.engine, port=0, max_connections=1).start_in_thread()
        try:
            with Connection("127.0.0.1", server.port):
                with pytest.raises(ServerError, match="connection limit"):
                    Connection("127.0.0.1", server.port)
        finally:
            server.stop_in_thread()

    def test_bad_magic_rejected(self, tiny_server):
        server, _ = tiny_server
        sock = socket.create_connection(("127.0.0.1", server.port))
        try:
            protocol.write_frame(
                sock,
                protocol.HELLO,
                0,
                protocol.json_payload({"magic": "nope", "version": 1}),
            )
            frame_type, _, payload = protocol.read_frame(sock)
            assert frame_type == protocol.ERROR
            assert isinstance(protocol.decode_error(payload), ProtocolError)
        finally:
            sock.close()

    def test_unknown_frame_type_reported(self, tiny_server):
        server, _ = tiny_server
        sock = raw_connect(server.port)
        try:
            protocol.write_frame(sock, 0x7F, 9, b"")
            frame_type, request_id, payload = protocol.read_frame(sock)
            assert (frame_type, request_id) == (protocol.ERROR, 9)
            assert isinstance(protocol.decode_error(payload), ProtocolError)
        finally:
            sock.close()


class TestTimeout:
    def test_query_timeout_then_connection_still_usable(self):
        db = build_tiny_db()
        engine = db.engine
        real_execute = engine.execute

        def sleepy_execute(sql, session):
            if "slow" in sql:
                time.sleep(0.4)
            return real_execute(sql, session)

        engine.execute = sleepy_execute
        server = MosaicServer(
            db.engine, port=0, session_config=db.session.config, query_timeout=0.1
        ).start_in_thread()
        try:
            with Connection("127.0.0.1", server.port) as conn:
                with pytest.raises(QueryTimeoutError):
                    conn.execute(SLOW_SQL)
                # The zombie query finishes in the background holding the
                # per-connection order; the next query waits, then runs.
                result = conn.execute(CLOSED_SQL)
                assert result.num_rows == 2
        finally:
            server.stop_in_thread()


class TestShutdown:
    def test_graceful_shutdown_drains_in_flight_query(self, slow_server):
        received = {}

        def client_thread():
            with Connection("127.0.0.1", slow_server.port) as conn:
                received["result"] = conn.execute(SLOW_SQL)

        thread = threading.Thread(target=client_thread)
        thread.start()
        time.sleep(0.15)  # let the slow query reach the executor
        slow_server.stop_in_thread(drain_timeout=5.0)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert received["result"].num_rows == 1  # COUNT over zero matches
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", slow_server.port), timeout=0.5)

    def test_server_owned_engine_shuts_down(self):
        db = build_tiny_db()
        server = MosaicServer(
            db.engine, port=0, shutdown_engine=True
        ).start_in_thread()
        server.stop_in_thread()
        assert db.engine.closed
        with pytest.raises(SessionClosedError):
            db.execute(CLOSED_SQL)


class TestErrorTransport:
    """Satellite: every MosaicError subclass crosses a *real* socket."""

    @pytest.fixture(scope="class")
    def raising_server(self):
        db = build_tiny_db()
        engine = db.engine
        instances = {
            f"RAISE {cls.__name__}": make_instance(cls)
            for cls in all_mosaic_error_types()
        }
        real_execute = engine.execute

        def raising_execute(sql, session):
            exc = instances.get(sql)
            if exc is not None:
                raise exc
            return real_execute(sql, session)

        engine.execute = raising_execute
        server = MosaicServer(db.engine, port=0).start_in_thread()
        try:
            with Connection("127.0.0.1", server.port) as conn:
                yield conn, instances
        finally:
            server.stop_in_thread()

    @pytest.mark.parametrize(
        "cls", all_mosaic_error_types(), ids=lambda c: c.__name__
    )
    def test_error_round_trip(self, raising_server, cls):
        conn, instances = raising_server
        original = instances[f"RAISE {cls.__name__}"]
        with pytest.raises(MosaicError) as excinfo:
            conn.execute(f"RAISE {cls.__name__}")
        assert type(excinfo.value) is cls
        assert str(excinfo.value) == str(original)

    def test_real_engine_error_keeps_attributes(self, tiny_server):
        server, _ = tiny_server
        with Connection("127.0.0.1", server.port) as conn:
            with pytest.raises(UnknownRelationError) as excinfo:
                conn.execute("SELECT CLOSED COUNT(*) AS n FROM Ghost")
            assert excinfo.value.name == "Ghost"

    def test_cancelled_flag_has_wire_type(self):
        # QueryCancelledError reaches clients through the same transport.
        from repro.errors import error_from_wire, error_to_wire

        code, message, data = error_to_wire(QueryCancelledError("gone"))
        assert type(error_from_wire(code, message, data)) is QueryCancelledError


class TestClientPool:
    def test_pool_reuses_connections_across_threads(self, tiny_server):
        server, _ = tiny_server
        with Client("127.0.0.1", server.port, pool_size=2) as client:
            errors: list[Exception] = []

            def worker():
                try:
                    for _ in range(5):
                        assert client.execute(CLOSED_SQL).num_rows == 2
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors
            assert client._created <= 2

    def test_mosaic_errors_do_not_poison_the_pool(self, tiny_server):
        server, _ = tiny_server
        with Client("127.0.0.1", server.port, pool_size=1) as client:
            with pytest.raises(UnknownRelationError):
                client.execute("SELECT CLOSED COUNT(*) AS n FROM Ghost")
            # Same pooled connection, still healthy.
            assert client.execute(CLOSED_SQL).num_rows == 2
            assert client._created == 1

    def test_blocked_waiter_wakes_on_close(self, tiny_server):
        # A waiter blocked on a fully-borrowed pool must not hang forever
        # when the client is closed underneath it.
        server, _ = tiny_server
        client = Client("127.0.0.1", server.port, pool_size=1)
        borrowed = client._acquire()  # occupy the only slot
        outcome = {}

        def waiter():
            try:
                client.execute(CLOSED_SQL)
            except ProtocolError as exc:
                outcome["exc"] = exc

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.15)
        client.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert "exc" in outcome
        borrowed.close()

    def test_blocked_waiter_dials_after_discard(self, tiny_server):
        # Discarding a broken connection frees a slot, not a queue entry:
        # the blocked waiter must notice and dial a replacement.
        server, _ = tiny_server
        client = Client("127.0.0.1", server.port, pool_size=1)
        borrowed = client._acquire()
        outcome = {}

        def waiter():
            outcome["result"] = client.execute(CLOSED_SQL)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.15)
        client._discard(borrowed)  # as a transport failure would
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert outcome["result"].num_rows == 2
        client.close()

    def test_closed_client_refuses_calls(self, tiny_server):
        server, _ = tiny_server
        client = Client("127.0.0.1", server.port)
        client.execute(CLOSED_SQL)
        client.close()
        with pytest.raises(ProtocolError, match="client is closed"):
            client.execute(CLOSED_SQL)
