"""Wire-level observability tests for the network service layer.

Covers the PR 9 acceptance criteria at the TCP boundary: the STATS
frame's header contract stays append-only (new keys only), a sampled
trace rides the response header with the server's queue-wait / execute /
encode phases stamped in, the Prometheus ``/metrics`` endpoint scrapes
through a running :class:`MosaicServer`, ``Client.metrics()`` returns
the merged registry snapshot, the slow-query log fires, and ``EXPLAIN
ANALYZE`` works over a real socket for every visibility.
"""

import urllib.request

import pytest

from repro.client import Client, Connection
from repro.server.server import MosaicServer

from test_server import CLOSED_SQL, OPEN_SQL, SEMI_SQL, build_tiny_db


@pytest.fixture()
def traced_server(monkeypatch):
    """Server tracing every query, slow-query threshold 0, metrics on."""
    monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "1")
    db = build_tiny_db()
    server = MosaicServer(
        db.engine,
        port=0,
        session_config=db.session.config,
        slow_query_ms=0.0,
        metrics_port=0,
    ).start_in_thread()
    try:
        yield server, db
    finally:
        server.stop_in_thread()


def scrape(port: int) -> str:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics") as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode("utf-8")


class TestStatsSchema:
    #: The seed's STATS server section.  The header contract is
    #: append-only: this set may only ever grow, so asserting superset
    #: (never equality) keeps old clients working against new servers.
    SEED_SERVER_KEYS = {
        "connections",
        "max_connections",
        "active_queries",
        "queries_total",
        "errors_total",
        "executor_workers",
        "query_timeout",
        "shard_id",
    }

    def test_stats_frame_is_append_only_superset(self, traced_server):
        server, _ = traced_server
        with Client("127.0.0.1", server.port, pool_size=1) as client:
            client.execute(CLOSED_SQL)
            stats = client.stats()
        assert set(stats["server"]) >= self.SEED_SERVER_KEYS
        # PR 9 additions ride alongside, never replacing.
        assert stats["server"]["slow_queries_total"] >= 1  # threshold is 0
        assert "plans" in stats["engine"]
        assert "open_adaptive" in stats["engine"]
        assert isinstance(stats["metrics"], dict)

    def test_client_metrics_returns_registry_snapshot(self, traced_server):
        server, _ = traced_server
        with Client("127.0.0.1", server.port, pool_size=1) as client:
            client.execute(CLOSED_SQL)
            metrics = client.metrics()
        assert metrics["mosaic_server_queries_total"] >= 1
        histogram = metrics["mosaic_server_query_ms"]
        assert histogram["count"] >= 1
        # Engine families merge into the same snapshot.
        assert any(key.startswith("mosaic_cache_size") for key in metrics)


class TestTraceOverWire:
    def test_closed_trace_round_trips_with_server_phases(self, traced_server):
        server, _ = traced_server
        with Connection("127.0.0.1", server.port) as conn:
            result = conn.execute(CLOSED_SQL)
        trace = result.trace
        assert trace is not None
        assert len(trace["trace_id"]) == 16
        names = {span["name"] for span in trace["spans"]}
        assert {"parse", "plan", "execute"} <= names
        phases = trace["server"]
        assert set(phases) >= {"queue_wait_ms", "execute_ms", "encode_ms"}
        assert all(
            phases[key] >= 0.0
            for key in ("queue_wait_ms", "execute_ms", "encode_ms")
        )

    def test_trace_ids_unique_across_queries(self, traced_server):
        server, _ = traced_server
        with Connection("127.0.0.1", server.port) as conn:
            ids = [conn.execute(CLOSED_SQL).trace["trace_id"] for _ in range(3)]
        assert len(set(ids)) == 3

    def test_sampling_off_ships_no_trace(self, traced_server, monkeypatch):
        server, _ = traced_server
        monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "0")
        with Connection("127.0.0.1", server.port) as conn:
            assert conn.execute(CLOSED_SQL).trace is None

    def test_open_trace_records_repetitions_and_stop_reason(self, traced_server):
        server, _ = traced_server
        with Connection("127.0.0.1", server.port) as conn:
            result = conn.execute(OPEN_SQL)
        meta = result.trace["meta"]
        assert meta["open"]["repetitions_used"] == result.repetitions_used == 3
        assert meta["open"]["stop_reason"] == "fixed repetitions"
        assert meta["generator"]["name"]

    def test_slow_query_log_line(self, traced_server, capfd):
        server, _ = traced_server
        with Connection("127.0.0.1", server.port) as conn:
            trace_id = conn.execute(CLOSED_SQL).trace["trace_id"]
        err = capfd.readouterr().err
        assert "mosaic slow query" in err
        assert f"trace={trace_id}" in err


class TestExplainAnalyzeOverWire:
    @pytest.mark.parametrize("sql", [CLOSED_SQL, SEMI_SQL, OPEN_SQL])
    def test_all_visibilities(self, traced_server, sql):
        server, _ = traced_server
        with Connection("127.0.0.1", server.port) as conn:
            result = conn.execute(f"EXPLAIN ANALYZE {sql}")
        assert list(result.columns) == ["step", "detail", "ms"]
        steps = list(result.column("step"))
        assert "trace" in steps
        if sql is OPEN_SQL:
            # OPEN evaluates over generated worlds: no dense plan nodes,
            # but the adaptive/generator metadata rows take their place.
            assert "meta: open" in steps
        else:
            assert any(step.startswith("node:") for step in steps)
        assert result.trace is not None
        assert any(note.startswith("EXPLAIN ANALYZE:") for note in result.notes)
        # Server phase timings stamp onto the EXPLAIN trace too.
        assert "encode_ms" in result.trace["server"]

    def test_bypasses_sampling(self, traced_server, monkeypatch):
        server, _ = traced_server
        monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "0")
        with Connection("127.0.0.1", server.port) as conn:
            result = conn.execute(f"EXPLAIN ANALYZE {CLOSED_SQL}")
        assert result.trace is not None
        assert result.num_rows > 0


class TestPrometheusEndpoint:
    def test_endpoint_scrapes_and_parses(self, traced_server):
        server, _ = traced_server
        assert server.metrics_exporter is not None
        with Connection("127.0.0.1", server.port) as conn:
            conn.execute(CLOSED_SQL)
        text = scrape(server.metrics_exporter.port)
        assert "# TYPE mosaic_server_queries_total counter" in text
        assert "# TYPE mosaic_server_query_ms histogram" in text
        assert 'mosaic_server_query_ms_bucket{le="+Inf"}' in text
        # Engine families render from the same endpoint.
        assert "mosaic_cache_hits" in text
        # Every non-comment line is `name{labels} value`.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)  # parseable sample value

    def test_matches_render_metrics(self, traced_server):
        server, _ = traced_server
        scraped = scrape(server.metrics_exporter.port)
        assert set(scraped.splitlines()) == set(server.render_metrics().splitlines())
