"""Wire protocol unit tests: frames, the columnar result codec, and the
error transport (every ``MosaicError`` subclass must cross the wire and
re-raise client-side as the same type with the same message).
"""

import math
import socket

import numpy as np
import pytest

from repro import errors
from repro.core.result import QueryResult
from repro.errors import (
    ConvergenceError,
    MosaicError,
    ProtocolError,
    SqlSyntaxError,
    UnknownRelationError,
    error_from_wire,
    error_to_wire,
    wire_code,
)
from repro.relational.dtypes import DType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.server import protocol


def all_mosaic_error_types() -> list[type]:
    """Every concrete MosaicError subclass, recursively (plus the root)."""
    found: list[type] = [MosaicError]
    frontier = [MosaicError]
    while frontier:
        cls = frontier.pop()
        for sub in cls.__subclasses__():
            if sub.__module__ == "repro.errors" and sub not in found:
                found.append(sub)
                frontier.append(sub)
    return found


def make_instance(cls: type) -> MosaicError:
    """A representative instance (some subclasses have custom __init__s)."""
    if cls is SqlSyntaxError:
        return SqlSyntaxError("unexpected token", line=3, column=7)
    if cls is UnknownRelationError:
        return UnknownRelationError("Ghost")
    if cls is errors.DuplicateRelationError:
        return errors.DuplicateRelationError("Twice")
    if cls is ConvergenceError:
        return ConvergenceError("IPF did not converge", iterations=42)
    return cls(f"{cls.__name__}: something went wrong")


class TestFrames:
    def test_frame_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            protocol.write_frame(left, protocol.QUERY, 7, b"SELECT 1")
            frame_type, request_id, payload = protocol.read_frame(right)
            assert (frame_type, request_id, payload) == (
                protocol.QUERY,
                7,
                b"SELECT 1",
            )
        finally:
            left.close()
            right.close()

    def test_oversized_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            protocol.write_frame(left, protocol.QUERY, 1, b"x" * 100)
            with pytest.raises(ProtocolError, match="frame length"):
                protocol.read_frame(right, max_frame_bytes=16)
        finally:
            left.close()
            right.close()


def round_trip(result: QueryResult) -> QueryResult:
    return protocol.decode_result(protocol.encode_result(result))


class TestQueryxCodec:
    def test_envelope_and_sql_round_trip(self):
        envelope = {"mode": "insert", "indices": [0, 2, 5]}
        sql = "INSERT INTO T VALUES ('é', 1), ('b', 2)"
        assert protocol.decode_queryx(
            protocol.encode_queryx(envelope, sql)
        ) == (envelope, sql)

    def test_truncated_payload_raises(self):
        payload = protocol.encode_queryx({"mode": "partial"}, "SELECT 1")
        with pytest.raises(ProtocolError):
            protocol.decode_queryx(payload[:3])

    def test_non_object_envelope_raises(self):
        body = protocol.json_payload([1, 2])
        payload = len(body).to_bytes(4, "little") + body + b"SELECT 1"
        with pytest.raises(ProtocolError, match="envelope"):
            protocol.decode_queryx(payload)

    def test_extra_header_survives_and_stays_optional(self):
        result = QueryResult(Relation.from_dict({"n": [1, 2]}))
        recipe = {"version": 1, "group_keys": [], "merge": [["n", "sum"]]}
        body = protocol.encode_result(result, extra_header={"partial": recipe})
        decoded, header = protocol.decode_result_with_header(body)
        assert header["partial"] == recipe
        assert decoded.relation.num_rows == 2
        # Plain results have no extra keys and old decode still works.
        plain = protocol.encode_result(result)
        _, plain_header = protocol.decode_result_with_header(plain)
        assert "partial" not in plain_header
        assert protocol.decode_result(body).relation.num_rows == 2


class TestResultCodec:
    def test_all_dtypes_bit_identical(self):
        schema = Schema(
            [
                Field("i", DType.INT),
                Field("f", DType.FLOAT),
                Field("t", DType.TEXT),
                Field("b", DType.BOOL),
            ]
        )
        relation = Relation.from_columns(
            schema,
            {
                "i": [1, -(2**60), 0],
                "f": [1.5, math.nan, -0.0],
                "t": ["x", "longer string", "x"],
                "b": [True, False, True],
            },
        )
        result = QueryResult(
            relation,
            visibility="SEMI-OPEN",
            sample_name="S",
            notes=("note one", "note two"),
        )
        decoded = round_trip(result)
        assert decoded.visibility == "SEMI-OPEN"
        assert decoded.sample_name == "S"
        assert decoded.notes == ("note one", "note two")
        assert decoded.relation.schema == relation.schema
        for name in ("i", "f", "b"):
            # Bit-for-bit: the raw little-endian buffer is the contract.
            assert (
                decoded.relation.column(name).tobytes()
                == relation.column(name).tobytes()
            )
        assert list(decoded.relation.column("t")) == list(relation.column("t"))

    def test_text_ships_as_dictionary_and_stays_encoded(self):
        relation = Relation.from_dict({"t": ["b", "a", "b", "c"], "n": [1, 2, 3, 4]})
        decoded = round_trip(QueryResult(relation)).relation
        vocab, codes = decoded.encoding("t")
        assert list(vocab) == ["a", "b", "c"]
        assert list(codes) == [1, 0, 1, 2]

    def test_filtered_relation_keeps_superset_vocab(self):
        relation = Relation.from_dict({"t": ["a", "b", "c"], "n": [1, 2, 3]})
        filtered = relation.filter(np.asarray([True, False, True]))
        decoded = round_trip(QueryResult(filtered)).relation
        vocab, codes = decoded.encoding("t")
        # The sliced vocabulary crosses as-is: no re-factorization.
        assert list(vocab) == ["a", "b", "c"]
        assert list(codes) == [0, 2]
        assert list(decoded.column("t")) == ["a", "c"]

    def test_empty_relation(self):
        schema = Schema([Field("t", DType.TEXT), Field("n", DType.INT)])
        decoded = round_trip(QueryResult(Relation.empty(schema)))
        assert decoded.num_rows == 0
        assert decoded.columns == ("t", "n")

    def test_result_set_round_trip(self):
        results = [
            QueryResult(Relation.from_dict({"n": [1]}), notes=("a",)),
            QueryResult(Relation.from_dict({"t": ["x", "y"]}), visibility="CLOSED"),
        ]
        decoded = protocol.decode_result_set(protocol.encode_result_set(results))
        assert len(decoded) == 2
        assert decoded[0].rows() == results[0].rows()
        assert decoded[1].visibility == "CLOSED"
        assert decoded[1].rows() == results[1].rows()

    def test_truncated_payload_raises_protocol_error(self):
        body = protocol.encode_result(QueryResult(Relation.from_dict({"n": [1, 2]})))
        with pytest.raises(ProtocolError):
            protocol.decode_result(body[: len(body) - 3])


class TestErrorCodes:
    def test_every_subclass_is_registered(self):
        registered = set(errors.WIRE_CODES.values())
        for cls in all_mosaic_error_types():
            assert cls in registered, f"{cls.__name__} has no wire code"

    def test_codes_are_unique(self):
        classes = list(errors.WIRE_CODES.values())
        assert len(classes) == len(set(classes))

    def test_unregistered_subclass_maps_to_ancestor(self):
        class CustomCatalogError(errors.CatalogError):
            pass

        assert wire_code(CustomCatalogError) == "CATALOG"

    def test_unknown_code_degrades_to_base(self):
        exc = error_from_wire("NOT_A_CODE", "mystery")
        assert type(exc) is MosaicError
        assert str(exc) == "mystery"

    @pytest.mark.parametrize(
        "cls", all_mosaic_error_types(), ids=lambda c: c.__name__
    )
    def test_codec_round_trip_preserves_type_and_message(self, cls):
        original = make_instance(cls)
        code, message, data = error_to_wire(original)
        rebuilt = error_from_wire(code, message, data)
        assert type(rebuilt) is cls
        assert str(rebuilt) == str(original)

    def test_attributes_survive(self):
        code, message, data = error_to_wire(SqlSyntaxError("bad", line=3, column=7))
        rebuilt = error_from_wire(code, message, data)
        assert (rebuilt.line, rebuilt.column) == (3, 7)

    def test_non_mosaic_errors_wrap_as_server(self):
        code, message, _ = error_to_wire(ValueError("boom"))
        assert code == "SERVER"
        assert "ValueError" in message and "boom" in message
