"""First-class dictionary encodings: build-at-ingest, slice, merge, derive.

The storage contract (see ``Relation``'s module docstring): TEXT columns
are encoded exactly once at ingest; every transformation *slices* the
codes (filter/take/project/rename) or *merges* the vocabs (concat), and
``dictionary()`` derives its dense form from the stored encoding with a
vectorized remap instead of re-factorizing.
"""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import relation as relation_module
from repro.relational.dtypes import CODES_DTYPE, DType
from repro.relational.relation import Relation, dictionary_stats
from repro.relational.schema import Field, Schema

SCHEMA = Schema([Field("c", DType.TEXT), Field("v", DType.INT)])


def rel(values, ints=None):
    ints = ints if ints is not None else list(range(len(values)))
    return Relation.from_columns(SCHEMA, {"c": values, "v": ints})


def decode(relation, name="c"):
    vocab, codes = relation.encoding(name)
    return [str(v) for v in vocab[codes]] if vocab.size else []


def assert_valid_encoding(relation, name="c"):
    vocab, codes = relation.encoding(name)
    assert codes.dtype == CODES_DTYPE
    assert vocab.dtype == object
    if vocab.size > 1:
        assert np.all(vocab[:-1] < vocab[1:])  # sorted, distinct
    np.testing.assert_array_equal(
        vocab[codes] if vocab.size else np.empty(0, object), relation.column(name)
    )


def test_from_columns_builds_encoding_once():
    before = dictionary_stats()["builds"]
    relation = rel(["b", "a", "b", "c"])
    assert dictionary_stats()["builds"] == before + 1
    assert_valid_encoding(relation)
    vocab, codes = relation.encoding("c")
    np.testing.assert_array_equal(vocab, np.array(["a", "b", "c"], dtype=object))
    np.testing.assert_array_equal(codes, [1, 0, 1, 2])
    # dictionary() derives from the stored encoding — no extra build.
    builds = dictionary_stats()["builds"]
    uniques, dense = relation.dictionary("c")
    assert dictionary_stats()["builds"] == builds
    np.testing.assert_array_equal(uniques, vocab)
    np.testing.assert_array_equal(dense, codes)


def test_filter_and_take_slice_codes_without_rebuilding():
    relation = rel(["b", "a", "b", "c", "a"])
    builds = dictionary_stats()["builds"]
    filtered = relation.filter(np.array([True, False, True, True, False]))
    taken = relation.take(np.array([4, 4, 0]))
    assert dictionary_stats()["builds"] == builds
    assert decode(filtered) == ["b", "b", "c"]
    assert decode(taken) == ["a", "a", "b"]
    assert_valid_encoding(filtered)
    assert_valid_encoding(taken)
    # The vocab object is shared, not copied.
    assert filtered.encoding("c")[0] is relation.encoding("c")[0]


def test_dictionary_densifies_sliced_vocab():
    relation = rel(["b", "a", "b", "c", "a"])
    filtered = relation.filter(np.array([True, False, True, True, False]))
    builds = dictionary_stats()["builds"]
    uniques, dense = filtered.dictionary("c")
    assert dictionary_stats()["builds"] == builds  # derived, not rebuilt
    np.testing.assert_array_equal(uniques, np.array(["b", "c"], dtype=object))
    np.testing.assert_array_equal(dense, [0, 0, 1])


def test_project_rename_with_column_propagate():
    relation = rel(["y", "x", "y"])
    projected = relation.project(["c"])
    renamed = relation.rename({"c": "k"})
    extended = relation.with_column("w", DType.FLOAT, [0.0, 1.0, 2.0])
    replaced = relation.with_column("c", DType.TEXT, ["a", "a", "b"])
    assert projected.encoding("c") is not None
    assert renamed.encoding("k") is not None and renamed.encoding("c") is None
    assert extended.encoding("c") is not None
    # Replacing a TEXT column drops its (now wrong) encoding.
    assert replaced.encoding("c") is None
    assert_valid_encoding(projected)
    assert_valid_encoding(renamed, "k")


def test_concat_shared_vocab_concatenates_codes():
    left = rel(["a", "b"])
    right = left.filter(np.array([True, False]))
    merged = left.concat(right)
    assert_valid_encoding(merged)
    assert decode(merged) == ["a", "b", "a"]
    assert merged.encoding("c")[0] is left.encoding("c")[0]


def test_concat_merges_disjoint_vocabs_in_code_space():
    left = rel(["b", "d"])
    right = rel(["a", "c", "d"])
    builds = dictionary_stats()["builds"]
    merged = left.concat(right)
    assert dictionary_stats()["builds"] == builds  # merged, not refactorized
    vocab, codes = merged.encoding("c")
    np.testing.assert_array_equal(vocab, np.array(["a", "b", "c", "d"], dtype=object))
    np.testing.assert_array_equal(codes, [1, 3, 0, 2, 3])
    assert decode(merged) == ["b", "d", "a", "c", "d"]


def test_concat_with_empty_relation_keeps_encoding():
    empty = Relation.empty(SCHEMA)
    relation = rel(["z", "y"])
    merged = empty.concat(relation)
    assert decode(merged) == ["z", "y"]
    assert_valid_encoding(merged)


def test_sort_by_uses_sliced_encodings():
    relation = rel(["c", "a", "b"]).filter(np.array([True, True, True]))
    ordered = relation.sort_by(["c"])
    assert decode(ordered) == ["a", "b", "c"]
    assert_valid_encoding(ordered)


def test_from_codes_installs_without_factorizing():
    builds = dictionary_stats()["builds"]
    relation = Relation.from_codes(
        SCHEMA,
        {"c": (["a", "b"], np.array([1, 0, 1]))},
        {"v": [1, 2, 3]},
    )
    assert dictionary_stats()["builds"] == builds
    assert [r["c"] for r in relation.to_pylist()] == ["b", "a", "b"]
    assert_valid_encoding(relation)


def test_from_codes_rejects_unsorted_vocab_and_non_text():
    with pytest.raises(SchemaError):
        Relation.from_codes(SCHEMA, {"c": (["b", "a"], [0, 1])}, {"v": [1, 2]})
    with pytest.raises(SchemaError):
        Relation.from_codes(SCHEMA, {"v": ([1, 2], [0, 1])}, {"c": ["a", "b"]})


def test_from_codes_rejects_out_of_range_codes():
    with pytest.raises(SchemaError):
        Relation.from_codes(SCHEMA, {"c": (["a", "b"], [-1, 0])}, {"v": [1, 2]})
    with pytest.raises(SchemaError):
        Relation.from_codes(SCHEMA, {"c": (["a", "b"], [0, 2])}, {"v": [1, 2]})
    with pytest.raises(SchemaError):
        Relation.from_codes(SCHEMA, {"c": ([], [0])}, {"v": [1]})


def test_raw_constructor_has_no_encoding_and_dictionary_still_works():
    column = np.empty(3, dtype=object)
    column[:] = ["b", "a", "b"]
    relation = Relation(SCHEMA, {"c": column, "v": np.arange(3)})
    assert relation.encoding("c") is None
    uniques, codes = relation.dictionary("c")
    np.testing.assert_array_equal(uniques, np.array(["a", "b"], dtype=object))
    np.testing.assert_array_equal(codes, [1, 0, 1])


def test_reuse_counter_moves_on_reuse():
    relation_module.reset_dictionary_stats()
    assert dictionary_stats() == {"builds": 0, "reuse_hits": 0}
    relation = rel(["a", "b", "a"])
    before = dictionary_stats()["reuse_hits"]
    relation.dictionary("c")
    relation.dictionary("c")
    relation.encoding("c")
    assert dictionary_stats()["reuse_hits"] >= before + 3
