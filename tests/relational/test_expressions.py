"""Unit tests for scalar expressions and predicates."""

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.dtypes import DType
from repro.relational.expressions import (
    Arithmetic,
    ColumnRef,
    Literal,
    Negate,
    validate_expression,
)
from repro.relational.predicates import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    TruePredicate,
    conjoin,
)
from repro.relational.relation import Relation


@pytest.fixture
def rel():
    return Relation.from_dict(
        {"x": [1, 2, 3, 4], "y": [10.0, 20.0, 30.0, 40.0], "tag": ["a", "b", "a", "c"]}
    )


class TestScalarExpressions:
    def test_column_ref(self, rel):
        assert ColumnRef("x").evaluate(rel).tolist() == [1, 2, 3, 4]

    def test_literal_broadcast(self, rel):
        out = Literal(7).evaluate(rel)
        assert out.tolist() == [7, 7, 7, 7]

    def test_arithmetic_add(self, rel):
        expr = Arithmetic("+", ColumnRef("x"), Literal(1))
        assert expr.evaluate(rel).tolist() == [2, 3, 4, 5]

    def test_division_is_float(self, rel):
        expr = Arithmetic("/", ColumnRef("x"), Literal(2))
        out = expr.evaluate(rel)
        assert out.dtype == np.float64
        assert out.tolist() == [0.5, 1.0, 1.5, 2.0]

    def test_modulo(self, rel):
        expr = Arithmetic("%", ColumnRef("x"), Literal(2))
        assert expr.evaluate(rel).tolist() == [1, 0, 1, 0]

    def test_negate(self, rel):
        assert Negate(ColumnRef("x")).evaluate(rel).tolist() == [-1, -2, -3, -4]

    def test_arithmetic_on_text_raises(self, rel):
        expr = Arithmetic("+", ColumnRef("tag"), Literal(1))
        with pytest.raises(TypeMismatchError):
            expr.evaluate(rel)

    def test_unknown_operator_rejected(self):
        with pytest.raises(TypeMismatchError):
            Arithmetic("**", Literal(1), Literal(2))

    def test_output_dtype_promotion(self, rel):
        expr = Arithmetic("*", ColumnRef("x"), ColumnRef("y"))
        assert expr.output_dtype(rel.schema) is DType.FLOAT

    def test_referenced_columns(self, rel):
        expr = Arithmetic("+", ColumnRef("x"), ColumnRef("y"))
        assert expr.referenced_columns() == frozenset({"x", "y"})

    def test_validate_unknown_column(self, rel):
        with pytest.raises(SchemaError, match="unknown column"):
            validate_expression(ColumnRef("nope"), rel.schema)


class TestComparisons:
    def test_numeric_ops(self, rel):
        assert Comparison(">", ColumnRef("x"), Literal(2)).evaluate(rel).tolist() == [
            False,
            False,
            True,
            True,
        ]
        assert Comparison("=", ColumnRef("x"), Literal(3)).evaluate(rel).tolist() == [
            False,
            False,
            True,
            False,
        ]

    def test_text_equality(self, rel):
        out = Comparison("=", ColumnRef("tag"), Literal("a")).evaluate(rel)
        assert out.tolist() == [True, False, True, False]

    def test_text_ordering_lexicographic(self, rel):
        out = Comparison("<", ColumnRef("tag"), Literal("b")).evaluate(rel)
        assert out.tolist() == [True, False, True, False]

    def test_text_vs_number_rejected(self, rel):
        with pytest.raises(TypeMismatchError):
            Comparison("=", ColumnRef("tag"), Literal(1)).evaluate(rel)

    def test_diamond_alias(self, rel):
        out = Comparison("<>", ColumnRef("x"), Literal(1)).evaluate(rel)
        assert out.tolist() == [False, True, True, True]


class TestInBetween:
    def test_in_numeric(self, rel):
        out = InList(ColumnRef("x"), [1, 4]).evaluate(rel)
        assert out.tolist() == [True, False, False, True]

    def test_in_text(self, rel):
        out = InList(ColumnRef("tag"), ["a", "c"]).evaluate(rel)
        assert out.tolist() == [True, False, True, True]

    def test_not_in(self, rel):
        out = InList(ColumnRef("x"), [1], negated=True).evaluate(rel)
        assert out.tolist() == [False, True, True, True]

    def test_between_inclusive(self, rel):
        out = Between(ColumnRef("x"), Literal(2), Literal(3)).evaluate(rel)
        assert out.tolist() == [False, True, True, False]

    def test_not_between(self, rel):
        out = Between(ColumnRef("x"), Literal(2), Literal(3), negated=True).evaluate(rel)
        assert out.tolist() == [True, False, False, True]


class TestBooleanConnectives:
    def test_and_or_not(self, rel):
        gt1 = Comparison(">", ColumnRef("x"), Literal(1))
        lt4 = Comparison("<", ColumnRef("x"), Literal(4))
        assert And(gt1, lt4).evaluate(rel).tolist() == [False, True, True, False]
        assert Or(Not(gt1), Not(lt4)).evaluate(rel).tolist() == [True, False, False, True]

    def test_true_predicate(self, rel):
        assert TruePredicate().evaluate(rel).all()

    def test_conjoin_empty(self, rel):
        assert isinstance(conjoin([]), TruePredicate)

    def test_conjoin_drops_true(self, rel):
        gt1 = Comparison(">", ColumnRef("x"), Literal(1))
        combined = conjoin([TruePredicate(), gt1])
        assert combined is gt1

    def test_conjoin_multiple(self, rel):
        gt1 = Comparison(">", ColumnRef("x"), Literal(1))
        lt4 = Comparison("<", ColumnRef("x"), Literal(4))
        assert conjoin([gt1, lt4]).evaluate(rel).tolist() == [False, True, True, False]


class TestSqlRendering:
    def test_nested(self):
        expr = And(
            Comparison(">", ColumnRef("x"), Literal(1)),
            InList(ColumnRef("tag"), ["a"]),
        )
        text = expr.to_sql()
        assert "x > 1" in text
        assert "IN" in text
