"""Selection-vector aggregation must equal materialize-then-aggregate.

``grouped_aggregate(relation, ..., selection=mask)`` is the fused form of
``grouped_aggregate(relation.filter(mask), ...)``.  The two must produce
bit-identical relations for every aggregate function, weighted and
unweighted, across single-key, multi-key, and ungrouped shapes — including
selections that empty out some groups, empty the whole relation, or keep
everything.
"""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational.aggregates import AggregateSpec
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef
from repro.relational.kernels import grouped_aggregate
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


def make_relation(rng, n):
    return Relation.from_dict(
        {
            "a": [str(v) for v in rng.choice(["x", "y", "z", "w"], size=n)],
            "b": rng.integers(0, 3, size=n),
            "v": rng.integers(-50, 50, size=n),
            "f": rng.normal(size=n),
        }
    )


def specs_and_schema(keys, relation, weighted):
    specs = [
        AggregateSpec("COUNT", None, "n"),
        AggregateSpec("SUM", ColumnRef("v"), "s"),
        AggregateSpec("AVG", ColumnRef("f"), "m"),
        AggregateSpec("MIN", ColumnRef("v"), "lo"),
        AggregateSpec("MAX", ColumnRef("f"), "hi"),
    ]
    fields = [Field(k, relation.schema.dtype(k)) for k in keys]
    fields += [Field(s.alias, s.output_dtype(relation.schema, weighted)) for s in specs]
    return specs, Schema(fields)


SELECTIONS = {
    "none_kept": lambda rng, n: np.zeros(n, dtype=bool),
    "all_kept": lambda rng, n: np.ones(n, dtype=bool),
    "half": lambda rng, n: rng.random(n) < 0.5,
    "sparse": lambda rng, n: rng.random(n) < 0.05,
}


@pytest.mark.parametrize("keys", [["a"], ["a", "b"], []])
@pytest.mark.parametrize("weighted", [False, True])
@pytest.mark.parametrize("selection_kind", sorted(SELECTIONS))
def test_selection_equals_materialized_filter(keys, weighted, selection_kind):
    rng = np.random.default_rng(42)
    relation = make_relation(rng, 400)
    mask = SELECTIONS[selection_kind](rng, 400)
    weights = rng.random(400) * (rng.random(400) < 0.9) if weighted else None
    specs, out_schema = specs_and_schema(keys, relation, weighted)

    def run(fused):
        if fused:
            return grouped_aggregate(
                relation, keys, keys, specs, out_schema, weights, mask
            )
        sliced_weights = None if weights is None else weights[mask]
        return grouped_aggregate(
            relation.filter(mask), keys, keys, specs, out_schema, sliced_weights
        )

    empty_after_filter = not mask.any()
    if not keys and empty_after_filter and not weighted:
        # Ungrouped unweighted aggregates over zero rows raise in both forms
        # (grouped shapes just drop every group and return zero rows).
        with pytest.raises(SchemaError):
            run(fused=True)
        with pytest.raises(SchemaError):
            run(fused=False)
        return
    fused = run(fused=True)
    materialized = run(fused=False)
    assert fused.schema == materialized.schema
    assert fused.num_rows == materialized.num_rows
    for name in fused.column_names:
        np.testing.assert_array_equal(
            fused.column(name), materialized.column(name), err_msg=name
        )


def test_selection_drops_groups_with_no_selected_rows():
    relation = Relation.from_dict(
        {"a": ["x", "x", "y", "z"], "v": [1, 2, 3, 4]}
    )
    specs = [AggregateSpec("SUM", ColumnRef("v"), "s")]
    out_schema = Schema([Field("a", DType.TEXT), Field("s", DType.INT)])
    mask = np.array([True, True, False, True])
    out = grouped_aggregate(relation, ["a"], ["a"], specs, out_schema, None, mask)
    assert out.to_pylist() == [{"a": "x", "s": 3}, {"a": "z", "s": 4}]


def test_selection_length_mismatch_raises():
    relation = Relation.from_dict({"a": ["x", "y"], "v": [1, 2]})
    specs = [AggregateSpec("COUNT", None, "n")]
    out_schema = Schema([Field("a", DType.TEXT), Field("n", DType.INT)])
    with pytest.raises(SchemaError):
        grouped_aggregate(
            relation, ["a"], ["a"], specs, out_schema, None, np.array([True])
        )


def test_selection_does_not_rebuild_group_dictionaries():
    from repro.relational.relation import dictionary_stats

    relation = Relation.from_dict({"a": ["x", "y", "x", "z"], "v": [1, 2, 3, 4]})
    specs = [AggregateSpec("COUNT", None, "n")]
    out_schema = Schema([Field("a", DType.TEXT), Field("n", DType.INT)])
    grouped_aggregate(relation, ["a"], ["a"], specs, out_schema)  # warm memo
    builds = dictionary_stats()["builds"]
    for _ in range(5):
        grouped_aggregate(
            relation, ["a"], ["a"], specs, out_schema, None,
            np.array([True, False, True, True]),
        )
    # Aggregate-output construction may encode its (tiny) key column, but
    # the 4-row scan relation itself must never re-encode.
    assert dictionary_stats()["builds"] - builds <= 5  # only from_groups outputs
    baseline = dictionary_stats()["builds"]
    relation.dictionary("a")
    assert dictionary_stats()["builds"] == baseline
