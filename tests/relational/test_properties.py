"""Property-based tests (hypothesis) for the relational substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.aggregates import AggregateSpec, compute_aggregate
from repro.relational.expressions import ColumnRef
from repro.relational.groupby import group_rows
from repro.relational.relation import Relation

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
tags = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def tagged_relation(draw, min_rows=1, max_rows=60):
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    values = draw(st.lists(floats, min_size=n, max_size=n))
    labels = draw(st.lists(tags, min_size=n, max_size=n))
    return Relation.from_dict({"v": values, "tag": labels})


@given(tagged_relation())
@settings(max_examples=60)
def test_group_rows_partitions_all_rows(rel):
    """Groups are a disjoint cover of the row indices."""
    groups = group_rows(rel, ["tag"])
    combined = np.concatenate([idx for _, idx in groups])
    assert sorted(combined.tolist()) == list(range(rel.num_rows))
    assert len(set(combined.tolist())) == rel.num_rows


@given(tagged_relation())
@settings(max_examples=60)
def test_grouped_counts_sum_to_total(rel):
    groups = group_rows(rel, ["tag"])
    total = sum(len(idx) for _, idx in groups)
    assert total == rel.num_rows


@given(tagged_relation())
@settings(max_examples=60)
def test_weighted_sum_linear_in_weights(rel):
    """SUM with weights w1+w2 equals SUM with w1 plus SUM with w2."""
    rng = np.random.default_rng(0)
    w1 = rng.random(rel.num_rows)
    w2 = rng.random(rel.num_rows)
    spec = AggregateSpec("SUM", ColumnRef("v"), "s")
    lhs = compute_aggregate(spec, rel, w1 + w2)
    rhs = compute_aggregate(spec, rel, w1) + compute_aggregate(spec, rel, w2)
    assert np.isclose(lhs, rhs, rtol=1e-9, atol=1e-6)


@given(tagged_relation())
@settings(max_examples=60)
def test_weighted_avg_between_min_and_max(rel):
    rng = np.random.default_rng(1)
    w = rng.random(rel.num_rows) + 1e-9
    avg = compute_aggregate(AggregateSpec("AVG", ColumnRef("v"), "a"), rel, w)
    lo = compute_aggregate(AggregateSpec("MIN", ColumnRef("v"), "m"), rel, w)
    hi = compute_aggregate(AggregateSpec("MAX", ColumnRef("v"), "M"), rel, w)
    assert lo - 1e-9 <= avg <= hi + 1e-9


@given(tagged_relation())
@settings(max_examples=60)
def test_scaling_weights_scales_count(rel):
    w = np.ones(rel.num_rows)
    spec = AggregateSpec("COUNT", None, "c")
    assert compute_aggregate(spec, rel, 3.0 * w) == 3.0 * compute_aggregate(spec, rel, w)


@given(tagged_relation(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60)
def test_sort_is_permutation(rel, seed):
    out = rel.sort_by(["v"])
    assert sorted(out.column("v").tolist()) == sorted(rel.column("v").tolist())
    assert np.all(np.diff(out.column("v")) >= 0)


@given(tagged_relation())
@settings(max_examples=60)
def test_filter_then_concat_complement_is_permutation(rel):
    mask = rel.column("v") > 0
    kept, dropped = rel.filter(mask), rel.filter(~mask)
    assert kept.num_rows + dropped.num_rows == rel.num_rows
    merged = sorted(kept.column("v").tolist() + dropped.column("v").tolist())
    assert merged == sorted(rel.column("v").tolist())
