"""Unit tests for the columnar Relation."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational.dtypes import DType
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def rel():
    schema = Schema.of(id=DType.INT, score=DType.FLOAT, tag=DType.TEXT)
    return Relation.from_columns(
        schema,
        {"id": [1, 2, 3, 4], "score": [0.5, 1.5, 2.5, 3.5], "tag": ["a", "b", "a", "c"]},
    )


class TestConstruction:
    def test_from_columns_coerces(self, rel):
        assert rel.num_rows == 4
        assert rel.column("id").dtype == np.int64

    def test_from_rows(self):
        schema = Schema.of(x=DType.INT, y=DType.TEXT)
        rel = Relation.from_rows(schema, [(1, "a"), (2, "b")])
        assert rel.to_pylist() == [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]

    def test_from_rows_bad_arity(self):
        schema = Schema.of(x=DType.INT, y=DType.TEXT)
        with pytest.raises(SchemaError, match="arity"):
            Relation.from_rows(schema, [(1,)])

    def test_from_dict_infers(self):
        rel = Relation.from_dict({"a": [1, 2], "b": ["x", "y"]})
        assert rel.schema.dtype("a") is DType.INT
        assert rel.schema.dtype("b") is DType.TEXT

    def test_empty(self):
        rel = Relation.empty(Schema.of(a=DType.FLOAT))
        assert rel.num_rows == 0
        assert rel.column("a").dtype == np.float64

    def test_ragged_columns_rejected(self):
        schema = Schema.of(a=DType.INT, b=DType.INT)
        with pytest.raises(SchemaError, match="ragged"):
            Relation.from_columns(schema, {"a": [1], "b": [1, 2]})

    def test_column_set_mismatch_rejected(self):
        schema = Schema.of(a=DType.INT)
        with pytest.raises(SchemaError):
            Relation(schema, {"b": np.array([1])})


class TestAccess:
    def test_rows_iteration(self, rel):
        rows = list(rel.rows())
        assert rows[0] == (1, 0.5, "a")
        assert len(rows) == 4

    def test_unknown_column_raises(self, rel):
        with pytest.raises(SchemaError):
            rel.column("nope")

    def test_to_pylist_native_types(self, rel):
        first = rel.to_pylist()[0]
        assert isinstance(first["id"], int)
        assert isinstance(first["score"], float)
        assert isinstance(first["tag"], str)


class TestTransforms:
    def test_filter(self, rel):
        out = rel.filter(rel.column("score") > 1.0)
        assert out.num_rows == 3
        assert out.column("id").tolist() == [2, 3, 4]

    def test_filter_wrong_length(self, rel):
        with pytest.raises(SchemaError):
            rel.filter(np.array([True]))

    def test_take_with_duplicates(self, rel):
        out = rel.take(np.array([0, 0, 3]))
        assert out.column("id").tolist() == [1, 1, 4]

    def test_project_order(self, rel):
        out = rel.project(["tag", "id"])
        assert out.column_names == ("tag", "id")

    def test_rename(self, rel):
        out = rel.rename({"id": "key"})
        assert "key" in out.schema
        assert out.column("key").tolist() == [1, 2, 3, 4]

    def test_with_column_append(self, rel):
        out = rel.with_column("w", DType.FLOAT, [1, 1, 1, 1])
        assert out.column_names[-1] == "w"
        assert rel.column_names == ("id", "score", "tag")  # original untouched

    def test_with_column_replace(self, rel):
        out = rel.with_column("score", DType.FLOAT, [9, 9, 9, 9])
        assert out.column("score").tolist() == [9.0] * 4
        assert out.column_names == rel.column_names

    def test_with_column_length_mismatch(self, rel):
        with pytest.raises(SchemaError):
            rel.with_column("w", DType.FLOAT, [1.0])

    def test_drop_column(self, rel):
        out = rel.drop_column("score")
        assert out.column_names == ("id", "tag")

    def test_drop_missing_column_raises(self, rel):
        with pytest.raises(SchemaError):
            rel.drop_column("nope")

    def test_concat(self, rel):
        out = rel.concat(rel)
        assert out.num_rows == 8

    def test_concat_schema_mismatch(self, rel):
        other = Relation.from_dict({"id": [1]})
        with pytest.raises(SchemaError):
            rel.concat(other)

    def test_head(self, rel):
        assert rel.head(2).num_rows == 2
        assert rel.head(100).num_rows == 4


class TestSort:
    def test_single_key_ascending(self, rel):
        out = rel.sort_by(["score"], [False])
        assert out.column("id").tolist() == [4, 3, 2, 1]

    def test_multi_key(self):
        rel = Relation.from_dict({"g": ["b", "a", "b", "a"], "v": [2, 1, 1, 2]})
        out = rel.sort_by(["g", "v"])
        assert list(zip(out.column("g").tolist(), out.column("v").tolist())) == [
            ("a", 1),
            ("a", 2),
            ("b", 1),
            ("b", 2),
        ]

    def test_mixed_directions(self):
        rel = Relation.from_dict({"g": ["a", "b", "a", "b"], "v": [1, 2, 3, 4]})
        out = rel.sort_by(["g", "v"], [True, False])
        assert out.column("v").tolist() == [3, 1, 4, 2]

    def test_stability(self):
        rel = Relation.from_dict({"k": [1, 1, 1], "orig": [10, 20, 30]})
        out = rel.sort_by(["k"])
        assert out.column("orig").tolist() == [10, 20, 30]

    def test_empty_relation(self):
        rel = Relation.empty(Schema.of(a=DType.INT))
        assert rel.sort_by(["a"]).num_rows == 0


class TestEquality:
    def test_equals_self(self, rel):
        assert rel.equals(rel)

    def test_float_tolerance(self):
        a = Relation.from_dict({"x": [0.1 + 0.2]})
        b = Relation.from_dict({"x": [0.3]})
        assert a.equals(b)

    def test_different_rows(self, rel):
        assert not rel.equals(rel.head(2))
