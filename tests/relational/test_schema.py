"""Unit tests for Schema and Field."""

import pytest

from repro.errors import SchemaError
from repro.relational.dtypes import DType
from repro.relational.schema import Field, Schema


@pytest.fixture
def schema():
    return Schema.of(a=DType.INT, b=DType.FLOAT, c=DType.TEXT)


class TestConstruction:
    def test_of_keeps_order(self, schema):
        assert schema.names == ("a", "b", "c")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate column"):
            Schema([Field("x", DType.INT), Field("x", DType.FLOAT)])

    def test_empty_field_name_rejected(self):
        with pytest.raises(SchemaError):
            Field("", DType.INT)

    def test_len_and_iter(self, schema):
        assert len(schema) == 3
        assert [f.name for f in schema] == ["a", "b", "c"]


class TestLookup:
    def test_field(self, schema):
        assert schema.field("b") == Field("b", DType.FLOAT)

    def test_dtype(self, schema):
        assert schema.dtype("c") is DType.TEXT

    def test_position(self, schema):
        assert schema.position("c") == 2

    def test_contains(self, schema):
        assert "a" in schema
        assert "z" not in schema

    def test_missing_column_raises_with_candidates(self, schema):
        with pytest.raises(SchemaError, match="no such column: 'z'"):
            schema.field("z")


class TestDerivedSchemas:
    def test_project(self, schema):
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")

    def test_project_unknown_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.project(["nope"])

    def test_concat(self, schema):
        other = Schema.of(d=DType.BOOL)
        assert schema.concat(other).names == ("a", "b", "c", "d")

    def test_concat_collision_raises(self, schema):
        with pytest.raises(SchemaError, match="duplicate"):
            schema.concat(Schema.of(a=DType.BOOL))

    def test_rename(self, schema):
        renamed = schema.rename({"a": "alpha"})
        assert renamed.names == ("alpha", "b", "c")
        assert renamed.dtype("alpha") is DType.INT

    def test_equality_and_hash(self, schema):
        twin = Schema.of(a=DType.INT, b=DType.FLOAT, c=DType.TEXT)
        assert schema == twin
        assert hash(schema) == hash(twin)
        assert schema != Schema.of(a=DType.INT)
