"""Shared-memory relation segments: round-trips, lifecycle, concurrency."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.errors import MosaicError, SchemaError
from repro.relational.dtypes import DType
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.shm import (
    SEGMENT_PREFIX,
    SharedRelationStore,
    attach_relation,
    share_relation,
)


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


@pytest.fixture
def rel():
    schema = Schema.of(id=DType.INT, score=DType.FLOAT, tag=DType.TEXT, ok=DType.BOOL)
    return Relation.from_columns(
        schema,
        {
            "id": [3, 1, 4, 1, 5],
            "score": [0.5, -1.5, 2.25, float("nan"), 3.5],
            "tag": ["b", "a", "b", "c", "a"],
            "ok": [True, False, True, True, False],
        },
    )


class TestRoundTrip:
    def test_every_dtype_round_trips(self, rel):
        handle = share_relation(rel)
        try:
            attached = attach_relation(handle.descriptor)
            try:
                assert attached.relation.schema == rel.schema
                for name in rel.column_names:
                    ours, theirs = rel.column(name), attached.relation.column(name)
                    assert ours.dtype == theirs.dtype
                    if ours.dtype == object:
                        assert list(ours) == list(theirs)
                    else:
                        assert ours.tobytes() == theirs.tobytes()
            finally:
                attached.close()
        finally:
            handle.release()

    def test_text_stays_in_code_space(self, rel):
        handle = share_relation(rel)
        try:
            attached = attach_relation(handle.descriptor)
            try:
                encoding = attached.relation.encoding("tag")
                assert encoding is not None
                vocab, codes = encoding
                assert codes.dtype == np.int32
                assert list(vocab[codes]) == list(rel.column("tag"))
            finally:
                attached.close()
        finally:
            handle.release()

    def test_merged_vocab_round_trips(self, rel):
        # concat merges vocabularies code-side; the shared encoding must
        # carry the merged vocab, including entries only one side uses.
        other = Relation.from_columns(
            rel.schema,
            {
                "id": [9],
                "score": [0.0],
                "tag": ["zz"],
                "ok": [False],
            },
        )
        merged = rel.concat(other)
        handle = share_relation(merged)
        try:
            attached = attach_relation(handle.descriptor)
            try:
                assert list(attached.relation.column("tag")) == list(
                    merged.column("tag")
                )
                vocab, _ = attached.relation.encoding("tag")
                assert "zz" in set(vocab)
            finally:
                attached.close()
        finally:
            handle.release()

    def test_empty_relation(self):
        schema = Schema.of(x=DType.INT, t=DType.TEXT)
        empty = Relation.empty(schema)
        handle = share_relation(empty)
        try:
            attached = attach_relation(handle.descriptor)
            try:
                assert attached.relation.num_rows == 0
                assert attached.relation.schema == schema
            finally:
                attached.close()
        finally:
            handle.release()

    def test_extras_round_trip(self, rel):
        weights = np.linspace(0.5, 2.5, rel.num_rows)
        handle = share_relation(rel, extras={"__weights__": weights})
        try:
            attached = attach_relation(handle.descriptor)
            try:
                assert attached.extras["__weights__"].tobytes() == weights.tobytes()
            finally:
                attached.close()
        finally:
            handle.release()

    def test_extras_must_match_row_count(self, rel):
        with pytest.raises(SchemaError):
            share_relation(rel, extras={"__weights__": np.ones(rel.num_rows + 1)})

    def test_windowed_attach_sees_exactly_the_row_range(self, rel):
        handle = share_relation(rel, extras={"__weights__": np.arange(5.0)})
        try:
            attached = attach_relation(handle.descriptor, window=(1, 4))
            try:
                window = attached.relation
                expected = rel.slice_rows(1, 4)
                assert window.num_rows == 3
                for name in rel.column_names:
                    ours, theirs = expected.column(name), window.column(name)
                    if ours.dtype == object:
                        assert list(ours) == list(theirs)
                    else:
                        assert ours.tobytes() == theirs.tobytes()
                vocab, codes = window.encoding("tag")
                assert list(vocab[codes]) == list(expected.column("tag"))
                assert attached.extras["__weights__"].tolist() == [1.0, 2.0, 3.0]
            finally:
                attached.close()
        finally:
            handle.release()

    def test_windowed_attach_rejects_out_of_bounds(self, rel):
        handle = share_relation(rel)
        try:
            with pytest.raises(MosaicError):
                attach_relation(handle.descriptor, window=(2, 6))
        finally:
            handle.release()

    def test_attached_views_are_read_only(self, rel):
        handle = share_relation(rel)
        try:
            attached = attach_relation(handle.descriptor)
            try:
                with pytest.raises(ValueError):
                    attached.relation.column("id")[0] = 99
            finally:
                attached.close()
        finally:
            handle.release()


class TestLifecycle:
    def test_release_unlinks_segment(self, rel):
        handle = share_relation(rel)
        name = handle.descriptor.segment
        assert name.startswith(SEGMENT_PREFIX)
        assert _segment_exists(name)
        handle.release()
        assert not _segment_exists(name)

    def test_refcount_keeps_segment_alive(self, rel):
        handle = share_relation(rel)
        name = handle.descriptor.segment
        handle.acquire()
        handle.release()
        assert _segment_exists(name)
        handle.release()
        assert not _segment_exists(name)

    def test_acquire_after_unlink_raises(self, rel):
        handle = share_relation(rel)
        handle.release()
        with pytest.raises(MosaicError):
            handle.acquire()

    def test_store_reuses_segments(self, rel):
        store = SharedRelationStore(max_segments=4)
        try:
            first = store.lease(rel)
            second = store.lease(rel)
            assert first.descriptor.segment == second.descriptor.segment
            first.release()
            second.release()
            stats = store.stats()
            assert stats["shares"] == 1
            assert stats["reuses"] == 1
            assert stats["live_segments"] == 1
        finally:
            store.close_all()

    def test_store_evicts_least_recently_used(self, rel):
        store = SharedRelationStore(max_segments=2)
        try:
            relations = [rel.slice_rows(0, i + 1) for i in range(3)]
            handles = [store.lease(r) for r in relations]
            names = [h.descriptor.segment for h in handles]
            for handle in handles:
                handle.release()
            assert store.stats()["evictions"] == 1
            assert not _segment_exists(names[0])  # oldest evicted
            assert _segment_exists(names[1]) and _segment_exists(names[2])
        finally:
            store.close_all()

    def test_close_all_is_idempotent(self, rel):
        store = SharedRelationStore()
        handle = store.lease(rel)
        name = handle.descriptor.segment
        handle.release()
        store.close_all()
        store.close_all()
        assert store.closed
        assert not _segment_exists(name)
        with pytest.raises(MosaicError):
            store.lease(rel)


def _attach_and_report(descriptor, column, queue):
    attached = attach_relation(descriptor)
    try:
        values = attached.relation.column(column)
        queue.put((os.getpid(), list(values)))
    finally:
        attached.close()


class TestConcurrentAttach:
    def test_two_processes_attach_same_segment(self, rel):
        handle = share_relation(rel)
        try:
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
            queue = ctx.Queue()
            workers = [
                ctx.Process(
                    target=_attach_and_report,
                    args=(handle.descriptor, "tag", queue),
                )
                for _ in range(2)
            ]
            for worker in workers:
                worker.start()
            reports = [queue.get(timeout=30) for _ in workers]
            for worker in workers:
                worker.join(timeout=30)
                assert worker.exitcode == 0
            pids = {pid for pid, _ in reports}
            assert len(pids) == 2  # genuinely two distinct processes
            for _, values in reports:
                assert values == list(rel.column("tag"))
        finally:
            handle.release()
        assert not _segment_exists(handle.descriptor.segment)
