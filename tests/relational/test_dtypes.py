"""Unit tests for the logical type system."""

import numpy as np
import pytest

from repro.errors import TypeMismatchError
from repro.relational.dtypes import DType, common_numeric_type


class TestParse:
    def test_canonical_names(self):
        assert DType.parse("INT") is DType.INT
        assert DType.parse("FLOAT") is DType.FLOAT
        assert DType.parse("TEXT") is DType.TEXT
        assert DType.parse("BOOL") is DType.BOOL

    def test_aliases(self):
        assert DType.parse("integer") is DType.INT
        assert DType.parse("DOUBLE") is DType.FLOAT
        assert DType.parse("varchar") is DType.TEXT
        assert DType.parse("Boolean") is DType.BOOL

    def test_whitespace_tolerated(self):
        assert DType.parse("  real ") is DType.FLOAT

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError, match="unknown column type"):
            DType.parse("BLOB")


class TestInfer:
    def test_int_list(self):
        assert DType.infer([1, 2, 3]) is DType.INT

    def test_float_list(self):
        assert DType.infer([1.5, 2.0]) is DType.FLOAT

    def test_mixed_int_float_is_float(self):
        assert DType.infer([1, 2.5]) is DType.FLOAT

    def test_bool_list(self):
        assert DType.infer([True, False]) is DType.BOOL

    def test_bool_not_confused_with_int(self):
        # bool is a subclass of int in Python; inference must not collapse it.
        assert DType.infer([True, True]) is DType.BOOL

    def test_string_list(self):
        assert DType.infer(["a", "b"]) is DType.TEXT

    def test_numpy_arrays(self):
        assert DType.infer(np.array([1, 2], dtype=np.int32)) is DType.INT
        assert DType.infer(np.array([1.0])) is DType.FLOAT
        assert DType.infer(np.array([True])) is DType.BOOL


class TestCoerceArray:
    def test_int_from_floats_with_integral_values(self):
        out = DType.INT.coerce_array([1.0, 2.0])
        assert out.dtype == np.int64
        assert out.tolist() == [1, 2]

    def test_int_rejects_fractional(self):
        with pytest.raises(TypeMismatchError, match="non-integral"):
            DType.INT.coerce_array([1.5])

    def test_int_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            DType.INT.coerce_array(["a"])

    def test_text_stringifies_everything(self):
        out = DType.TEXT.coerce_array([1, "b", 2.5])
        assert out.tolist() == ["1", "b", "2.5"]
        assert out.dtype == object

    def test_float_from_ints(self):
        out = DType.FLOAT.coerce_array([1, 2])
        assert out.dtype == np.float64

    def test_bool(self):
        out = DType.BOOL.coerce_array([1, 0])
        assert out.tolist() == [True, False]


class TestCoerceScalar:
    def test_int_ok(self):
        assert DType.INT.coerce_scalar(3.0) == 3

    def test_int_fractional_raises(self):
        with pytest.raises(TypeMismatchError):
            DType.INT.coerce_scalar(3.5)

    def test_text(self):
        assert DType.TEXT.coerce_scalar(12) == "12"


class TestCommonNumericType:
    def test_int_int(self):
        assert common_numeric_type(DType.INT, DType.INT) is DType.INT

    def test_int_float(self):
        assert common_numeric_type(DType.INT, DType.FLOAT) is DType.FLOAT

    def test_text_rejected(self):
        with pytest.raises(TypeMismatchError):
            common_numeric_type(DType.TEXT, DType.INT)


class TestProperties:
    def test_is_numeric(self):
        assert DType.INT.is_numeric
        assert DType.FLOAT.is_numeric
        assert not DType.TEXT.is_numeric
        assert not DType.BOOL.is_numeric

    def test_numpy_dtype_mapping(self):
        assert DType.INT.numpy_dtype == np.dtype(np.int64)
        assert DType.TEXT.numpy_dtype == np.dtype(object)
