"""Unit tests for weighted and unweighted aggregates."""

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.aggregates import AggregateSpec, compute_aggregate
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef
from repro.relational.relation import Relation


@pytest.fixture
def rel():
    return Relation.from_dict({"v": [1.0, 2.0, 3.0, 4.0], "tag": ["a", "b", "a", "b"]})


def spec(func, column=None):
    expr = None if column is None else ColumnRef(column)
    return AggregateSpec(func, expr, alias="out")


class TestUnweighted:
    def test_count_star(self, rel):
        assert compute_aggregate(spec("COUNT"), rel) == 4

    def test_count_column_equals_count_star(self, rel):
        assert compute_aggregate(spec("COUNT", "v"), rel) == 4

    def test_sum(self, rel):
        assert compute_aggregate(spec("SUM", "v"), rel) == 10.0

    def test_avg(self, rel):
        assert compute_aggregate(spec("AVG", "v"), rel) == 2.5

    def test_min_max(self, rel):
        assert compute_aggregate(spec("MIN", "v"), rel) == 1.0
        assert compute_aggregate(spec("MAX", "v"), rel) == 4.0

    def test_count_empty_is_zero(self):
        empty = Relation.from_dict({"v": np.array([], dtype=float)})
        assert compute_aggregate(spec("COUNT"), empty) == 0

    def test_sum_empty_raises(self):
        empty = Relation.from_dict({"v": np.array([], dtype=float)})
        with pytest.raises(SchemaError, match="zero rows"):
            compute_aggregate(spec("SUM", "v"), empty)


class TestWeighted:
    """The paper's rewrite: COUNT(*) -> SUM(w), SUM(a) -> SUM(w*a), etc."""

    def test_weighted_count_is_sum_of_weights(self, rel):
        w = np.array([2.0, 3.0, 0.5, 0.5])
        assert compute_aggregate(spec("COUNT"), rel, w) == pytest.approx(6.0)

    def test_weighted_sum(self, rel):
        w = np.array([1.0, 0.0, 2.0, 0.0])
        assert compute_aggregate(spec("SUM", "v"), rel, w) == pytest.approx(7.0)

    def test_weighted_avg(self, rel):
        w = np.array([1.0, 0.0, 0.0, 3.0])
        # (1*1 + 3*4) / 4 = 13/4
        assert compute_aggregate(spec("AVG", "v"), rel, w) == pytest.approx(3.25)

    def test_weighted_min_ignores_zero_weight(self, rel):
        w = np.array([0.0, 1.0, 1.0, 1.0])
        assert compute_aggregate(spec("MIN", "v"), rel, w) == 2.0

    def test_weighted_max_ignores_zero_weight(self, rel):
        w = np.array([1.0, 1.0, 1.0, 0.0])
        assert compute_aggregate(spec("MAX", "v"), rel, w) == 3.0

    def test_all_zero_weight_minmax_raises(self, rel):
        with pytest.raises(SchemaError, match="zero total weight"):
            compute_aggregate(spec("MIN", "v"), rel, np.zeros(4))

    def test_zero_total_weight_avg_raises(self, rel):
        with pytest.raises(SchemaError, match="zero total weight"):
            compute_aggregate(spec("AVG", "v"), rel, np.zeros(4))

    def test_uniform_weights_match_unweighted(self, rel):
        w = np.ones(4)
        for func in ["SUM", "AVG", "MIN", "MAX"]:
            assert compute_aggregate(spec(func, "v"), rel, w) == pytest.approx(
                compute_aggregate(spec(func, "v"), rel)
            )

    def test_weight_length_mismatch(self, rel):
        with pytest.raises(SchemaError):
            compute_aggregate(spec("COUNT"), rel, np.ones(3))


class TestSpecValidation:
    def test_unknown_function(self):
        with pytest.raises(TypeMismatchError):
            AggregateSpec("MEDIAN", ColumnRef("v"), "out")

    def test_star_only_for_count(self):
        with pytest.raises(TypeMismatchError):
            AggregateSpec("SUM", None, "out")

    def test_aggregate_on_text_raises(self, rel):
        with pytest.raises(TypeMismatchError):
            compute_aggregate(spec("SUM", "tag"), rel)

    def test_output_dtype(self, rel):
        assert spec("COUNT").output_dtype(rel.schema, weighted=False) is DType.INT
        assert spec("COUNT").output_dtype(rel.schema, weighted=True) is DType.FLOAT
        assert spec("AVG", "v").output_dtype(rel.schema, weighted=False) is DType.FLOAT

    def test_to_sql(self):
        assert spec("COUNT").to_sql() == "COUNT(*)"
        assert spec("AVG", "v").to_sql() == "AVG(v)"
