"""Vectorized grouped-aggregation kernels vs. the per-group reference.

The kernel in :mod:`repro.relational.kernels` must agree exactly with
applying :func:`repro.relational.aggregates.compute_aggregate` group by
group, for every aggregate function, weighted and unweighted, across
single-key, multi-key, and ungrouped shapes.
"""

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.aggregates import AggregateSpec, compute_aggregate
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef
from repro.relational.groupby import distinct_indices, group_codes, group_rows
from repro.relational.kernels import grouped_aggregate
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


def make_relation(rng, n):
    return Relation.from_dict(
        {
            "a": rng.choice(["x", "y", "z"], size=n).tolist(),
            "b": rng.integers(0, 4, size=n),
            "v": rng.integers(-50, 50, size=n),
            "f": rng.normal(size=n),
        }
    )


def reference_aggregate(relation, keys, specs, out_schema, weights):
    """The seed implementation: per-group take + Python-row loop."""
    rows = []
    for key, indices in group_rows(relation, keys):
        group_weights = None if weights is None else weights[indices]
        if group_weights is not None and not np.any(group_weights > 0):
            continue
        group_relation = relation.take(indices)
        row = list(key)
        for spec in specs:
            row.append(compute_aggregate(spec, group_relation, group_weights))
        rows.append(tuple(row))
    return Relation.from_rows(out_schema, rows)


def specs_and_schema(keys, weighted, schema):
    specs = [
        AggregateSpec("COUNT", None, "n"),
        AggregateSpec("SUM", ColumnRef("v"), "s"),
        AggregateSpec("AVG", ColumnRef("f"), "m"),
        AggregateSpec("MIN", ColumnRef("v"), "lo"),
        AggregateSpec("MAX", ColumnRef("f"), "hi"),
    ]
    fields = [Field(k, schema.dtype(k)) for k in keys]
    fields += [Field(s.alias, s.output_dtype(schema, weighted)) for s in specs]
    return specs, Schema(fields)


@pytest.mark.parametrize("keys", [["a"], ["a", "b"], []])
@pytest.mark.parametrize("weighted", [False, True])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_kernel_matches_reference(keys, weighted, seed):
    rng = np.random.default_rng(seed)
    relation = make_relation(rng, 200)
    weights = None
    if weighted:
        weights = rng.uniform(0, 2, size=200)
        weights[weights < 0.4] = 0.0  # some zero-weight rows and groups
    specs, out_schema = specs_and_schema(keys, weighted, relation.schema)

    fast = grouped_aggregate(relation, keys, keys, specs, out_schema, weights)
    slow = reference_aggregate(relation, keys, specs, out_schema, weights)
    assert fast.equals(slow)


def test_kernel_all_zero_weight_group_dropped():
    relation = Relation.from_dict({"k": ["a", "a", "b"], "v": [1, 2, 3]})
    weights = np.array([1.0, 1.0, 0.0])
    specs = [AggregateSpec("COUNT", None, "n")]
    out_schema = Schema([Field("k", DType.TEXT), Field("n", DType.FLOAT)])
    out = grouped_aggregate(relation, ["k"], ["k"], specs, out_schema, weights)
    assert out.to_pylist() == [{"k": "a", "n": 2.0}]


def test_kernel_empty_relation_grouped_is_empty():
    relation = Relation.from_dict({"k": [], "v": []})
    specs = [AggregateSpec("SUM", ColumnRef("v"), "s")]
    out_schema = Schema([Field("k", DType.TEXT), Field("s", DType.FLOAT)])
    out = grouped_aggregate(relation, ["k"], ["k"], specs, out_schema, None)
    assert out.num_rows == 0


def test_kernel_ungrouped_empty_sum_raises():
    relation = Relation.from_dict({"v": np.array([], dtype=np.int64)})
    specs = [AggregateSpec("SUM", ColumnRef("v"), "s")]
    out_schema = Schema([Field("s", DType.INT)])
    with pytest.raises(SchemaError, match="zero rows"):
        grouped_aggregate(relation, [], [], specs, out_schema, None)


def test_kernel_int_sum_exact_beyond_float53():
    relation = Relation.from_dict(
        {"k": ["a", "a"], "v": np.array([2**62, 1], dtype=np.int64)}
    )
    specs = [AggregateSpec("SUM", ColumnRef("v"), "s")]
    out_schema = Schema([Field("k", DType.TEXT), Field("s", DType.INT)])
    out = grouped_aggregate(relation, ["k"], ["k"], specs, out_schema, None)
    # float64 accumulation would truncate the +1; int64 must not.
    assert out.column("s")[0] == 2**62 + 1


def test_kernel_rejects_text_sum():
    relation = Relation.from_dict({"k": ["a"], "t": ["oops"]})
    specs = [AggregateSpec("SUM", ColumnRef("t"), "s")]
    out_schema = Schema([Field("k", DType.TEXT), Field("s", DType.FLOAT)])
    with pytest.raises(TypeMismatchError, match="numeric"):
        grouped_aggregate(relation, ["k"], ["k"], specs, out_schema, None)


class TestGroupCodes:
    def test_codes_align_with_group_rows(self):
        rng = np.random.default_rng(3)
        relation = make_relation(rng, 120)
        codes, num_groups, first = group_codes(relation, ["a", "b"])
        groups = group_rows(relation, ["a", "b"])
        assert num_groups == len(groups)
        for group_id, (_, indices) in enumerate(groups):
            assert np.array_equal(np.flatnonzero(codes == group_id), np.sort(indices))
            assert first[group_id] == indices.min()

    def test_no_keys_single_group(self):
        relation = Relation.from_dict({"v": [1, 2, 3]})
        codes, num_groups, first = group_codes(relation, [])
        assert codes.tolist() == [0, 0, 0]
        assert num_groups == 1
        assert first.tolist() == [0]

    def test_no_keys_empty_relation_still_one_group(self):
        relation = Relation.from_dict({"v": np.array([], dtype=np.int64)})
        codes, num_groups, first = group_codes(relation, [])
        assert codes.size == 0
        assert num_groups == 1
        assert first.size == 0


class TestDistinctIndices:
    def test_first_occurrences_in_key_order(self):
        relation = Relation.from_dict({"k": ["b", "a", "b", "a", "c"]})
        # key-sorted order: a (first at 1), b (first at 0), c (first at 4)
        assert distinct_indices(relation, ["k"]).tolist() == [1, 0, 4]

    def test_empty_relation(self):
        relation = Relation.from_dict({"k": []})
        assert distinct_indices(relation, ["k"]).size == 0

    def test_multi_key(self):
        relation = Relation.from_dict(
            {"k": ["a", "a", "b", "a"], "j": [1, 2, 1, 1]}
        )
        assert sorted(distinct_indices(relation, ["k", "j"]).tolist()) == [0, 1, 2]


class TestFromGroups:
    def test_columnar_construction(self):
        schema = Schema([Field("k", DType.TEXT), Field("n", DType.INT)])
        out = Relation.from_groups(schema, [np.array(["a", "b"], dtype=object), np.array([1.0, 2.0])])
        assert out.to_pylist() == [{"k": "a", "n": 1}, {"k": "b", "n": 2}]
        assert out.schema.dtype("n") is DType.INT

    def test_arity_mismatch_rejected(self):
        schema = Schema([Field("k", DType.TEXT), Field("n", DType.INT)])
        with pytest.raises(SchemaError, match="arity"):
            Relation.from_groups(schema, [np.array(["a"], dtype=object)])
