"""Unit tests for group-by, relational operators, and CSV IO."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.groupby import group_rows
from repro.relational.ops import (
    distinct,
    filter_rows,
    hash_join,
    limit,
    project_expressions,
    union_all,
)
from repro.relational.predicates import Comparison
from repro.relational.csvio import read_csv, write_csv
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def rel():
    return Relation.from_dict(
        {
            "g": ["a", "b", "a", "b", "c"],
            "h": [1, 1, 2, 1, 1],
            "v": [10.0, 20.0, 30.0, 40.0, 50.0],
        }
    )


class TestGroupRows:
    def test_single_key(self, rel):
        groups = dict(
            (key, idx.tolist()) for key, idx in group_rows(rel, ["g"])
        )
        assert groups[("a",)] == [0, 2]
        assert groups[("b",)] == [1, 3]
        assert groups[("c",)] == [4]

    def test_multi_key(self, rel):
        groups = {key: idx.tolist() for key, idx in group_rows(rel, ["g", "h"])}
        assert groups[("a", 1)] == [0]
        assert groups[("a", 2)] == [2]
        assert groups[("b", 1)] == [1, 3]

    def test_no_keys_single_group(self, rel):
        groups = group_rows(rel, [])
        assert len(groups) == 1
        key, idx = groups[0]
        assert key == ()
        assert idx.tolist() == [0, 1, 2, 3, 4]

    def test_empty_relation(self):
        empty = Relation.from_dict({"g": np.array([], dtype=object)})
        assert group_rows(empty, ["g"]) == []

    def test_keys_are_python_native(self, rel):
        key, _ = group_rows(rel, ["h"])[0]
        assert isinstance(key[0], int)

    def test_partition_is_complete_and_disjoint(self, rel):
        groups = group_rows(rel, ["g"])
        all_indices = np.concatenate([idx for _, idx in groups])
        assert sorted(all_indices.tolist()) == [0, 1, 2, 3, 4]


class TestOperators:
    def test_filter_rows(self, rel):
        out = filter_rows(rel, Comparison(">", ColumnRef("v"), Literal(25)))
        assert out.column("v").tolist() == [30.0, 40.0, 50.0]

    def test_filter_requires_boolean(self, rel):
        with pytest.raises(SchemaError, match="boolean"):
            filter_rows(rel, ColumnRef("v"))

    def test_project_expressions(self, rel):
        out = project_expressions(rel, [ColumnRef("v"), Literal(1)], ["val", "one"])
        assert out.column_names == ("val", "one")
        assert out.column("one").tolist() == [1] * 5

    def test_union_all(self, rel):
        out = union_all([rel, rel, rel])
        assert out.num_rows == 15

    def test_union_empty_list_raises(self):
        with pytest.raises(SchemaError):
            union_all([])

    def test_distinct(self, rel):
        out = distinct(rel, ["g"])
        assert sorted(out.column("g").tolist()) == ["a", "b", "c"]

    def test_distinct_all_columns(self):
        rel = Relation.from_dict({"a": [1, 1, 2], "b": [1, 1, 3]})
        assert distinct(rel).num_rows == 2

    def test_limit(self, rel):
        assert limit(rel, 2).num_rows == 2
        with pytest.raises(SchemaError):
            limit(rel, -1)


class TestHashJoin:
    def test_basic_join(self):
        left = Relation.from_dict({"k": ["a", "b", "c"], "lv": [1, 2, 3]})
        right = Relation.from_dict({"k2": ["a", "b", "b"], "rv": [10, 20, 30]})
        out = hash_join(left, right, "k", "k2")
        assert out.num_rows == 3
        pairs = sorted(zip(out.column("lv").tolist(), out.column("rv").tolist()))
        assert pairs == [(1, 10), (2, 20), (2, 30)]

    def test_name_collision_suffix(self):
        left = Relation.from_dict({"k": ["a"], "v": [1]})
        right = Relation.from_dict({"k": ["a"], "v": [9]})
        out = hash_join(left, right, "k", "k")
        assert set(out.column_names) == {"k", "v", "v_right"}

    def test_no_matches(self):
        left = Relation.from_dict({"k": ["a"], "v": [1]})
        right = Relation.from_dict({"k": ["z"], "w": [9]})
        assert hash_join(left, right, "k", "k").num_rows == 0

    def test_unknown_key_raises(self):
        left = Relation.from_dict({"k": ["a"]})
        with pytest.raises(SchemaError):
            hash_join(left, left, "nope", "k")


class TestCsvIo:
    def test_round_trip(self, rel, tmp_path):
        path = tmp_path / "rel.csv"
        write_csv(rel, path)
        back = read_csv(path, schema=rel.schema)
        assert back.equals(rel)

    def test_inference_round_trip(self, rel, tmp_path):
        path = tmp_path / "rel.csv"
        write_csv(rel, path)
        back = read_csv(path)
        assert back.schema.dtype("g") is DType.TEXT
        assert back.schema.dtype("h") is DType.INT
        assert back.schema.dtype("v") is DType.FLOAT

    def test_bool_inference(self, tmp_path):
        path = tmp_path / "b.csv"
        path.write_text("flag\ntrue\nfalse\n")
        back = read_csv(path)
        assert back.schema.dtype("flag") is DType.BOOL
        assert back.column("flag").tolist() == [True, False]

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            read_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError, match="arity"):
            read_csv(path)
