"""Code-space predicate evaluation must be bit-identical to naive evaluation.

Property-style equivalence: every operator (`=`, `!=`, `<`..`>=`
lexicographic, `IN`/`NOT IN`, `BETWEEN`/`NOT BETWEEN`, `LIKE`/`NOT LIKE`)
is evaluated three ways —

- over a dictionary-encoded relation (the vocab-broadcast fast path),
- over a raw-constructed relation with no encoding (the vectorized
  fallback), and
- by a per-row pure-Python reference —

and all three must agree element-wise, including vocab-miss constants
(below, between, and above every stored value), empty relations, sliced
encodings whose vocab is a superset of the present values, and
all-filtered masks.
"""

import numpy as np
import pytest

from repro.errors import TypeMismatchError
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.predicates import Between, Comparison, InList, Like
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

OPS = ["=", "!=", "<", "<=", ">", ">="]
_PY_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

VOCAB = ["", "AA", "B6", "DL", "NK", "UA", "WN", "aa", "~zz"]
# In-vocab hits plus misses below, between, and above every stored value.
CONSTANTS = ["AA", "NK", "~zz", "", " ", "AB", "Dl", "z", "\x7f\x7f"]


def encoded_relation(values):
    """Built through from_columns: carries a first-class encoding."""
    schema = Schema([Field("c", DType.TEXT), Field("v", DType.INT)])
    relation = Relation.from_columns(
        schema, {"c": values, "v": list(range(len(values)))}
    )
    assert relation.encoding("c") is not None
    return relation

def raw_relation(values):
    """Built through the raw constructor: no encoding (fallback path)."""
    schema = Schema([Field("c", DType.TEXT), Field("v", DType.INT)])
    column = np.empty(len(values), dtype=object)
    column[:] = [str(v) for v in values]
    return Relation(
        schema, {"c": column, "v": np.arange(len(values), dtype=np.int64)}
    )


def sliced_relation(values):
    """Filtered so the carried vocab is a strict superset of present values."""
    base_values = [*values, "__only_in_vocab__"]
    base = encoded_relation(base_values)
    mask = np.ones(len(base_values), dtype=bool)
    mask[-1] = False
    sliced = base.filter(mask)
    vocab, _ = sliced.encoding("c")
    assert "__only_in_vocab__" in set(vocab)
    return sliced


def relation_variants(values):
    return [encoded_relation(values), raw_relation(values), sliced_relation(values)]


def sample_values(rng, n):
    return [str(v) for v in rng.choice(VOCAB, size=n)]


@pytest.mark.parametrize("op", OPS)
@pytest.mark.parametrize("n", [0, 1, 257])
def test_comparison_equivalence(op, n):
    rng = np.random.default_rng(OPS.index(op) * 1000 + n)
    values = sample_values(rng, n)
    for constant in CONSTANTS:
        reference = np.asarray(
            [_PY_OPS[op](v, constant) for v in values], dtype=bool
        )
        for relation in relation_variants(values):
            mask = Comparison(op, ColumnRef("c"), Literal(constant)).evaluate(relation)
            assert mask.dtype == np.bool_
            np.testing.assert_array_equal(mask, reference)
            # Literal on the left: op flips, result must not.
            flipped_reference = np.asarray(
                [_PY_OPS[op](constant, v) for v in values], dtype=bool
            )
            flipped = Comparison(op, Literal(constant), ColumnRef("c")).evaluate(relation)
            np.testing.assert_array_equal(flipped, flipped_reference)


@pytest.mark.parametrize("negated", [False, True])
@pytest.mark.parametrize(
    "in_values",
    [(), ("AA",), ("AA", "NK", "~zz"), ("miss", "also-miss"), ("AA", "miss", "")],
)
def test_in_list_equivalence(negated, in_values):
    rng = np.random.default_rng(5)
    for n in (0, 1, 257):
        values = sample_values(rng, n)
        reference = np.asarray(
            [(v in set(in_values)) != negated for v in values], dtype=bool
        )
        for relation in relation_variants(values):
            mask = InList(ColumnRef("c"), in_values, negated=negated).evaluate(relation)
            np.testing.assert_array_equal(mask, reference)


@pytest.mark.parametrize("negated", [False, True])
@pytest.mark.parametrize(
    "bounds",
    [("AA", "NK"), ("", "~zz"), ("A", "Az"), ("miss", "miss"), ("z", "a"), ("NK", "NK")],
)
def test_between_equivalence(negated, bounds):
    low, high = bounds
    rng = np.random.default_rng(11)
    for n in (0, 1, 257):
        values = sample_values(rng, n)
        reference = np.asarray(
            [(low <= v <= high) != negated for v in values], dtype=bool
        )
        for relation in relation_variants(values):
            mask = Between(
                ColumnRef("c"), Literal(low), Literal(high), negated=negated
            ).evaluate(relation)
            np.testing.assert_array_equal(mask, reference)


@pytest.mark.parametrize("negated", [False, True])
@pytest.mark.parametrize("pattern", ["%", "A%", "%z", "_A", "A_", "", "AA", "%.%"])
def test_like_equivalence(negated, pattern):
    import re

    regex = re.compile(
        "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        ),
        re.DOTALL,
    )
    rng = np.random.default_rng(13)
    for n in (0, 1, 257):
        values = sample_values(rng, n)
        reference = np.asarray(
            [(regex.fullmatch(v) is not None) != negated for v in values], dtype=bool
        )
        for relation in relation_variants(values):
            mask = Like(ColumnRef("c"), pattern, negated=negated).evaluate(relation)
            np.testing.assert_array_equal(mask, reference)


def test_all_filtered_mask_keeps_equivalence():
    """Predicates over a fully filtered (zero-row, superset-vocab) relation."""
    base = encoded_relation(["AA", "DL", "WN"])
    empty = base.filter(np.zeros(3, dtype=bool))
    assert empty.num_rows == 0
    vocab, codes = empty.encoding("c")
    assert vocab.size == 3 and codes.size == 0
    for predicate in (
        Comparison("=", ColumnRef("c"), Literal("AA")),
        Comparison("<", ColumnRef("c"), Literal("ZZ")),
        InList(ColumnRef("c"), ("AA", "DL")),
        Between(ColumnRef("c"), Literal("A"), Literal("Z")),
        Like(ColumnRef("c"), "A%"),
    ):
        mask = predicate.evaluate(empty)
        assert mask.shape == (0,) and mask.dtype == np.bool_


def test_comparison_text_vs_non_text_raises_on_encoded_columns():
    relation = encoded_relation(["AA", "DL"])
    with pytest.raises(TypeMismatchError):
        Comparison("=", ColumnRef("c"), Literal(3)).evaluate(relation)
    with pytest.raises(TypeMismatchError):
        Comparison("<", Literal(1.5), ColumnRef("c")).evaluate(relation)


def test_in_list_mixed_type_numeric_operand_raises():
    relation = encoded_relation(["AA", "DL"])  # has INT column v
    with pytest.raises(TypeMismatchError):
        InList(ColumnRef("v"), (1, "a")).evaluate(relation)
    with pytest.raises(TypeMismatchError):
        InList(ColumnRef("v"), ("1", "2")).evaluate(relation)
    # All-numeric lists (mixed int/float widths) stay fine.
    mask = InList(ColumnRef("v"), (0, 1.0)).evaluate(relation)
    np.testing.assert_array_equal(mask, [True, True])
    # Empty lists match nothing rather than raising.
    np.testing.assert_array_equal(
        InList(ColumnRef("v"), ()).evaluate(relation), [False, False]
    )


def test_like_requires_text_operand():
    relation = encoded_relation(["AA", "DL"])
    with pytest.raises(TypeMismatchError):
        Like(ColumnRef("v"), "1%").evaluate(relation)
    with pytest.raises(TypeMismatchError):
        Like(ColumnRef("v"), "1%").output_dtype(relation.schema)
