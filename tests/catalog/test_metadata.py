"""Unit tests for marginal metadata."""

import numpy as np
import pytest

from repro.catalog.metadata import Marginal
from repro.errors import CatalogError
from repro.relational.relation import Relation


class TestConstruction:
    def test_one_dimensional(self):
        m = Marginal(["country"], {("UK",): 100, ("FR",): 50})
        assert m.ndim == 1
        assert m.total_mass == 150
        assert m.mass(("UK",)) == 100

    def test_scalar_keys_normalised_to_tuples(self):
        m = Marginal(["country"], {"UK": 10})
        assert m.mass("UK") == 10
        assert m.mass(("UK",)) == 10

    def test_two_dimensional(self):
        m = Marginal(["country", "email"], {("UK", "Yahoo"): 7, ("FR", "AOL"): 3})
        assert m.ndim == 2
        assert m.total_mass == 10

    def test_three_attributes_rejected(self):
        with pytest.raises(CatalogError, match="1 or 2"):
            Marginal(["a", "b", "c"], {("x", "y", "z"): 1})

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(CatalogError, match="distinct"):
            Marginal(["a", "a"], {("x", "y"): 1})

    def test_negative_mass_rejected(self):
        with pytest.raises(CatalogError, match="negative"):
            Marginal(["a"], {("x",): -1})

    def test_empty_rejected(self):
        with pytest.raises(CatalogError, match="no cells"):
            Marginal(["a"], {})

    def test_key_arity_mismatch_rejected(self):
        with pytest.raises(CatalogError, match="does not match"):
            Marginal(["a", "b"], {("x",): 1})


class TestFromRelation:
    def test_projection_form(self):
        rel = Relation.from_dict(
            {"country": ["UK", "FR"], "reported_count": [29000, 9000]}
        )
        m = Marginal.from_relation(["country"], rel, "reported_count")
        assert m.mass(("UK",)) == 29000

    def test_duplicates_summed(self):
        rel = Relation.from_dict({"c": ["UK", "UK"], "n": [10, 5]})
        m = Marginal.from_relation(["c"], rel, "n")
        assert m.mass(("UK",)) == 15


class TestFromData:
    def test_unweighted_counts(self):
        rel = Relation.from_dict({"tag": ["a", "a", "b"]})
        m = Marginal.from_data(rel, ["tag"])
        assert m.mass(("a",)) == 2
        assert m.mass(("b",)) == 1

    def test_weighted_counts(self):
        rel = Relation.from_dict({"tag": ["a", "a", "b"]})
        m = Marginal.from_data(rel, ["tag"], weights=np.array([2.0, 3.0, 4.0]))
        assert m.mass(("a",)) == 5.0
        assert m.mass(("b",)) == 4.0

    def test_two_dimensional_from_data(self):
        rel = Relation.from_dict({"a": ["x", "x", "y"], "b": [1, 2, 1]})
        m = Marginal.from_data(rel, ["a", "b"])
        assert m.mass(("x", 1)) == 1
        assert m.mass(("x", 2)) == 1
        assert m.mass(("y", 1)) == 1


class TestOperations:
    def test_normalized_sums_to_one(self):
        m = Marginal(["a"], {("x",): 3, ("y",): 1})
        probs = m.normalized()
        assert sum(probs.values()) == pytest.approx(1.0)
        assert probs[("x",)] == pytest.approx(0.75)

    def test_project_2d_to_1d(self):
        m = Marginal(["a", "b"], {("x", 1): 3, ("x", 2): 2, ("y", 1): 5})
        pa = m.project("a")
        assert pa.mass(("x",)) == 5
        assert pa.mass(("y",)) == 5
        pb = m.project("b")
        assert pb.mass((1,)) == 8

    def test_project_1d_is_identity(self):
        m = Marginal(["a"], {("x",): 1})
        assert m.project("a") is m

    def test_project_unknown_attribute(self):
        m = Marginal(["a"], {("x",): 1})
        with pytest.raises(CatalogError):
            m.project("b")

    def test_l1_distance_zero_for_self(self):
        m = Marginal(["a"], {("x",): 3, ("y",): 1})
        assert m.l1_distance(m) == 0.0

    def test_l1_distance_disjoint_is_two(self):
        m1 = Marginal(["a"], {("x",): 1})
        m2 = Marginal(["a"], {("y",): 1})
        assert m1.l1_distance(m2) == pytest.approx(2.0)

    def test_l1_distance_attribute_mismatch(self):
        m1 = Marginal(["a"], {("x",): 1})
        m2 = Marginal(["b"], {("x",): 1})
        with pytest.raises(CatalogError):
            m1.l1_distance(m2)

    def test_to_relation_round_trip(self):
        m = Marginal(["a"], {("x",): 3.0, ("y",): 1.0})
        rel = m.to_relation()
        back = Marginal.from_relation(["a"], rel, "mass")
        assert back.l1_distance(m) == 0.0
