"""Unit tests for the catalog and its population/sample objects."""

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.metadata import Marginal
from repro.catalog.population import PopulationRelation
from repro.catalog.sample import SampleRelation
from repro.errors import CatalogError, DuplicateRelationError, UnknownRelationError
from repro.relational.dtypes import DType
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def make_gp(name="GP"):
    return PopulationRelation(
        name, Schema.of(country=DType.TEXT, email=DType.TEXT), is_global=True
    )


def make_sample(name="S", population="GP", rows=3):
    rel = Relation.from_dict(
        {"country": ["UK"] * rows, "email": ["Yahoo"] * rows}
    )
    return SampleRelation(name, rel, population)


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.create_population(make_gp())
    return cat


class TestAuxiliary:
    def test_create_and_lookup(self, catalog):
        rel = Relation.from_dict({"x": [1]})
        catalog.create_auxiliary("aux", rel)
        assert catalog.auxiliary("aux") is rel
        assert catalog.kind_of("aux") == "auxiliary"

    def test_duplicate_rejected(self, catalog):
        catalog.create_auxiliary("aux", Relation.from_dict({"x": [1]}))
        with pytest.raises(DuplicateRelationError):
            catalog.create_auxiliary("aux", Relation.from_dict({"x": [2]}))

    def test_replace(self, catalog):
        catalog.create_auxiliary("aux", Relation.from_dict({"x": [1]}))
        catalog.replace_auxiliary("aux", Relation.from_dict({"x": [1, 2]}))
        assert catalog.auxiliary("aux").num_rows == 2

    def test_unknown_lookup(self, catalog):
        with pytest.raises(UnknownRelationError):
            catalog.auxiliary("nope")


class TestPopulations:
    def test_global_population(self, catalog):
        assert catalog.global_population.name == "GP"
        assert catalog.require_global_population().is_global

    def test_second_global_rejected(self, catalog):
        with pytest.raises(CatalogError, match="already exists"):
            catalog.create_population(make_gp("GP2"))

    def test_derived_population(self, catalog):
        derived = PopulationRelation(
            "UkOnly",
            Schema.of(country=DType.TEXT, email=DType.TEXT),
            source_population="GP",
        )
        catalog.create_population(derived)
        assert catalog.population("UkOnly").source_population == "GP"

    def test_derived_requires_existing_global(self):
        cat = Catalog()
        derived = PopulationRelation(
            "D", Schema.of(x=DType.INT), source_population="GP"
        )
        with pytest.raises(CatalogError):
            cat.create_population(derived)

    def test_population_neither_global_nor_derived_rejected(self):
        with pytest.raises(CatalogError):
            PopulationRelation("P", Schema.of(x=DType.INT))

    def test_no_global_population_error(self):
        with pytest.raises(CatalogError, match="GLOBAL POPULATION"):
            Catalog().require_global_population()


class TestSamples:
    def test_create_and_lookup(self, catalog):
        catalog.create_sample(make_sample())
        assert catalog.sample("S").num_rows == 3
        assert catalog.kind_of("S") == "sample"

    def test_unknown_population_rejected(self, catalog):
        with pytest.raises(CatalogError, match="unknown population"):
            catalog.create_sample(make_sample(population="Nope"))

    def test_samples_of(self, catalog):
        catalog.create_sample(make_sample("S1"))
        catalog.create_sample(make_sample("S2"))
        assert [s.name for s in catalog.samples_of("GP")] == ["S1", "S2"]

    def test_name_collision_across_kinds(self, catalog):
        catalog.create_sample(make_sample("S"))
        with pytest.raises(DuplicateRelationError):
            catalog.create_auxiliary("S", Relation.from_dict({"x": [1]}))


class TestSampleWeights:
    def test_initial_weights_are_ones(self):
        sample = make_sample()
        assert sample.weights.tolist() == [1.0, 1.0, 1.0]
        assert sample.total_weight == 3.0

    def test_set_weights_copies(self):
        sample = make_sample()
        w = np.array([1.0, 2.0, 3.0])
        sample.set_weights(w)
        w[0] = 99.0
        assert sample.weights[0] == 1.0

    def test_negative_weights_rejected(self):
        sample = make_sample()
        with pytest.raises(CatalogError, match="non-negative"):
            sample.set_weights(np.array([-1.0, 1.0, 1.0]))

    def test_nan_weights_rejected(self):
        sample = make_sample()
        with pytest.raises(CatalogError, match="finite"):
            sample.set_weights(np.array([np.nan, 1.0, 1.0]))

    def test_wrong_length_rejected(self):
        sample = make_sample()
        with pytest.raises(Exception):
            sample.set_weights(np.ones(5))

    def test_scale_to_total(self):
        sample = make_sample()
        sample.scale_weights_to_total(30.0)
        assert sample.total_weight == pytest.approx(30.0)

    def test_reset(self):
        sample = make_sample()
        sample.set_weights(np.array([5.0, 5.0, 5.0]))
        sample.reset_weights()
        assert sample.total_weight == 3.0

    def test_effective_sample_size_uniform(self):
        sample = make_sample()
        assert sample.effective_sample_size() == pytest.approx(3.0)

    def test_effective_sample_size_degenerate(self):
        sample = make_sample()
        sample.set_weights(np.array([100.0, 0.0, 0.0]))
        assert sample.effective_sample_size() == pytest.approx(1.0)

    def test_weighted_relation(self):
        sample = make_sample()
        rel = sample.weighted_relation()
        assert "weight" in rel.schema
        assert rel.column("weight").tolist() == [1.0, 1.0, 1.0]


class TestMetadataRegistry:
    def test_register_and_lookup(self, catalog):
        marginal = Marginal(["country"], {("UK",): 100})
        catalog.register_metadata("GP_M1", "GP", marginal)
        assert catalog.metadata_population("GP_M1") == "GP"
        assert "GP_M1" in catalog.population("GP").marginals

    def test_metadata_attribute_must_exist(self, catalog):
        bad = Marginal(["nope"], {("x",): 1})
        with pytest.raises(CatalogError, match="not an"):
            catalog.register_metadata("GP_M1", "GP", bad)

    def test_duplicate_metadata_rejected(self, catalog):
        marginal = Marginal(["country"], {("UK",): 100})
        catalog.register_metadata("GP_M1", "GP", marginal)
        with pytest.raises(CatalogError):
            catalog.register_metadata("GP_M1", "GP", marginal)

    def test_resolve_by_prefix_convention(self, catalog):
        assert catalog.resolve_metadata_population("GP_M1", None) == "GP"

    def test_resolve_explicit_for(self, catalog):
        assert catalog.resolve_metadata_population("anything", "GP") == "GP"

    def test_resolve_single_population_fallback(self, catalog):
        assert catalog.resolve_metadata_population("Unrelated", None) == "GP"

    def test_resolve_ambiguous_raises(self, catalog):
        derived = PopulationRelation(
            "GP2",
            Schema.of(country=DType.TEXT, email=DType.TEXT),
            source_population="GP",
        )
        catalog.create_population(derived)
        with pytest.raises(CatalogError, match="cannot infer"):
            catalog.resolve_metadata_population("Unrelated", None)

    def test_estimated_size_median(self, catalog):
        catalog.register_metadata("GP_M1", "GP", Marginal(["country"], {("UK",): 100}))
        catalog.register_metadata("GP_M2", "GP", Marginal(["email"], {("Yahoo",): 110}))
        assert catalog.population("GP").estimated_size() == pytest.approx(105.0)


class TestDrop:
    def test_drop_table(self, catalog):
        catalog.create_auxiliary("aux", Relation.from_dict({"x": [1]}))
        catalog.drop("TABLE", "aux")
        assert not catalog.exists("aux")

    def test_drop_sample(self, catalog):
        catalog.create_sample(make_sample())
        catalog.drop("SAMPLE", "S")
        assert not catalog.exists("S")

    def test_drop_population_with_samples_rejected(self, catalog):
        catalog.create_sample(make_sample())
        with pytest.raises(CatalogError, match="depend"):
            catalog.drop("POPULATION", "GP")

    def test_drop_population_clears_global(self, catalog):
        catalog.drop("POPULATION", "GP")
        assert catalog.global_population is None
        catalog.create_population(make_gp("NewGP"))  # can recreate

    def test_drop_metadata(self, catalog):
        catalog.register_metadata("GP_M1", "GP", Marginal(["country"], {("UK",): 1}))
        catalog.drop("METADATA", "GP_M1")
        assert not catalog.population("GP").has_metadata

    def test_drop_unknown(self, catalog):
        with pytest.raises(UnknownRelationError):
            catalog.drop("TABLE", "nope")
