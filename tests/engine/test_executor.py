"""Unit tests for the SELECT executor over weighted relations."""

import numpy as np
import pytest

from repro.engine.executor import execute_select
from repro.errors import SqlCompileError
from repro.relational.relation import Relation
from repro.sql.parser import parse_statement


@pytest.fixture
def rel():
    return Relation.from_dict(
        {
            "carrier": ["AA", "AA", "WN", "WN", "US"],
            "distance": [1000, 2000, 300, 500, 800],
            "elapsed": [150.0, 260.0, 60.0, 90.0, 120.0],
        }
    )


def q(text):
    return parse_statement(text)


class TestProjection:
    def test_star(self, rel):
        out = execute_select(q("SELECT * FROM F"), rel)
        assert out.equals(rel)

    def test_column_projection_with_alias(self, rel):
        out = execute_select(q("SELECT carrier AS c, distance FROM F"), rel)
        assert out.column_names == ("c", "distance")

    def test_expression_projection(self, rel):
        out = execute_select(q("SELECT distance / 2 AS half FROM F LIMIT 1"), rel)
        assert out.column("half")[0] == 500.0

    def test_where(self, rel):
        out = execute_select(q("SELECT * FROM F WHERE distance > 600"), rel)
        assert out.num_rows == 3

    def test_where_bareword(self, rel):
        out = execute_select(q("SELECT * FROM F WHERE carrier = AA"), rel)
        assert out.num_rows == 2

    def test_order_and_limit(self, rel):
        out = execute_select(q("SELECT * FROM F ORDER BY distance DESC LIMIT 2"), rel)
        assert out.column("distance").tolist() == [2000, 1000]

    def test_distinct(self, rel):
        out = execute_select(q("SELECT DISTINCT carrier FROM F"), rel)
        assert sorted(out.column("carrier").tolist()) == ["AA", "US", "WN"]

    def test_zero_weight_rows_invisible(self, rel):
        weights = np.array([1.0, 0.0, 1.0, 1.0, 0.0])
        out = execute_select(q("SELECT * FROM F"), rel, weights=weights)
        assert out.num_rows == 3
        assert "US" not in out.column("carrier").tolist()


class TestAggregates:
    def test_global_count(self, rel):
        out = execute_select(q("SELECT COUNT(*) FROM F"), rel)
        assert out.to_pylist() == [{"COUNT(*)": 5}]

    def test_weighted_count(self, rel):
        weights = np.full(5, 10.0)
        out = execute_select(q("SELECT COUNT(*) AS n FROM F"), rel, weights=weights)
        assert out.column("n")[0] == pytest.approx(50.0)

    def test_group_by_avg(self, rel):
        out = execute_select(
            q("SELECT carrier, AVG(distance) AS d FROM F GROUP BY carrier"), rel
        )
        by_carrier = {row["carrier"]: row["d"] for row in out.to_pylist()}
        assert by_carrier["AA"] == 1500.0
        assert by_carrier["WN"] == 400.0

    def test_weighted_group_avg(self, rel):
        weights = np.array([3.0, 1.0, 1.0, 1.0, 1.0])
        out = execute_select(
            q("SELECT carrier, AVG(distance) AS d FROM F GROUP BY carrier"),
            rel,
            weights=weights,
        )
        by_carrier = {row["carrier"]: row["d"] for row in out.to_pylist()}
        assert by_carrier["AA"] == pytest.approx((3 * 1000 + 2000) / 4)

    def test_zero_weight_group_dropped(self, rel):
        weights = np.array([1.0, 1.0, 0.0, 0.0, 1.0])
        out = execute_select(
            q("SELECT carrier, COUNT(*) AS n FROM F GROUP BY carrier"),
            rel,
            weights=weights,
        )
        assert "WN" not in [row["carrier"] for row in out.to_pylist()]

    def test_paper_query_5_shape(self, rel):
        out = execute_select(
            q(
                "SELECT carrier, AVG(distance) FROM F "
                "WHERE elapsed > 100 AND carrier IN ('AA', 'WN') GROUP BY carrier"
            ),
            rel,
        )
        assert [row["carrier"] for row in out.to_pylist()] == ["AA"]

    def test_select_column_not_in_group_by_rejected(self, rel):
        with pytest.raises(SqlCompileError, match="not in GROUP BY"):
            execute_select(
                q("SELECT distance, COUNT(*) FROM F GROUP BY carrier"), rel
            )

    def test_star_with_aggregate_rejected(self, rel):
        with pytest.raises(SqlCompileError, match="cannot be combined"):
            execute_select(q("SELECT *, COUNT(*) FROM F GROUP BY carrier"), rel)

    def test_order_by_aggregate_alias(self, rel):
        out = execute_select(
            q("SELECT carrier, COUNT(*) AS n FROM F GROUP BY carrier ORDER BY n DESC"),
            rel,
        )
        assert out.column("n").tolist() == [2, 2, 1]

    def test_multiple_aggregates(self, rel):
        out = execute_select(
            q("SELECT MIN(distance) AS lo, MAX(distance) AS hi, SUM(elapsed) AS s FROM F"),
            rel,
        )
        row = out.to_pylist()[0]
        assert (row["lo"], row["hi"]) == (300, 2000)
        assert row["s"] == pytest.approx(680.0)
