"""Tests for the OPEN COUNT-by-inference fast path (Sec. 4.2)."""

import numpy as np
import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.engine.inference import is_pure_count, predicate_constraints
from repro.engine.open_world import BayesNetGenerator, IPFSynthesizer, OpenQueryConfig
from repro.relational.schema import Schema
from repro.relational.dtypes import DType
from repro.sql.binder import bind_expression
from repro.sql.parser import parse_statement


def where_of(sql: str):
    schema = Schema.of(
        country=DType.TEXT, email=DType.TEXT, age=DType.INT, v=DType.FLOAT
    )
    query = parse_statement(sql)
    if query.where is None:
        return None
    return bind_expression(query.where, schema)


class TestIsPureCount:
    def test_count_star(self):
        assert is_pure_count(parse_statement("SELECT COUNT(*) FROM P"))
        assert is_pure_count(parse_statement("SELECT COUNT(*) FROM P WHERE x = 1"))

    def test_rejections(self):
        assert not is_pure_count(parse_statement("SELECT COUNT(v) FROM P"))
        assert not is_pure_count(parse_statement("SELECT COUNT(*), AVG(v) FROM P"))
        assert not is_pure_count(
            parse_statement("SELECT g, COUNT(*) FROM P GROUP BY g")
        )
        assert not is_pure_count(parse_statement("SELECT * FROM P"))


class TestPredicateConstraints:
    def test_no_predicate(self):
        assert predicate_constraints(None) == {}

    def test_single_comparison(self):
        constraints = predicate_constraints(where_of("SELECT * FROM P WHERE age > 30"))
        assert set(constraints) == {"age"}
        assert constraints["age"](31)
        assert not constraints["age"](30)

    def test_flipped_comparison(self):
        constraints = predicate_constraints(where_of("SELECT * FROM P WHERE 30 < age"))
        assert constraints["age"](31)
        assert not constraints["age"](29)

    def test_conjunction_same_column(self):
        constraints = predicate_constraints(
            where_of("SELECT * FROM P WHERE age > 10 AND age < 20")
        )
        assert constraints["age"](15)
        assert not constraints["age"](25)

    def test_in_list(self):
        constraints = predicate_constraints(
            where_of("SELECT * FROM P WHERE country IN ('UK', 'FR')")
        )
        assert constraints["country"]("UK")
        assert not constraints["country"]("DE")

    def test_between(self):
        constraints = predicate_constraints(
            where_of("SELECT * FROM P WHERE v BETWEEN 1 AND 2")
        )
        assert constraints["v"](1.5)
        assert not constraints["v"](3.0)

    def test_bareword_equality(self):
        constraints = predicate_constraints(
            where_of("SELECT * FROM P WHERE email = Yahoo")
        )
        assert constraints["email"]("Yahoo")

    def test_or_not_decomposable(self):
        assert predicate_constraints(
            where_of("SELECT * FROM P WHERE age > 10 OR age < 5")
        ) is None

    def test_cross_column_not_decomposable(self):
        assert predicate_constraints(
            where_of("SELECT * FROM P WHERE age > v")
        ) is None


class TestEndToEndInference:
    def make_db(self, factory):
        db = MosaicDB(
            seed=0,
            open_config=OpenQueryConfig(generator_factory=factory, repetitions=3),
        )
        db.execute("CREATE GLOBAL POPULATION P (country TEXT, email TEXT)")
        db.execute("CREATE SAMPLE S AS (SELECT * FROM P WHERE email = 'Yahoo')")
        db.register_marginal(
            "P_M1", "P", Marginal(["country"], {("UK",): 700, ("FR",): 300})
        )
        db.register_marginal(
            "P_M2", "P", Marginal(["email"], {("Yahoo",): 600, ("AOL",): 400})
        )
        rng = np.random.default_rng(0)
        rows = [
            (rng.choice(["UK", "FR"], p=[0.9, 0.1]), "Yahoo") for _ in range(200)
        ]
        db.ingest_rows("S", rows)
        return db

    @pytest.mark.parametrize("factory", [IPFSynthesizer, BayesNetGenerator])
    def test_open_count_star_uses_inference(self, factory):
        db = self.make_db(factory)
        result = db.execute("SELECT OPEN COUNT(*) AS n FROM P")
        assert any("direct inference" in note for note in result.notes)
        assert result.scalar() == pytest.approx(1000, rel=0.02)

    def test_open_count_with_predicate(self):
        db = self.make_db(IPFSynthesizer)
        result = db.execute("SELECT OPEN COUNT(*) AS n FROM P WHERE email = 'AOL'")
        assert any("direct inference" in note for note in result.notes)
        # The sample has zero AOL tuples; inference recovers the marginal.
        assert result.scalar() == pytest.approx(400, rel=0.05)

    def test_group_by_falls_back_to_generation(self):
        db = self.make_db(IPFSynthesizer)
        result = db.execute(
            "SELECT OPEN country, COUNT(*) FROM P GROUP BY country"
        )
        assert any("generated sample" in note for note in result.notes)

    def test_mswg_has_no_inference_path(self):
        """M-SWG is implicit: no expected_count, always materialises."""
        from repro.engine.open_world import MswgGenerator
        from repro.generative.mswg import MswgConfig

        factory = lambda: MswgGenerator(
            MswgConfig(
                hidden_layers=2, hidden_units=16, latent_dim=2,
                num_projections=8, batch_size=64, epochs=2,
                steps_per_epoch=2, seed=0,
            )
        )
        db = self.make_db(factory)
        result = db.execute("SELECT OPEN COUNT(*) AS n FROM P")
        assert any("generated sample" in note for note in result.notes)
