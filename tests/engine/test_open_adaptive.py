"""Adaptive streaming OPEN execution: chunked batches + early stopping.

The adaptive path generates repetitions in chunks, merges decomposable
per-(rep, group) partials into O(G) running state, and stops once every
surviving group's CI half-width meets the relative tolerance.  Its hard
contracts:

- ``tolerance=0`` (the default) keeps today's fixed-R batched path.
- Run to the cap, the adaptive answer is *bit-identical* to the fixed
  batched path for every generator (the chunked-stream RNG contract:
  repetition ``r`` always draws from stream ``r``, however the stream is
  chunked).
- Early stopping never fires before ``min_repetitions`` participating
  repetitions.
- ``repetitions_used`` is deterministic under a fixed seed — in-process,
  over TCP, and under the multi-process worker pool.
"""

import numpy as np
import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.client import Connection
from repro.engine.open_world import (
    CONFIDENCE_Z,
    BayesNetGenerator,
    IPFSynthesizer,
    MswgGenerator,
    OpenQueryConfig,
)
from repro.errors import MosaicError, ProtocolError
from repro.generative.mswg import MswgConfig
from repro.server.server import MosaicServer
from repro.workloads.spiral import (
    SpiralConfig,
    make_biased_spiral_sample,
    make_spiral_population,
    spiral_marginals,
)

REPETITIONS = 8
GEN_ROWS = 800

SQL = (
    "SELECT OPEN country, email, COUNT(*) AS n "
    "FROM EuropeMigrants GROUP BY country, email"
)


def tiny_mswg():
    return MswgGenerator(
        MswgConfig(
            epochs=2,
            hidden_layers=2,
            hidden_units=16,
            num_projections=8,
            batch_size=128,
            latent_dim=2,
        )
    )


GENERATOR_FACTORIES = {
    "ipf-synth": IPFSynthesizer,
    "bayesnet": BayesNetGenerator,
    "mswg": tiny_mswg,
}


def build_db(factory=IPFSynthesizer, seed: int = 0, **open_kwargs) -> MosaicDB:
    db = MosaicDB(
        seed=seed,
        open_config=OpenQueryConfig(
            generator_factory=factory,
            repetitions=REPETITIONS,
            rows_per_generation=GEN_ROWS,
            max_workers=1,
            batched=True,
            **open_kwargs,
        ),
    )
    db.execute_script(
        """
        CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);
        CREATE SAMPLE S AS (SELECT * FROM EuropeMigrants);
        """
    )
    db.register_marginal(
        "M1",
        "EuropeMigrants",
        Marginal(["country"], {("UK",): 700, ("FR",): 250, ("DE",): 50}),
    )
    db.register_marginal(
        "M2", "EuropeMigrants", Marginal(["email"], {("Yahoo",): 600, ("AOL",): 400})
    )
    db.ingest_rows(
        "S",
        [("UK", "Yahoo")] * 50 + [("FR", "Yahoo")] * 30 + [("DE", "Yahoo")] * 5,
    )
    return db


class TestToleranceZeroKeepsFixedPath:
    """tolerance=0 (the default) is bit-for-bit today's batched path."""

    @pytest.mark.parametrize("name", list(GENERATOR_FACTORIES))
    def test_default_config_stays_on_batched_path(self, name):
        result = build_db(GENERATOR_FACTORIES[name]).execute(SQL)
        assert not result.has_note("adaptive streaming")
        assert result.has_note("composite (rep, group) codes")
        assert result.repetitions_used == REPETITIONS

    @pytest.mark.parametrize("name", list(GENERATOR_FACTORIES))
    def test_adaptive_run_to_cap_bit_identical_to_fixed(self, name):
        """An adaptive stream forced to the cap (unreachable tolerance,
        min_repetitions pinned to R) reproduces the fixed batched answer
        exactly — chunked generation and streamed merging change nothing."""
        factory = GENERATOR_FACTORIES[name]
        fixed = build_db(factory).execute(SQL)
        adaptive = build_db(
            factory, tolerance=1e-15, min_repetitions=REPETITIONS
        ).execute(SQL)
        assert adaptive.has_note("adaptive streaming")
        assert adaptive.has_note("repetition cap reached")
        assert adaptive.repetitions_used == REPETITIONS
        assert adaptive.relation.schema == fixed.relation.schema
        assert adaptive.to_pylist() == fixed.to_pylist()  # bit-identical

    def test_chunk_size_never_changes_the_answer(self):
        """Chunking is invisible: any chunk_repetitions yields the same
        rows (per-repetition RNG streams, vocab-stable cell merging)."""
        expected = build_db().execute(SQL).to_pylist()
        for chunk in (1, 3, REPETITIONS, REPETITIONS + 5):
            result = build_db(
                tolerance=1e-15,
                min_repetitions=REPETITIONS,
                chunk_repetitions=chunk,
            ).execute(SQL)
            assert result.to_pylist() == expected, f"chunk={chunk}"


class TestEarlyStopping:
    def test_stops_before_cap_on_loose_tolerance(self):
        result = build_db(tolerance=0.9).execute(SQL)
        assert result.has_note("stopped early")
        assert result.repetitions_used < REPETITIONS
        assert result.repetitions_used >= 3  # default min_repetitions

    def test_never_stops_before_min_repetitions(self):
        """Even an absurdly loose tolerance must generate min_repetitions
        participating repetitions before the stop rule may fire."""
        result = build_db(
            tolerance=100.0, min_repetitions=6, chunk_repetitions=2
        ).execute(SQL)
        assert result.repetitions_used == 6

    def test_max_repetitions_overrides_the_cap(self):
        result = build_db(
            tolerance=1e-15, min_repetitions=64, max_repetitions=10
        ).execute(SQL)
        assert result.repetitions_used == 10

    def test_repetitions_used_deterministic_under_fixed_seed(self):
        first = build_db(tolerance=0.9).execute(SQL)
        second = build_db(tolerance=0.9).execute(SQL)
        assert first.repetitions_used == second.repetitions_used
        assert first.to_pylist() == second.to_pylist()

    def test_spiral_low_variance_workload_stops_early(self):
        """Ungrouped aggregates over the spiral workload (Sec. 5.3) meet a
        5% tolerance well before the repetition cap with a tiny M-SWG."""
        config = SpiralConfig(population_size=4000, sample_size=400)
        rng = np.random.default_rng(11)
        population = make_spiral_population(config, rng)
        sample, _ = make_biased_spiral_sample(population, config, rng)
        db = MosaicDB(
            seed=5,
            open_config=OpenQueryConfig(
                generator_factory=tiny_mswg,
                repetitions=12,
                rows_per_generation=400,
                max_workers=1,
                batched=True,
                tolerance=0.05,
            ),
        )
        db.execute("CREATE GLOBAL POPULATION Spiral (x FLOAT, y FLOAT)")
        db.execute("CREATE SAMPLE S AS (SELECT * FROM Spiral)")
        for marginal in spiral_marginals(population, config):
            db.register_marginal(marginal.name, "Spiral", marginal)
        db.engine.ingest_relation("S", sample)

        result = db.execute(
            "SELECT OPEN COUNT(*) AS n, AVG(x) AS mean_x FROM Spiral"
        )
        assert result.has_note("adaptive streaming")
        assert result.has_note("stopped early")
        assert result.repetitions_used < 12
        assert result.num_rows == 1


class TestConfidenceColumns:
    def test_report_ci_appends_std_and_ci_columns(self):
        result = build_db(tolerance=0.9, report_ci=True).execute(SQL)
        assert result.columns == ("country", "email", "n", "n__std__", "n__ci__")
        used = result.repetitions_used
        std = result.column("n__std__")
        ci = result.column("n__ci__")
        assert np.all(std > 0)
        np.testing.assert_allclose(ci, CONFIDENCE_Z * std / np.sqrt(used))

    def test_welford_matches_direct_spread_at_cap(self):
        """Two independent implementations agree: the fixed batched path
        computes std/CI from the full per-repetition answer matrix, the
        adaptive path from streaming Welford moments."""
        fixed = build_db(report_ci=True).execute(SQL)
        adaptive = build_db(
            tolerance=1e-15, min_repetitions=REPETITIONS, report_ci=True
        ).execute(SQL)
        assert fixed.columns == adaptive.columns
        for name in ("n", "n__std__", "n__ci__"):
            np.testing.assert_allclose(
                adaptive.column(name), fixed.column(name), rtol=1e-12
            )

    def test_ci_shrinks_with_more_repetitions(self):
        few = build_db(
            tolerance=1e-15, min_repetitions=4, max_repetitions=4, report_ci=True
        ).execute(SQL)
        many = build_db(
            tolerance=1e-15,
            min_repetitions=16,
            max_repetitions=16,
            report_ci=True,
        ).execute(SQL)
        assert np.mean(many.column("n__ci__")) < np.mean(few.column("n__ci__"))


class TestLayoutFallback:
    """Numeric GROUP BY keys have no chunk-stable vocab cells: the stream
    falls back to the fixed batched path — bit-identically, because the
    remaining repetitions generate from the same pre-spawned streams."""

    @staticmethod
    def _numeric_db(**open_kwargs):
        db = MosaicDB(
            seed=0,
            open_config=OpenQueryConfig(
                generator_factory=IPFSynthesizer,
                repetitions=6,
                rows_per_generation=600,
                max_workers=1,
                batched=True,
                **open_kwargs,
            ),
        )
        db.execute_script(
            """
            CREATE GLOBAL POPULATION People (country TEXT, age INT);
            CREATE SAMPLE S AS (SELECT * FROM People);
            """
        )
        db.register_marginal(
            "M1", "People", Marginal(["country"], {("UK",): 700, ("FR",): 300})
        )
        db.register_marginal(
            "M2", "People", Marginal(["age"], {(20,): 600, (30,): 400})
        )
        db.ingest_rows("S", [("UK", 20)] * 40 + [("FR", 30)] * 20)
        return db

    def test_numeric_key_falls_back_bit_identically(self):
        sql = "SELECT OPEN age, COUNT(*) AS n FROM People GROUP BY age"
        fixed = self._numeric_db().execute(sql)
        adaptive = self._numeric_db(tolerance=0.5).execute(sql)
        assert adaptive.has_note("falling back")
        assert adaptive.has_note("composite (rep, group) codes")
        assert adaptive.repetitions_used == 6
        assert adaptive.to_pylist() == fixed.to_pylist()


class TestOverTheWireAndWorkers:
    def test_adaptive_over_tcp_carries_repetitions_used(self):
        """Per-connection HELLO options switch on the adaptive path; the
        RESULT frame carries repetitions_used and the CI columns, and the
        wire answer matches the in-process one bit-for-bit."""
        # The server connection is that engine's *second* session (the db
        # object itself holds the first), so the in-process expectation
        # must come from a matching second session: spawn index k draws
        # RNG stream k.
        expected = build_db(tolerance=0.9, report_ci=True).connect().execute(SQL)

        server_db = build_db()
        server = MosaicServer(
            server_db.engine, port=0, session_config=server_db.session.config
        ).start_in_thread()
        try:
            with Connection(
                "127.0.0.1",
                server.port,
                open_options={"tolerance": 0.9, "report_ci": True},
            ) as conn:
                received = conn.execute(SQL)
                stats = conn.stats()
        finally:
            server.stop_in_thread()

        assert received.repetitions_used == expected.repetitions_used
        assert received.columns == expected.columns
        for name in expected.columns:
            mine, theirs = received.column(name), expected.column(name)
            if mine.dtype == object:
                assert list(mine) == list(theirs)
            else:
                assert mine.tobytes() == theirs.tobytes()
        assert stats["engine"]["open_adaptive"]["runs"] == 1
        assert stats["engine"]["open_adaptive"]["early_stops"] == 1

    def test_unknown_open_option_rejected(self):
        server_db = build_db()
        server = MosaicServer(
            server_db.engine, port=0, session_config=server_db.session.config
        ).start_in_thread()
        try:
            with pytest.raises((ProtocolError, MosaicError)):
                Connection(
                    "127.0.0.1",
                    server.port,
                    open_options={"rows_per_generation": 10**9},
                )
        finally:
            server.stop_in_thread()

    def test_worker_pool_shards_chunks_and_cleans_up(self, monkeypatch):
        """MOSAIC_WORKERS=2: adaptive chunks shard across the pool, the
        answer matches serial execution exactly, and shutdown leaves no
        orphaned shared-memory segments."""
        import glob

        monkeypatch.setenv("MOSAIC_WORKERS", "2")
        monkeypatch.setenv("MOSAIC_MORSEL_ROWS", "500")
        serial_expected = build_db(
            tolerance=1e-15, min_repetitions=REPETITIONS
        ).execute(SQL)

        before = set(glob.glob("/dev/shm/mosaic-shm-*"))
        db = build_db(tolerance=1e-15, min_repetitions=REPETITIONS)
        try:
            result = db.execute(SQL)
            assert result.has_note("sharded across the worker pool")
            assert result.repetitions_used == serial_expected.repetitions_used
            assert result.to_pylist() == serial_expected.to_pylist()
        finally:
            db.close()
        assert set(glob.glob("/dev/shm/mosaic-shm-*")) - before == set()

    def test_shutdown_after_adaptive_stream_is_clean(self):
        db = build_db(tolerance=0.9)
        result = db.execute(SQL)
        assert result.has_note("adaptive streaming")
        db.close()
        with pytest.raises(MosaicError):
            db.execute(SQL)

    def test_shutdown_drains_in_flight_adaptive_stream(self, monkeypatch):
        """Engine.shutdown() racing adaptive streams: in-flight statements
        complete (the fence rises under the write lock, past-entry reads
        finish first), later ones fail cleanly, no chunk task or shared
        segment is orphaned."""
        import glob
        import threading

        monkeypatch.setenv("MOSAIC_WORKERS", "2")
        monkeypatch.setenv("MOSAIC_MORSEL_ROWS", "500")
        before = set(glob.glob("/dev/shm/mosaic-shm-*"))
        db = build_db(tolerance=1e-15, min_repetitions=REPETITIONS)
        outcomes = []

        def stream_queries():
            try:
                for _ in range(4):
                    outcomes.append(db.execute(SQL).repetitions_used)
            except MosaicError:
                outcomes.append("closed")

        worker = threading.Thread(target=stream_queries)
        worker.start()
        db.engine.shutdown()
        worker.join(timeout=60)
        assert not worker.is_alive()
        # Every completed stream ran to the cap; at most the tail query
        # observed the fence.
        assert all(o == REPETITIONS or o == "closed" for o in outcomes)
        assert set(glob.glob("/dev/shm/mosaic-shm-*")) - before == set()
