"""Selection-vector plan execution: end-to-end equivalence and plan shape.

WHERE clauses now execute as selection vectors (no materialisation at
Filter nodes) and conjunctions compile to one FilterNode per conjunct.
These tests pin the observable contract: results are identical to the
materialise-at-every-filter semantics, weighted execution included, and
the fast paths never change what a query returns.
"""

import numpy as np
import pytest

from repro.engine.compiler import compile_select, execute_plan
from repro.engine.executor import execute_select
from repro.engine.plan import FilterNode
from repro.errors import TypeMismatchError
from repro.relational.relation import Relation
from repro.sql.parser import parse_statement


@pytest.fixture()
def relation():
    rng = np.random.default_rng(3)
    n = 500
    return Relation.from_dict(
        {
            "carrier": [str(c) for c in rng.choice(["AA", "DL", "UA", "WN"], size=n)],
            "distance": rng.integers(50, 3000, size=n),
            "elapsed": rng.integers(20, 500, size=n),
        }
    )


def reference(query, relation, weights=None):
    """Materialise-at-every-filter semantics, built from public pieces."""
    plan = compile_select(query, relation.schema, weighted=weights is not None)
    filters = [n for n in plan.nodes if isinstance(n, FilterNode)]
    for node in filters:
        mask = np.asarray(node.predicate.evaluate(relation), dtype=bool)
        relation = relation.filter(mask)
        if weights is not None:
            weights = weights[mask]
    rest = tuple(n for n in plan.nodes if not isinstance(n, FilterNode))
    stripped = type(plan)(
        source_schema=relation.schema,
        nodes=rest,
        output_schema=plan.output_schema,
        weighted=plan.weighted,
    )
    return execute_plan(stripped, relation, weights)


QUERIES = [
    "SELECT carrier, AVG(distance) AS d, COUNT(*) AS n FROM F "
    "WHERE carrier != 'WN' AND carrier IN ('AA', 'DL') GROUP BY carrier",
    "SELECT carrier, MIN(distance) AS lo, MAX(distance) AS hi FROM F "
    "WHERE elapsed BETWEEN 100 AND 300 AND carrier LIKE '%A%' GROUP BY carrier",
    "SELECT COUNT(*) AS n FROM F WHERE carrier = 'AA' AND distance > 500",
    "SELECT carrier, distance FROM F WHERE distance > 2500 AND carrier < 'UA' "
    "ORDER BY distance LIMIT 7",
    "SELECT DISTINCT carrier FROM F WHERE elapsed > 400 ORDER BY carrier",
    "SELECT SUM(distance) AS s FROM F WHERE carrier NOT IN ('WN', 'UA') "
    "AND elapsed NOT BETWEEN 50 AND 90",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_selection_execution_matches_materialized(sql, relation):
    query = parse_statement(sql)
    out = execute_select(query, relation)
    ref = reference(query, relation)
    assert out.schema == ref.schema
    for name in out.column_names:
        np.testing.assert_array_equal(out.column(name), ref.column(name), err_msg=name)


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT carrier, AVG(distance) AS d FROM F "
        "WHERE carrier != 'WN' AND elapsed > 100 GROUP BY carrier",
        "SELECT carrier, distance FROM F WHERE distance > 1500 AND carrier = 'AA'",
    ],
)
def test_weighted_selection_matches_materialized(sql, relation):
    rng = np.random.default_rng(9)
    weights = rng.random(relation.num_rows) * (rng.random(relation.num_rows) < 0.8)
    query = parse_statement(sql)
    out = execute_select(query, relation, weights)
    ref = reference(query, relation, weights)
    assert out.schema == ref.schema
    for name in out.column_names:
        np.testing.assert_array_equal(out.column(name), ref.column(name), err_msg=name)


def test_conjunction_compiles_to_one_filter_node_per_conjunct(relation):
    query = parse_statement(
        "SELECT COUNT(*) AS n FROM F "
        "WHERE carrier != 'WN' AND distance > 100 AND elapsed < 400"
    )
    plan = compile_select(query, relation.schema)
    filters = [n for n in plan.nodes if isinstance(n, FilterNode)]
    assert len(filters) == 3
    # OR trees stay a single node.
    query = parse_statement(
        "SELECT COUNT(*) AS n FROM F WHERE carrier = 'WN' OR distance > 100"
    )
    plan = compile_select(query, relation.schema)
    assert len([n for n in plan.nodes if isinstance(n, FilterNode)]) == 1


def test_like_end_to_end(relation):
    query = parse_statement(
        "SELECT carrier, COUNT(*) AS n FROM F WHERE carrier LIKE '_A' GROUP BY carrier"
    )
    out = execute_select(query, relation)
    assert [row["carrier"] for row in out.to_pylist()] == ["AA", "UA"]
    query = parse_statement(
        "SELECT COUNT(*) AS n FROM F WHERE carrier NOT LIKE '%A%' AND distance > 0"
    )
    out = execute_select(query, relation)
    carriers = relation.column("carrier")
    expected = sum(1 for c in carriers if "A" not in str(c))
    assert out.to_pylist() == [{"n": expected}]


def test_filter_guards_aggregate_argument_expressions():
    """WHERE must shield aggregate arguments from excluded rows.

    ``AVG(a / b) ... WHERE b != 0`` relies on the filter to guard the
    division; evaluating the argument over unfiltered rows would emit a
    divide-by-zero RuntimeWarning (an error under CI's warning policy).
    """
    import warnings

    relation = Relation.from_dict(
        {"k": ["x", "x", "y"], "a": [10, 20, 30], "b": [2, 0, 5]}
    )
    query = parse_statement(
        "SELECT k, AVG(a / b) AS r FROM F WHERE b != 0 GROUP BY k"
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        out = execute_select(query, relation)
    assert out.to_pylist() == [{"k": "x", "r": 5.0}, {"k": "y", "r": 6.0}]


def test_like_on_numeric_column_raises(relation):
    query = parse_statement("SELECT COUNT(*) AS n FROM F WHERE distance LIKE '1%'")
    with pytest.raises(TypeMismatchError):
        execute_select(query, relation)
