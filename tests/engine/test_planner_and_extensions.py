"""Tests for the planner's sample choice and the multiple-samples extension."""

import numpy as np
import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.engine.planner import choose_sample
from repro.errors import VisibilityError


def make_db(combine_samples=False):
    db = MosaicDB(seed=0, combine_samples=combine_samples)
    db.execute("CREATE GLOBAL POPULATION P (region TEXT, v FLOAT)")
    db.register_marginal(
        "P_M1", "P", Marginal(["region"], {("north",): 600, ("south",): 400})
    )
    return db


class TestChooseSample:
    def test_largest_sample_wins(self):
        db = make_db()
        db.execute("CREATE SAMPLE Small AS (SELECT * FROM P)")
        db.execute("CREATE SAMPLE Big AS (SELECT * FROM P)")
        db.ingest_rows("Small", [("north", 1.0)] * 5)
        db.ingest_rows("Big", [("north", 1.0)] * 50)
        source = choose_sample(db.catalog, db.catalog.population("P"))
        assert source.sample.name == "Big"
        assert not source.combined

    def test_no_samples_raises(self):
        db = make_db()
        with pytest.raises(VisibilityError, match="no sample"):
            choose_sample(db.catalog, db.catalog.population("P"))

    def test_derived_population_uses_gp_samples(self):
        db = make_db()
        db.execute("CREATE SAMPLE S AS (SELECT * FROM P)")
        db.ingest_rows("S", [("north", 1.0)] * 5)
        db.execute(
            "CREATE POPULATION North AS (SELECT * FROM P WHERE region = 'north')"
        )
        source = choose_sample(db.catalog, db.catalog.population("North"))
        assert source.sample.name == "S"


class TestCombineSamples:
    """Sec. 7 'Multiple Samples': union compatible samples, then reweight."""

    def test_union_combines_rows_and_weights(self):
        db = make_db(combine_samples=True)
        db.execute("CREATE SAMPLE A AS (SELECT * FROM P)")
        db.execute("CREATE SAMPLE B AS (SELECT * FROM P)")
        db.ingest_rows("A", [("north", 10.0)] * 30)
        db.ingest_rows("B", [("south", 20.0)] * 10)
        source = choose_sample(
            db.catalog, db.catalog.population("P"), combine_samples=True
        )
        assert source.combined
        assert source.sample.num_rows == 40
        assert "+" in source.sample.name

    def test_combined_semi_open_uses_all_regions(self):
        """A north-only and a south-only sample jointly cover the marginal."""
        db = make_db(combine_samples=True)
        db.execute("CREATE SAMPLE A AS (SELECT * FROM P)")
        db.execute("CREATE SAMPLE B AS (SELECT * FROM P)")
        db.ingest_rows("A", [("north", 10.0)] * 30)
        db.ingest_rows("B", [("south", 20.0)] * 10)
        result = db.execute(
            "SELECT SEMI-OPEN region, COUNT(*) AS n FROM P GROUP BY region"
        )
        rows = {r["region"]: r["n"] for r in result.to_pylist()}
        assert rows["north"] == pytest.approx(600)
        assert rows["south"] == pytest.approx(400)

    def test_single_sample_alone_misses_a_region(self):
        """Without combining, the biggest sample misses the south entirely."""
        db = make_db(combine_samples=False)
        db.execute("CREATE SAMPLE A AS (SELECT * FROM P)")
        db.execute("CREATE SAMPLE B AS (SELECT * FROM P)")
        db.ingest_rows("A", [("north", 10.0)] * 30)
        db.ingest_rows("B", [("south", 20.0)] * 10)
        result = db.execute(
            "SELECT SEMI-OPEN region, COUNT(*) AS n FROM P GROUP BY region"
        )
        rows = {r["region"]: r["n"] for r in result.to_pylist()}
        assert "south" not in rows


class TestQueryResult:
    def test_scalar_and_iteration(self):
        db = make_db()
        db.execute("CREATE SAMPLE S AS (SELECT * FROM P)")
        db.ingest_rows("S", [("north", 1.0), ("south", 2.0)])
        result = db.execute("SELECT COUNT(*) FROM S")
        assert result.scalar() == 2
        assert len(result) == 1
        assert list(result) == [(2,)]

    def test_scalar_on_multi_cell_raises(self):
        db = make_db()
        db.execute("CREATE SAMPLE S AS (SELECT * FROM P)")
        db.ingest_rows("S", [("north", 1.0), ("south", 2.0)])
        result = db.execute("SELECT * FROM S")
        with pytest.raises(ValueError, match="1x1"):
            result.scalar()

    def test_pretty_truncates(self):
        db = make_db()
        db.execute("CREATE SAMPLE S AS (SELECT * FROM P)")
        db.ingest_rows("S", [("north", float(i)) for i in range(30)])
        text = db.execute("SELECT * FROM S").pretty(max_rows=5)
        assert "more rows" in text


class TestVisibilityEnum:
    def test_parse_variants(self):
        from repro.core.visibility import Visibility

        assert Visibility.parse("closed") is Visibility.CLOSED
        assert Visibility.parse("SEMI-OPEN") is Visibility.SEMI_OPEN
        assert Visibility.parse("semi_open") is Visibility.SEMI_OPEN
        assert Visibility.parse("Open") is Visibility.OPEN

    def test_parse_unknown(self):
        from repro.core.visibility import Visibility
        from repro.errors import VisibilityError

        with pytest.raises(VisibilityError):
            Visibility.parse("ajar")

    def test_capability_flags(self):
        from repro.core.visibility import Visibility

        assert not Visibility.CLOSED.assumes_open_world
        assert Visibility.SEMI_OPEN.may_reweight
        assert not Visibility.SEMI_OPEN.may_generate
        assert Visibility.OPEN.may_generate
