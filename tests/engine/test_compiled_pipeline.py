"""The compiled query pipeline: plans, plan cache, and versioned model caches.

Covers the acceptance contract of the compiled-pipeline refactor:

- weighted-aggregate edge cases through the full SQL surface (zero-weight
  groups, DISTINCT under weights, ORDER BY on an aggregate alias, LIMIT 0),
- repeat execution of an identical SQL string skipping parse/bind/compile
  (observable via ``QueryResult.notes``),
- version-stamped invalidation: a stale plan / reweight / generator is
  never served after INSERT / UPDATE WEIGHTS / CREATE METADATA / DROP,
  while mutations of one sample leave unrelated samples' artifacts cached.
"""

import numpy as np
import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.engine.compiler import compile_select, execute_plan
from repro.engine.open_world import IPFSynthesizer, OpenQueryConfig
from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    database = MosaicDB(seed=0)
    database.execute_script(
        """
        CREATE GLOBAL POPULATION Pop (region TEXT, brand TEXT);
        CREATE SAMPLE S AS (SELECT * FROM Pop);
        """
    )
    database.register_marginal(
        "Pop_M1", "Pop", Marginal(["region"], {("N",): 600, ("S",): 400})
    )
    database.ingest_rows("S", [("N", "a")] * 80 + [("S", "a")] * 10 + [("S", "b")] * 10)
    return database


class TestWeightedEdgeCases:
    def test_all_zero_weight_group_disappears(self, db):
        db.execute("UPDATE SAMPLE S SET WEIGHT = 0 WHERE brand = 'b'")
        result = db.execute(
            "SELECT SEMI-OPEN brand, COUNT(*) AS n FROM S GROUP BY brand"
        )
        assert [r["brand"] for r in result.to_pylist()] == ["a"]

    def test_distinct_under_weights_hides_zero_weight_rows(self, db):
        db.execute("UPDATE SAMPLE S SET WEIGHT = 0 WHERE brand = 'b'")
        result = db.execute("SELECT SEMI-OPEN DISTINCT brand FROM S")
        assert [r["brand"] for r in result.to_pylist()] == ["a"]
        unweighted = db.execute("SELECT DISTINCT brand FROM S")
        assert sorted(r["brand"] for r in unweighted.to_pylist()) == ["a", "b"]

    def test_order_by_aggregate_alias(self, db):
        result = db.execute(
            "SELECT region, COUNT(*) AS n FROM S GROUP BY region ORDER BY n DESC"
        )
        counts = [r["n"] for r in result.to_pylist()]
        assert counts == sorted(counts, reverse=True)
        assert result.to_pylist()[0]["region"] == "N"

    def test_limit_zero(self, db):
        result = db.execute("SELECT region FROM S LIMIT 0")
        assert result.num_rows == 0
        aggregate = db.execute(
            "SELECT region, COUNT(*) AS n FROM S GROUP BY region LIMIT 0"
        )
        assert aggregate.num_rows == 0
        assert aggregate.columns == ("region", "n")

    def test_update_weights_failure_leaves_sample_intact(self, db):
        sample = db.catalog.sample("S")
        before = sample.weights
        with pytest.raises(Exception):
            # -1 is rejected by weight validation; the partial update must
            # not leak into the stored vector.
            db.execute("UPDATE SAMPLE S SET WEIGHT = -1 WHERE brand = 'b'")
        assert np.array_equal(sample.weights, before)


class TestPlanCache:
    def test_repeat_sql_hits_plan_cache(self, db):
        sql = "SELECT region, COUNT(*) AS n FROM S GROUP BY region"
        first = db.execute(sql)
        assert first.has_note("plan: compiled and cached")
        second = db.execute(sql)
        assert second.has_note("plan: cache hit")
        assert second.relation.equals(first.relation)

    def test_programmatic_statements_not_cached(self, db):
        result = db.execute_statement(parse_statement("SELECT COUNT(*) AS n FROM S"))
        assert result.has_note("plan: compiled (programmatic statement, not cached)")

    def test_visibility_levels_get_distinct_plans(self, db):
        closed = db.execute("SELECT CLOSED region, COUNT(*) AS n FROM Pop GROUP BY region")
        semi = db.execute("SELECT SEMI-OPEN region, COUNT(*) AS n FROM Pop GROUP BY region")
        # Unweighted COUNT is INT, weighted COUNT is FLOAT — the weighted
        # flag is part of the plan and its cache key.
        assert isinstance(closed.to_pylist()[0]["n"], int)
        assert isinstance(semi.to_pylist()[0]["n"], float)

    def test_drop_and_recreate_with_new_schema_recompiles(self, db):
        db.execute("CREATE TABLE T (x INT)")
        db.execute("INSERT INTO T VALUES (1), (2)")
        sql = "SELECT * FROM T"
        assert db.execute(sql).columns == ("x",)
        db.execute("DROP TABLE T")
        db.execute("CREATE TABLE T (x INT, y TEXT)")
        db.execute("INSERT INTO T VALUES (3, 'a')")
        # Same SQL text, new schema: the fingerprint in the key forces a
        # fresh compile; the stale plan is never served.
        result = db.execute(sql)
        assert result.columns == ("x", "y")
        assert result.has_note("plan: compiled and cached")

    def test_plan_rejects_mismatched_schema(self, db):
        plan = compile_select(
            parse_statement("SELECT region FROM S"), db.catalog.sample("S").relation.schema
        )
        other = Relation.from_dict({"unrelated": [1]})
        with pytest.raises(SchemaError, match="cannot run over"):
            execute_plan(plan, other)

    def test_clear_caches_forces_recompile(self, db):
        sql = "SELECT COUNT(*) AS n FROM S"
        db.execute(sql)
        db.clear_caches()
        assert db.execute(sql).has_note("plan: compiled and cached")

    def test_cache_stats_exposed(self, db):
        sql = "SELECT COUNT(*) AS n FROM S"
        db.execute(sql)
        db.execute(sql)
        stats = db.cache_stats()
        assert stats["plans"]["hits"] >= 1
        assert stats["statements"]["hits"] >= 1

    def test_catalog_version_bumps_on_ddl_not_dml(self, db):
        before = db.cache_stats()["catalog"]["catalog_version"]
        db.ingest_rows("S", [("N", "a")])  # DML: sample version, not catalog
        assert db.cache_stats()["catalog"]["catalog_version"] == before
        db.execute("CREATE TABLE Aux (x INT)")
        assert db.cache_stats()["catalog"]["catalog_version"] == before + 1

    def test_execute_script_repeat_hits_plan_cache(self, db):
        script = (
            "SELECT region, COUNT(*) AS n FROM S GROUP BY region; "
            "SELECT COUNT(*) AS n FROM S"
        )
        first = db.execute_script(script)
        assert all(r.has_note("plan: compiled and cached") for r in first)
        second = db.execute_script(script)
        assert all(r.has_note("plan: cache hit") for r in second)
        for a, b in zip(first, second):
            assert a.relation.equals(b.relation)


class TestReweightCache:
    SQL = "SELECT SEMI-OPEN region, COUNT(*) AS n FROM Pop GROUP BY region"

    def test_repeat_semi_open_hits_reweight_cache(self, db):
        first = db.execute(self.SQL)
        assert not first.has_note("reweight cache hit")
        second = db.execute(self.SQL)
        assert second.has_note("reweight cache hit")
        assert second.relation.equals(first.relation)

    def test_insert_invalidates_reweight(self, db):
        db.execute(self.SQL)
        db.execute(self.SQL)
        db.ingest_rows("S", [("N", "b")] * 10)
        result = db.execute(self.SQL)
        assert not result.has_note("reweight cache hit")
        # Debiased totals still rake to the metadata's population size.
        assert sum(r["n"] for r in result.to_pylist()) == pytest.approx(1000)

    def test_update_weights_invalidates_reweight(self, db):
        db.execute(self.SQL)
        db.execute("UPDATE SAMPLE S SET WEIGHT = 2")
        assert not db.execute(self.SQL).has_note("reweight cache hit")

    def test_create_metadata_invalidates_reweight(self, db):
        db.execute(self.SQL)
        db.register_marginal(
            "Pop_M2", "Pop", Marginal(["brand"], {("a",): 500, ("b",): 500})
        )
        result = db.execute(self.SQL)
        assert not result.has_note("reweight cache hit")
        assert result.has_note("2 marginal(s)")

    def test_drop_metadata_invalidates_reweight(self, db):
        db.execute(self.SQL)
        db.execute("DROP METADATA Pop_M1")
        # Now no metadata and no declared mechanism: serving the cached
        # reweight would silently mask the error.
        from repro.errors import VisibilityError

        with pytest.raises(VisibilityError):
            db.execute(self.SQL)


def two_population_db():
    """A GP with metadata plus two view populations, each with its own sample."""
    database = MosaicDB(
        seed=0,
        open_config=OpenQueryConfig(generator_factory=IPFSynthesizer, repetitions=2),
    )
    database.execute_script(
        """
        CREATE GLOBAL POPULATION GP (region TEXT, brand TEXT);
        CREATE POPULATION North AS (SELECT * FROM GP WHERE region = 'N');
        CREATE POPULATION South AS (SELECT * FROM GP WHERE region = 'S');
        CREATE SAMPLE SN AS (SELECT * FROM North);
        CREATE SAMPLE SS AS (SELECT * FROM South);
        """
    )
    database.register_marginal(
        "GP_M1", "GP", Marginal(["region"], {("N",): 600, ("S",): 400})
    )
    database.register_marginal(
        "North_M1", "North", Marginal(["region"], {("N",): 600})
    )
    database.register_marginal(
        "South_M1", "South", Marginal(["region"], {("S",): 400})
    )
    database.ingest_rows("SN", [("N", "a")] * 30 + [("N", "b")] * 30)
    database.ingest_rows("SS", [("S", "a")] * 40 + [("S", "b")] * 20)
    return database


class TestPerKeyInvalidation:
    """INSERT into one sample must not evict unrelated samples' artifacts."""

    OPEN_NORTH = "SELECT OPEN brand, COUNT(*) AS n FROM North GROUP BY brand"
    OPEN_SOUTH = "SELECT OPEN brand, COUNT(*) AS n FROM South GROUP BY brand"
    SEMI_NORTH = "SELECT SEMI-OPEN brand, COUNT(*) AS n FROM North GROUP BY brand"
    SEMI_SOUTH = "SELECT SEMI-OPEN brand, COUNT(*) AS n FROM South GROUP BY brand"

    def test_generator_cache_survives_unrelated_insert(self):
        db = two_population_db()
        db.execute(self.OPEN_NORTH)
        db.execute(self.OPEN_SOUTH)
        db.ingest_rows("SN", [("N", "b")] * 5)
        south = db.execute(self.OPEN_SOUTH)
        assert south.has_note("generator cache hit")
        north = db.execute(self.OPEN_NORTH)
        assert not north.has_note("generator cache hit")

    def test_reweight_cache_survives_unrelated_insert(self):
        db = two_population_db()
        db.execute(self.SEMI_NORTH)
        db.execute(self.SEMI_SOUTH)
        db.ingest_rows("SN", [("N", "b")] * 5)
        assert db.execute(self.SEMI_SOUTH).has_note("reweight cache hit")
        assert not db.execute(self.SEMI_NORTH).has_note("reweight cache hit")

    def test_metadata_on_one_population_spares_the_other(self):
        db = two_population_db()
        db.execute(self.SEMI_NORTH)
        db.execute(self.SEMI_SOUTH)
        db.register_marginal("North_M2", "North", Marginal(["brand"], {("a",): 300, ("b",): 300}))
        assert db.execute(self.SEMI_SOUTH).has_note("reweight cache hit")
        assert not db.execute(self.SEMI_NORTH).has_note("reweight cache hit")

    def test_dropped_and_recreated_sample_never_served_stale(self):
        db = two_population_db()
        before = db.execute(self.SEMI_NORTH)
        db.execute("DROP SAMPLE SN")
        db.execute("CREATE SAMPLE SN AS (SELECT * FROM North)")
        db.ingest_rows("SN", [("N", "a")] * 10)
        after = db.execute(self.SEMI_NORTH)
        # Fresh sample uid: the predecessor's cached reweight is unreachable.
        assert not after.has_note("reweight cache hit")
        assert not after.relation.equals(before.relation)
