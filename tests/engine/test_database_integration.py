"""Integration tests: the full SQL surface through MosaicDB.

Covers the paper's Sec. 2 motivating example end to end: DDL, ingestion,
metadata, and CLOSED / SEMI-OPEN / OPEN queries over the migrants scenario.
"""

import numpy as np
import pytest

from repro import MosaicDB, Visibility
from repro.engine.open_world import IPFSynthesizer, OpenQueryConfig
from repro.errors import (
    CatalogError,
    SqlCompileError,
    UnknownRelationError,
    VisibilityError,
)


@pytest.fixture
def db():
    """The motivating example: Eurostat ground truth + a Yahoo-only sample."""
    database = MosaicDB(
        seed=0,
        open_config=OpenQueryConfig(
            generator_factory=IPFSynthesizer, repetitions=5
        ),
    )
    database.execute_script(
        """
        CREATE TEMPORARY TABLE Eurostat (kind TEXT, value TEXT, reported_count INT);
        INSERT INTO Eurostat VALUES
            ('country', 'UK', 20020), ('country', 'FR', 9010),
            ('email', 'Yahoo', 29000), ('email', 'AOL', 30);
        CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);
        CREATE SAMPLE YahooMigrants AS
            (SELECT * FROM EuropeMigrants WHERE email = 'Yahoo');
        """
    )
    # Metadata via the projection form, with explicit FOR binding; the
    # SELECT aliases rename the staging column to the population attribute.
    database.execute(
        "CREATE METADATA EuropeMigrants_M1 FOR EuropeMigrants AS "
        "(SELECT value AS country, reported_count FROM Eurostat WHERE kind = 'country')"
    )
    database.execute(
        "CREATE METADATA EuropeMigrants_M2 FOR EuropeMigrants AS "
        "(SELECT value AS email, reported_count FROM Eurostat WHERE kind = 'email')"
    )
    return database


def build_migrants_db(**db_kwargs):
    """Programmatic variant with correctly named marginal attributes."""
    from repro.catalog.metadata import Marginal

    database = MosaicDB(**db_kwargs)
    database.execute_script(
        """
        CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);
        CREATE SAMPLE YahooMigrants AS
            (SELECT * FROM EuropeMigrants WHERE email = 'Yahoo');
        """
    )
    database.register_marginal(
        "EuropeMigrants_M1",
        "EuropeMigrants",
        Marginal(["country"], {("UK",): 20020, ("FR",): 9010}),
    )
    database.register_marginal(
        "EuropeMigrants_M2",
        "EuropeMigrants",
        Marginal(["email"], {("Yahoo",): 29000, ("AOL",): 30}),
    )
    # Biased ingestion: UK over-represented relative to the marginal.
    rows = [("UK", "Yahoo")] * 800 + [("FR", "Yahoo")] * 200
    database.ingest_rows("YahooMigrants", rows)
    return database


class TestDdl:
    def test_create_and_insert_auxiliary(self, db):
        result = db.execute("SELECT * FROM Eurostat")
        assert result.num_rows == 4

    def test_create_table_requires_columns(self):
        with pytest.raises(SqlCompileError, match="column definitions"):
            MosaicDB().execute("CREATE TABLE t")

    def test_global_population_requires_columns(self):
        with pytest.raises(SqlCompileError, match="GLOBAL POPULATION"):
            MosaicDB().execute("CREATE GLOBAL POPULATION P")

    def test_insert_into_population_rejected(self, db):
        with pytest.raises(CatalogError, match="never store tuples"):
            db.execute("INSERT INTO EuropeMigrants VALUES ('UK', 'Yahoo')")

    def test_derived_population(self, db):
        db.execute(
            "CREATE POPULATION UkMigrants AS "
            "(SELECT * FROM EuropeMigrants WHERE country = 'UK')"
        )
        population = db.catalog.population("UkMigrants")
        assert population.source_population == "EuropeMigrants"
        assert population.defining_predicate is not None

    def test_drop_sample(self, db):
        db.execute("DROP SAMPLE YahooMigrants")
        with pytest.raises(UnknownRelationError):
            db.catalog.sample("YahooMigrants")

    def test_status_results_have_messages(self, db):
        result = db.execute("CREATE TABLE Extra (x INT)")
        assert "created table" in result.notes[0]


class TestSampleIngestion:
    def test_ingest_rows_sets_unit_weights(self, db):
        db.ingest_rows("YahooMigrants", [("UK", "Yahoo"), ("FR", "Yahoo")])
        sample = db.catalog.sample("YahooMigrants")
        assert sample.num_rows == 2
        assert sample.weights.tolist() == [1.0, 1.0]

    def test_sql_insert_into_sample(self, db):
        db.execute("INSERT INTO YahooMigrants VALUES ('UK', 'Yahoo'), ('FR', 'Yahoo')")
        assert db.catalog.sample("YahooMigrants").num_rows == 2

    def test_update_weights(self, db):
        db.ingest_rows("YahooMigrants", [("UK", "Yahoo"), ("FR", "Yahoo")])
        db.execute("UPDATE SAMPLE YahooMigrants SET WEIGHT = 5 WHERE country = 'UK'")
        assert db.catalog.sample("YahooMigrants").weights.tolist() == [5.0, 1.0]

    def test_update_weights_expression(self, db):
        db.ingest_rows("YahooMigrants", [("UK", "Yahoo"), ("FR", "Yahoo")])
        db.execute("UPDATE SAMPLE YahooMigrants SET WEIGHT = weight * 3")
        assert db.catalog.sample("YahooMigrants").weights.tolist() == [3.0, 3.0]


class TestClosedQueries:
    def test_closed_group_by(self):
        database = build_migrants_db()
        result = database.execute(
            "SELECT CLOSED country, email, COUNT(*) AS n "
            "FROM EuropeMigrants GROUP BY country, email"
        )
        rows = {(r["country"], r["email"]): r["n"] for r in result.to_pylist()}
        # Raw sample counts, no debiasing: 800 UK / 200 FR, Yahoo only.
        assert rows[("UK", "Yahoo")] == 800
        assert rows[("FR", "Yahoo")] == 200
        assert result.visibility == "CLOSED"

    def test_query_sample_directly(self):
        database = build_migrants_db()
        result = database.execute("SELECT COUNT(*) FROM YahooMigrants")
        assert result.scalar() == 1000


class TestSemiOpenQueries:
    def test_paper_semi_open_answer_shape(self):
        """Sec. 2: SEMI-OPEN reweights but cannot invent AOL tuples."""
        database = build_migrants_db()
        result = database.execute(
            "SELECT SEMI-OPEN country, email, COUNT(*) AS n "
            "FROM EuropeMigrants GROUP BY country, email"
        )
        rows = {(r["country"], r["email"]): r["n"] for r in result.to_pylist()}
        assert set(rows) == {("UK", "Yahoo"), ("FR", "Yahoo")}  # no AOL: FN
        # Counts now match the country marginal (~20020 / ~9010 split over
        # the Yahoo-only sample; email marginal pulls the total to 29000).
        assert rows[("UK", "Yahoo")] == pytest.approx(20013, rel=0.01)
        assert rows[("FR", "Yahoo")] == pytest.approx(9007, rel=0.01)

    def test_semi_open_is_default_visibility(self):
        database = build_migrants_db()
        result = database.execute(
            "SELECT country, COUNT(*) AS n FROM EuropeMigrants GROUP BY country"
        )
        assert result.visibility == "SEMI-OPEN"

    def test_semi_open_without_metadata_or_mechanism_raises(self):
        database = MosaicDB()
        database.execute("CREATE GLOBAL POPULATION P (x TEXT)")
        database.execute("CREATE SAMPLE S AS (SELECT * FROM P)")
        database.ingest_rows("S", [("a",), ("b",)])
        with pytest.raises(VisibilityError, match="SEMI-OPEN"):
            database.execute("SELECT SEMI-OPEN x, COUNT(*) FROM P GROUP BY x")

    def test_known_uniform_mechanism_used(self):
        database = MosaicDB()
        database.execute("CREATE GLOBAL POPULATION P (x TEXT)")
        database.execute(
            "CREATE SAMPLE S AS (SELECT * FROM P USING MECHANISM UNIFORM PERCENT 10)"
        )
        database.ingest_rows("S", [("a",)] * 30 + [("b",)] * 20)
        result = database.execute("SELECT SEMI-OPEN x, COUNT(*) AS n FROM P GROUP BY x")
        rows = {r["x"]: r["n"] for r in result.to_pylist()}
        # Inverse probability: each tuple counts 10x.
        assert rows["a"] == pytest.approx(300.0)
        assert rows["b"] == pytest.approx(200.0)
        assert any("inverse-probability" in note for note in result.notes)

    def test_no_sample_raises(self):
        database = MosaicDB()
        database.execute("CREATE GLOBAL POPULATION P (x TEXT)")
        with pytest.raises(VisibilityError, match="no sample"):
            database.execute("SELECT SEMI-OPEN COUNT(*) FROM P")


class TestOpenQueries:
    def test_paper_open_answer_generates_missing_tuples(self):
        """Sec. 2: OPEN can produce the (UK, AOL, 20) style rows.

        AOL is a light hitter (30 of 29,030 tuples), so each repetition
        must generate at population scale for AOL groups to survive the
        all-repetitions intersection.
        """
        database = build_migrants_db(
            open_config=OpenQueryConfig(
                generator_factory=IPFSynthesizer,
                repetitions=5,
                rows_per_generation=30_000,
            )
        )
        result = database.execute(
            "SELECT OPEN country, email, COUNT(*) AS n "
            "FROM EuropeMigrants GROUP BY country, email"
        )
        rows = {(r["country"], r["email"]): r["n"] for r in result.to_pylist()}
        assert ("UK", "AOL") in rows or ("FR", "AOL") in rows  # new tuples!
        total = sum(rows.values())
        assert total == pytest.approx(29030, rel=0.02)
        assert result.visibility == "OPEN"

    def test_open_without_metadata_raises(self):
        database = MosaicDB()
        database.execute("CREATE GLOBAL POPULATION P (x TEXT)")
        database.execute("CREATE SAMPLE S AS (SELECT * FROM P)")
        database.ingest_rows("S", [("a",)])
        with pytest.raises(VisibilityError, match="OPEN queries need marginals"):
            database.execute("SELECT OPEN x, COUNT(*) FROM P GROUP BY x")

    def test_open_on_sample_rejected(self):
        database = build_migrants_db()
        with pytest.raises(VisibilityError, match="populations"):
            database.execute("SELECT OPEN COUNT(*) FROM YahooMigrants")

    def test_generator_cached_across_queries(self):
        database = build_migrants_db(
            open_config=OpenQueryConfig(generator_factory=IPFSynthesizer, repetitions=2)
        )
        first = database.execute(
            "SELECT OPEN country, COUNT(*) FROM EuropeMigrants GROUP BY country"
        )
        assert not first.has_note("generator cache hit")
        second = database.execute(
            "SELECT OPEN email, COUNT(*) FROM EuropeMigrants GROUP BY email"
        )
        assert second.has_note("generator cache hit")

    def test_ingestion_invalidates_generator_cache(self):
        database = build_migrants_db(
            open_config=OpenQueryConfig(generator_factory=IPFSynthesizer, repetitions=2)
        )
        sql = "SELECT OPEN country, COUNT(*) FROM EuropeMigrants GROUP BY country"
        database.execute(sql)
        database.ingest_rows("YahooMigrants", [("UK", "Yahoo")])
        # The stale entry is superseded by version stamp: the next query
        # refits instead of serving the pre-ingest generator.
        result = database.execute(sql)
        assert not result.has_note("generator cache hit")
        again = database.execute(sql)
        assert again.has_note("generator cache hit")


class TestVisibilityTradeoffTable:
    """The Sec. 3.3 table: FN/FP behaviour per visibility level."""

    def test_closed_and_semi_open_have_no_false_positives(self):
        database = build_migrants_db()
        for visibility in ("CLOSED", "SEMI-OPEN"):
            result = database.execute(
                f"SELECT {visibility} country, email, COUNT(*) AS n "
                "FROM EuropeMigrants GROUP BY country, email"
            )
            emails = {r["email"] for r in result.to_pylist()}
            assert emails == {"Yahoo"}  # nothing invented

    def test_open_reduces_false_negatives(self):
        database = build_migrants_db(
            open_config=OpenQueryConfig(
                generator_factory=IPFSynthesizer,
                repetitions=5,
                rows_per_generation=30_000,
            )
        )
        closed = database.execute(
            "SELECT CLOSED country, email, COUNT(*) FROM EuropeMigrants "
            "GROUP BY country, email"
        )
        opened = database.execute(
            "SELECT OPEN country, email, COUNT(*) FROM EuropeMigrants "
            "GROUP BY country, email"
        )
        assert opened.num_rows > closed.num_rows


class TestAuxiliaryVisibility:
    def test_visibility_on_auxiliary_rejected(self, db):
        with pytest.raises(VisibilityError, match="auxiliary"):
            db.execute("SELECT SEMI-OPEN * FROM Eurostat")
