"""Batched ≡ serial equivalence for OPEN execution.

The batched single-pass path (one ``generate_batch`` + composite
``(rep, group)`` evaluation) must be bit-identical to the per-repetition
reference loop for every generator, every aggregate kind, with and
without WHERE / view predicates / ORDER BY — in-process and over the TCP
server.  Both paths share the per-repetition RNG-stream contract: each
repetition draws from stream ``r`` of ``repetition_streams(rng, R)``.
"""

import numpy as np
import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.client import Connection
from repro.engine.open_world import (
    BayesNetGenerator,
    IPFSynthesizer,
    MswgGenerator,
    OpenQueryConfig,
)
from repro.generative.mswg import MswgConfig
from repro.generative.streams import (
    REPETITION_COLUMN,
    repetition_streams,
    with_repetition_ids,
)
from repro.server.server import MosaicServer

REPETITIONS = 4
GEN_ROWS = 800


def tiny_mswg():
    return MswgGenerator(
        MswgConfig(
            epochs=2,
            hidden_layers=2,
            hidden_units=16,
            num_projections=8,
            batch_size=128,
            latent_dim=2,
        )
    )


GENERATOR_FACTORIES = {
    "ipf-synth": IPFSynthesizer,
    "bayesnet": BayesNetGenerator,
    "mswg": tiny_mswg,
}


def build_db(factory, batched: bool, seed: int = 0) -> MosaicDB:
    """Migrants-style database: TEXT keys, skewed sample, two marginals."""
    db = MosaicDB(
        seed=seed,
        open_config=OpenQueryConfig(
            generator_factory=factory,
            repetitions=REPETITIONS,
            rows_per_generation=GEN_ROWS,
            max_workers=1,
            batched=batched,
        ),
    )
    db.execute_script(
        """
        CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);
        CREATE POPULATION UkMigrants AS
            (SELECT * FROM EuropeMigrants WHERE country = 'UK');
        CREATE SAMPLE S AS (SELECT * FROM EuropeMigrants);
        """
    )
    db.register_marginal(
        "M1",
        "EuropeMigrants",
        Marginal(["country"], {("UK",): 700, ("FR",): 250, ("DE",): 50}),
    )
    db.register_marginal(
        "M2", "EuropeMigrants", Marginal(["email"], {("Yahoo",): 600, ("AOL",): 400})
    )
    db.ingest_rows(
        "S",
        [("UK", "Yahoo")] * 50 + [("FR", "Yahoo")] * 30 + [("DE", "Yahoo")] * 5,
    )
    return db


#: (sql, expected to take the batched path).  GROUP BY keys missing from
#: the SELECT list stay on the per-repetition path: their answers do not
#: carry the key columns, so only the reference combine's semantics apply.
QUERY_SHAPES = [
    (
        "SELECT OPEN country, email, COUNT(*) AS n "
        "FROM EuropeMigrants GROUP BY country, email",
        True,
    ),
    (
        "SELECT OPEN country, COUNT(*) AS n FROM EuropeMigrants "
        "WHERE email != 'AOL' GROUP BY country ORDER BY country DESC",
        True,
    ),
    ("SELECT OPEN COUNT(*) AS n FROM EuropeMigrants GROUP BY country", False),
]


def fitted(factory):
    rng = np.random.default_rng(3)
    sample = (
        build_db(factory, batched=True).session.engine.catalog.sample("S").relation
    )
    marginals = [
        Marginal(["country"], {("UK",): 700, ("FR",): 250, ("DE",): 50}),
        Marginal(["email"], {("Yahoo",): 600, ("AOL",): 400}),
    ]
    generator = factory() if callable(factory) else factory
    generator.fit(sample, marginals)
    return generator


class TestGenerateBatchContract:
    """generate_batch(n, R, rng) row-for-row equals R serial generate calls."""

    @pytest.mark.parametrize("name", list(GENERATOR_FACTORIES))
    def test_batch_rows_bit_identical_to_serial_streams(self, name):
        generator = fitted(GENERATOR_FACTORIES[name])
        n = 300
        serial = [
            generator.generate(n, rng=stream)
            for stream in repetition_streams(np.random.default_rng(7), REPETITIONS)
        ]
        batch = generator.generate_batch(
            n, REPETITIONS, rng=np.random.default_rng(7)
        )
        rep_ids = np.asarray(batch.column(REPETITION_COLUMN))
        assert np.array_equal(
            rep_ids, np.repeat(np.arange(REPETITIONS), n)
        )  # dense, repetition-major
        data = batch.drop_column(REPETITION_COLUMN)
        for repetition, expected in enumerate(serial):
            piece = data.filter(rep_ids == repetition)
            assert piece.schema == expected.schema
            for column in expected.column_names:
                assert np.array_equal(
                    piece.column(column), expected.column(column)
                ), f"{name}: repetition {repetition}, column {column}"

    def test_rep_column_validates_divisibility(self):
        relation = build_db(IPFSynthesizer, True).session.engine.catalog.sample(
            "S"
        ).relation
        from repro.errors import GenerativeModelError

        with pytest.raises(GenerativeModelError, match="divisible"):
            with_repetition_ids(relation, 7)  # 85 rows % 7 != 0


class TestBatchedEqualsSerialEndToEnd:
    @pytest.mark.parametrize("name", list(GENERATOR_FACTORIES))
    @pytest.mark.parametrize("sql,expect_batched", QUERY_SHAPES)
    def test_engine_answers_bit_identical(self, name, sql, expect_batched):
        factory = GENERATOR_FACTORIES[name]
        batched = build_db(factory, batched=True).execute(sql)
        serial = build_db(factory, batched=False).execute(sql)
        assert batched.relation.schema == serial.relation.schema
        assert batched.to_pylist() == serial.to_pylist()  # bit-identical rows
        assert batched.has_note("composite (rep, group) codes") == expect_batched
        assert not serial.has_note("composite (rep, group) codes")

    def test_population_view_predicate_filters_batch_identically(self):
        sql = (
            "SELECT OPEN country, email, COUNT(*) AS n "
            "FROM UkMigrants GROUP BY country, email"
        )
        batched = build_db(IPFSynthesizer, batched=True).execute(sql)
        serial = build_db(IPFSynthesizer, batched=False).execute(sql)
        assert batched.to_pylist() == serial.to_pylist()
        assert {row["country"] for row in batched.to_pylist()} <= {"UK"}

    def test_limit_queries_take_the_per_repetition_path(self):
        # A per-repetition LIMIT truncates each answer *before* the
        # group intersection; the composite pass cannot reproduce that,
        # so such plans must fall back — and still agree with the
        # reference loop.
        sql = (
            "SELECT OPEN country, COUNT(*) AS n FROM EuropeMigrants "
            "GROUP BY country ORDER BY country LIMIT 2"
        )
        batched_config = build_db(IPFSynthesizer, batched=True).execute(sql)
        serial = build_db(IPFSynthesizer, batched=False).execute(sql)
        assert not batched_config.has_note("composite (rep, group) codes")
        assert batched_config.to_pylist() == serial.to_pylist()

    def test_batched_path_does_not_spin_up_the_repetition_pool(self):
        db = build_db(IPFSynthesizer, batched=True)
        db.config.open_config.max_workers = 4
        result = db.execute(QUERY_SHAPES[0][0])
        assert result.has_note("composite (rep, group) codes")
        assert db.engine._open_pool is None

    def test_non_aggregate_open_unaffected(self):
        sql = "SELECT OPEN country, email FROM EuropeMigrants"
        batched = build_db(IPFSynthesizer, batched=True).execute(sql)
        serial = build_db(IPFSynthesizer, batched=False).execute(sql)
        assert batched.to_pylist() == serial.to_pylist()


class TestBatchedOverTheWire:
    def test_wire_results_match_serial_in_process(self):
        """OPEN wire results are unchanged by batching: a server session
        (batched default) returns exactly what the in-process serial loop
        returns for the matching spawn index."""
        sql = QUERY_SHAPES[0][0]
        serial_db = build_db(IPFSynthesizer, batched=False)
        expected = serial_db.connect().execute(sql)

        server_db = build_db(IPFSynthesizer, batched=True)
        server = MosaicServer(
            server_db.engine, port=0, session_config=server_db.session.config
        ).start_in_thread()
        try:
            with Connection("127.0.0.1", server.port) as conn:
                received = conn.execute(sql)
        finally:
            server.stop_in_thread()

        assert received.columns == expected.columns
        assert received.num_rows == expected.num_rows
        for name in expected.columns:
            mine, theirs = received.column(name), expected.column(name)
            if mine.dtype == object:
                assert list(mine) == list(theirs)
            else:
                assert mine.tobytes() == theirs.tobytes()  # bit-for-bit
