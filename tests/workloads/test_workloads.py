"""Unit tests for the synthetic workloads (spiral, flights, migrants)."""

import numpy as np
import pytest

from repro.errors import MosaicError
from repro.workloads.flights import (
    CARRIER_PROFILES,
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_biased_flights_sample,
    make_flights_population,
)
from repro.workloads.migrants import (
    MigrantsConfig,
    build_migrants_database,
    make_migrants_population,
    migrants_marginals,
)
from repro.workloads.queries import (
    AggregateQuery,
    paper_flights_queries,
    random_box_queries,
    random_template_queries,
)
from repro.workloads.spiral import (
    SpiralConfig,
    make_biased_spiral_sample,
    make_spiral_population,
    spiral_marginals,
)


@pytest.fixture(scope="module")
def spiral():
    config = SpiralConfig(population_size=20_000, sample_size=2_000)
    rng = np.random.default_rng(0)
    population = make_spiral_population(config, rng)
    sample, indices = make_biased_spiral_sample(population, config, rng)
    return config, population, sample, indices


@pytest.fixture(scope="module")
def flights():
    config = FlightsConfig(rows=20_000)
    rng = np.random.default_rng(1)
    population = make_flights_population(config, rng)
    sample, mechanism, indices = make_biased_flights_sample(population, config, rng)
    return config, population, sample, mechanism


class TestSpiral:
    def test_population_shape(self, spiral):
        _, population, _, _ = spiral
        assert population.num_rows == 20_000
        assert population.column_names == ("x", "y")
        # Roughly the Fig. 5 window.
        assert -0.3 < population.column("y").min() < 1.2
        assert -0.2 < population.column("x").min() < 1.2

    def test_sample_is_biased_outward(self, spiral):
        _, population, sample, _ = spiral
        from repro.workloads.spiral import spiral_parameter

        pop_radius = spiral_parameter(population).mean()
        sample_radius = spiral_parameter(sample).mean()
        assert sample_radius > pop_radius * 1.1  # clearly outward-biased

    def test_sample_size(self, spiral):
        _, _, sample, _ = spiral
        assert sample.num_rows == 2_000

    def test_marginals_cover_population_mass(self, spiral):
        config, population, _, _ = spiral
        marginals = spiral_marginals(population, config)
        assert len(marginals) == 2
        for marginal in marginals:
            assert marginal.total_mass == population.num_rows

    def test_deterministic(self):
        config = SpiralConfig(population_size=100)
        a = make_spiral_population(config, np.random.default_rng(7))
        b = make_spiral_population(config, np.random.default_rng(7))
        assert a.equals(b)


class TestFlights:
    def test_schema_and_types(self, flights):
        _, population, _, _ = flights
        assert population.column_names == (
            "carrier", "taxi_out", "taxi_in", "elapsed_time", "distance",
        )
        assert population.column("distance").dtype == np.int64

    def test_fourteen_carriers(self, flights):
        _, population, _, _ = flights
        assert len(CARRIER_PROFILES) == 14  # Table 1: C has M-SWG dim 14
        assert set(population.column("carrier")) <= set(CARRIER_PROFILES)

    def test_carrier_skew(self, flights):
        _, population, _, _ = flights
        carriers = population.column("carrier")
        share = lambda c: np.mean([v == c for v in carriers])
        assert share("WN") > 0.15
        assert share("US") < 0.04  # light hitter (paper query 8)
        assert share("F9") < 0.03

    def test_distance_elapsed_correlated(self, flights):
        _, population, _, _ = flights
        correlation = np.corrcoef(
            population.column("distance").astype(float),
            population.column("elapsed_time").astype(float),
        )[0, 1]
        assert correlation > 0.95  # physical model: E ~ f(D) + taxi + noise

    def test_sample_bias_95_percent_long(self, flights):
        config, _, sample, _ = flights
        long_share = np.mean(sample.column("elapsed_time") > config.long_flight_minutes)
        assert long_share == pytest.approx(0.95, abs=0.01)

    def test_sample_is_5_percent(self, flights):
        config, population, sample, _ = flights
        assert sample.num_rows == pytest.approx(population.num_rows * 0.05, rel=0.01)

    def test_marginals_are_the_four_pairs(self, flights):
        config, population, _, _ = flights
        marginals = flights_marginals(population, config)
        pairs = [m.attributes for m in marginals]
        assert pairs == [
            ("carrier", "elapsed_time"),
            ("taxi_out", "elapsed_time"),
            ("taxi_in", "elapsed_time"),
            ("distance", "elapsed_time"),
        ]
        for marginal in marginals:
            assert marginal.total_mass == population.num_rows

    def test_bucketing_snaps_values(self, flights):
        config, population, _, _ = flights
        bucketed = bucket_flights(population, config)
        elapsed = bucketed.column("elapsed_time")
        assert np.all(elapsed % config.elapsed_bucket == 0)

    def test_paper_scale_config(self):
        assert FlightsConfig.paper_scale().rows == 426_411


class TestMigrants:
    def test_population_counts(self):
        config = MigrantsConfig()
        population = make_migrants_population(config, np.random.default_rng(0))
        assert population.num_rows == sum(config.country_counts.values())

    def test_affinity_shifts_provider_mix(self):
        config = MigrantsConfig()
        population = make_migrants_population(config, np.random.default_rng(0))
        de_mask = np.asarray([c == "DE" for c in population.column("country")])
        uk_mask = np.asarray([c == "UK" for c in population.column("country")])
        emails = population.column("email")
        gmx = lambda mask: np.mean([e == "GMX" for e, m in zip(emails, mask) if m])
        assert gmx(de_mask) > gmx(uk_mask) * 2

    def test_marginals(self):
        config = MigrantsConfig()
        population = make_migrants_population(config, np.random.default_rng(0))
        m_country, m_email = migrants_marginals(population)
        assert m_country.mass(("UK",)) == config.country_counts["UK"]
        assert m_email.total_mass == population.num_rows

    def test_build_database_sample_is_yahoo_only(self):
        db, population = build_migrants_database(seed=0)
        sample = db.catalog.sample("YahooMigrants")
        assert set(sample.relation.column("email")) == {"Yahoo"}
        assert sample.num_rows > 0


class TestPaperQueries:
    def test_eight_queries(self):
        queries = paper_flights_queries()
        assert [q.query_id for q in queries] == [str(i) for i in range(1, 9)]
        assert queries[7].group_values == ("US", "F9")

    def test_sql_rendering_parses(self):
        from repro.sql.parser import parse_statement

        for query in paper_flights_queries():
            parsed = parse_statement(query.to_sql())
            assert parsed.table == "F"

    def test_structured_matches_sql_engine(self, flights):
        """The fast structured evaluation agrees with the SQL executor."""
        from repro.engine.executor import execute_select
        from repro.sql.parser import parse_statement

        _, population, _, _ = flights
        for query in paper_flights_queries():
            structured = query.evaluate(population)
            sql_result = execute_select(parse_statement(query.to_sql()), population)
            sql_rows = sql_result.to_pylist()
            if query.group_by is None:
                assert len(sql_rows) == 1
                (value,) = structured.values()
                assert value == pytest.approx(list(sql_rows[0].values())[0], rel=1e-9)
            else:
                for row in sql_rows:
                    key = (row[query.group_by],)
                    agg_value = [v for k, v in row.items() if k != query.group_by][0]
                    assert structured[key] == pytest.approx(agg_value, rel=1e-9)

    def test_weighted_evaluation(self, flights):
        _, population, _, _ = flights
        query = paper_flights_queries()[0]
        unweighted = query.evaluate(population)[()]
        weighted = query.evaluate(population, np.full(population.num_rows, 3.0))[()]
        assert weighted == pytest.approx(unweighted)  # AVG scale-invariant

    def test_empty_answer_when_no_weight_survives(self, flights):
        _, population, _, _ = flights
        query = paper_flights_queries()[0]
        assert query.evaluate(population, np.zeros(population.num_rows)) == {}


class TestRandomWorkloads:
    def test_template_queries(self):
        queries = random_template_queries(np.random.default_rng(0), 50)
        assert len(queries) == 50
        for query in queries:
            assert query.target != query.filter_attribute
            assert query.aggregate == "AVG"

    def test_box_queries_within_bounds(self, spiral):
        _, population, _, _ = spiral
        boxes = random_box_queries(np.random.default_rng(0), population, 0.4, 20)
        x = population.column("x")
        for box in boxes:
            assert box.x_low >= x.min() - 1e-9
            assert box.x_high <= x.max() + 1e-9
            assert box.x_high - box.x_low == pytest.approx(0.4 * (x.max() - x.min()))

    def test_box_count_weighted(self, spiral):
        _, population, _, _ = spiral
        box = random_box_queries(np.random.default_rng(1), population, 0.5, 1)[0]
        unweighted = box.count(population)
        weighted = box.count(population, np.full(population.num_rows, 2.0))
        assert weighted == pytest.approx(2.0 * unweighted)

    def test_bad_coverage_rejected(self, spiral):
        _, population, _, _ = spiral
        with pytest.raises(MosaicError):
            random_box_queries(np.random.default_rng(0), population, 1.5, 1)

    def test_box_sql_round_trip(self, spiral):
        from repro.engine.executor import execute_select
        from repro.sql.parser import parse_statement

        _, population, _, _ = spiral
        box = random_box_queries(np.random.default_rng(2), population, 0.3, 1)[0]
        sql_count = execute_select(
            parse_statement(box.to_sql()), population
        ).to_pylist()[0]["COUNT(*)"]
        assert box.count(population) == pytest.approx(sql_count)
