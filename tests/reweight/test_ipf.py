"""Unit tests for IPF tuple raking."""

import numpy as np
import pytest

from repro.catalog.metadata import Marginal
from repro.errors import ConvergenceError, ReweightError
from repro.relational.relation import Relation
from repro.reweight.ipf import fitted_marginal, ipf_reweight


@pytest.fixture
def sample():
    # Biased sample: country UK over-represented relative to the marginal.
    return Relation.from_dict(
        {
            "country": ["UK"] * 8 + ["FR"] * 2,
            "email": ["Yahoo"] * 5 + ["AOL"] * 3 + ["Yahoo", "AOL"],
        }
    )


class TestSingleMarginal:
    def test_exact_fit(self, sample):
        marginal = Marginal(["country"], {("UK",): 100, ("FR",): 300})
        result = ipf_reweight(sample, [marginal])
        assert result.converged
        fitted = fitted_marginal(sample, result.weights, marginal)
        assert fitted.mass(("UK",)) == pytest.approx(100)
        assert fitted.mass(("FR",)) == pytest.approx(300)

    def test_single_marginal_converges_in_one_iteration(self, sample):
        marginal = Marginal(["country"], {("UK",): 100, ("FR",): 300})
        result = ipf_reweight(sample, [marginal])
        assert result.iterations == 1

    def test_weights_uniform_within_cell(self, sample):
        marginal = Marginal(["country"], {("UK",): 80, ("FR",): 20})
        result = ipf_reweight(sample, [marginal])
        uk_weights = result.weights[:8]
        assert np.allclose(uk_weights, uk_weights[0])
        assert uk_weights[0] == pytest.approx(10.0)

    def test_total_weight_matches_marginal_mass(self, sample):
        marginal = Marginal(["country"], {("UK",): 100, ("FR",): 300})
        result = ipf_reweight(sample, [marginal])
        assert result.total_weight == pytest.approx(400.0)


class TestTwoMarginals:
    def test_both_marginals_fit(self, sample):
        m1 = Marginal(["country"], {("UK",): 60, ("FR",): 40})
        m2 = Marginal(["email"], {("Yahoo",): 70, ("AOL",): 30})
        result = ipf_reweight(sample, [m1, m2])
        assert result.converged
        f1 = fitted_marginal(sample, result.weights, m1)
        f2 = fitted_marginal(sample, result.weights, m2)
        assert f1.mass(("UK",)) == pytest.approx(60, rel=1e-6)
        assert f2.mass(("Yahoo",)) == pytest.approx(70, rel=1e-6)

    def test_two_dimensional_marginal(self, sample):
        m = Marginal(
            ["country", "email"],
            {("UK", "Yahoo"): 10, ("UK", "AOL"): 30, ("FR", "Yahoo"): 40, ("FR", "AOL"): 20},
        )
        result = ipf_reweight(sample, [m])
        fitted = fitted_marginal(sample, result.weights, m)
        assert fitted.mass(("UK", "AOL")) == pytest.approx(30)

    def test_initial_weights_respected_within_cells(self, sample):
        # Within a cell IPF preserves weight ratios.
        marginal = Marginal(["country"], {("UK",): 80, ("FR",): 20})
        initial = np.ones(10)
        initial[0] = 3.0  # first UK tuple three times the others
        result = ipf_reweight(sample, [marginal], initial_weights=initial)
        ratio = result.weights[0] / result.weights[1]
        assert ratio == pytest.approx(3.0)


class TestZeroCells:
    def test_sample_only_value_driven_to_zero(self):
        rel = Relation.from_dict({"c": ["UK", "FR", "XX"]})
        marginal = Marginal(["c"], {("UK",): 10, ("FR",): 10})
        result = ipf_reweight(rel, [marginal])
        assert result.weights[2] == 0.0
        assert result.total_weight == pytest.approx(20.0)

    def test_unreachable_mass_reported(self):
        rel = Relation.from_dict({"c": ["UK", "UK"]})
        marginal = Marginal(["c"], {("UK",): 10, ("DE",): 5})
        result = ipf_reweight(rel, [marginal])
        assert result.unreachable_mass == (5.0,)
        # The reachable part is fit exactly.
        assert result.total_weight == pytest.approx(10.0)

    def test_fully_disjoint_sample_raises(self):
        rel = Relation.from_dict({"c": ["XX", "YY"]})
        marginal = Marginal(["c"], {("UK",): 10})
        with pytest.raises(ReweightError, match="disjoint"):
            ipf_reweight(rel, [marginal])


class TestValidation:
    def test_no_marginals_raises(self, sample):
        with pytest.raises(ReweightError, match="at least one marginal"):
            ipf_reweight(sample, [])

    def test_empty_sample_raises(self):
        empty = Relation.from_dict({"c": np.array([], dtype=object)})
        with pytest.raises(ReweightError, match="non-empty"):
            ipf_reweight(empty, [Marginal(["c"], {("UK",): 1})])

    def test_missing_attribute_raises(self, sample):
        marginal = Marginal(["planet"], {("Earth",): 1})
        with pytest.raises(ReweightError, match="missing from sample"):
            ipf_reweight(sample, [marginal])

    def test_bad_initial_weights_length(self, sample):
        marginal = Marginal(["country"], {("UK",): 1, ("FR",): 1})
        with pytest.raises(ReweightError, match="length"):
            ipf_reweight(sample, [marginal], initial_weights=np.ones(3))

    def test_non_convergence_raises_when_asked(self):
        # Conflicting 2-D marginal structure that raking cannot satisfy
        # through occupied cells only: needs many iterations; force failure
        # with max_iterations=0 equivalent (1 iteration, tight tolerance).
        rel = Relation.from_dict({"a": ["x", "y"], "b": ["1", "2"]})
        m1 = Marginal(["a"], {("x",): 90, ("y",): 10})
        m2 = Marginal(["b"], {("1",): 10, ("2",): 90})
        with pytest.raises(ConvergenceError):
            ipf_reweight(
                rel, [m1, m2], max_iterations=1, tolerance=1e-15, raise_on_failure=True
            )


class TestConvergenceBehaviour:
    def test_diagonal_sample_cannot_fit_conflicting_marginals(self):
        """Structural zeros can make marginals jointly unsatisfiable."""
        rel = Relation.from_dict({"a": ["x", "y"], "b": ["1", "2"]})
        # Sample only has (x,1) and (y,2); marginals demand mass flows that
        # would need (x,2)/(y,1).
        m1 = Marginal(["a"], {("x",): 90, ("y",): 10})
        m2 = Marginal(["b"], {("1",): 10, ("2",): 90})
        result = ipf_reweight(rel, [m1, m2], max_iterations=50)
        # Raking oscillates; the last-applied marginal is matched.
        fitted2 = fitted_marginal(rel, result.weights, m2)
        assert fitted2.mass(("1",)) == pytest.approx(10, rel=1e-3)

    def test_consistent_marginals_converge_fast(self):
        rng = np.random.default_rng(0)
        n = 500
        rel = Relation.from_dict(
            {
                "a": rng.choice(["x", "y", "z"], size=n).tolist(),
                "b": rng.choice(["1", "2"], size=n).tolist(),
            }
        )
        # Marginals derived from an actual population are always consistent.
        pop = Relation.from_dict(
            {
                "a": rng.choice(["x", "y", "z"], size=5000, p=[0.5, 0.3, 0.2]).tolist(),
                "b": rng.choice(["1", "2"], size=5000, p=[0.7, 0.3]).tolist(),
            }
        )
        m1 = Marginal.from_data(pop, ["a"])
        m2 = Marginal.from_data(pop, ["b"])
        result = ipf_reweight(rel, [m1, m2])
        assert result.converged
        assert result.iterations < 50
