"""Property-based tests for IPF invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.metadata import Marginal
from repro.relational.relation import Relation
from repro.reweight.ipf import fitted_marginal, ipf_reweight

values_a = ["x", "y", "z"]
values_b = ["1", "2"]


@st.composite
def sample_and_marginals(draw):
    """A random sample over (a, b) plus marginals from a random population.

    Drawing the marginals from an actual population guarantees they are
    mutually consistent, so IPF should always converge on the occupied
    cells (possibly leaving unreachable mass aside).
    """
    n = draw(st.integers(min_value=5, max_value=80))
    a = draw(st.lists(st.sampled_from(values_a), min_size=n, max_size=n))
    b = draw(st.lists(st.sampled_from(values_b), min_size=n, max_size=n))
    rel = Relation.from_dict({"a": a, "b": b})

    pop_n = draw(st.integers(min_value=50, max_value=200))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    pop = Relation.from_dict(
        {
            "a": rng.choice(values_a, size=pop_n).tolist(),
            "b": rng.choice(values_b, size=pop_n).tolist(),
        }
    )
    m1 = Marginal.from_data(pop, ["a"])
    m2 = Marginal.from_data(pop, ["b"])
    return rel, [m1, m2]


@given(sample_and_marginals())
@settings(max_examples=40, deadline=None)
def test_weights_always_non_negative(case):
    rel, marginals = case
    result = ipf_reweight(rel, marginals, max_iterations=100)
    assert np.all(result.weights >= 0)
    assert np.all(np.isfinite(result.weights))


@given(sample_and_marginals())
@settings(max_examples=40, deadline=None)
def test_last_marginal_always_satisfied_on_reachable_cells(case):
    """After raking, the most recently applied marginal fits exactly
    (on cells the sample occupies)."""
    rel, marginals = case
    result = ipf_reweight(rel, marginals, max_iterations=100)
    last = marginals[-1]
    fitted = fitted_marginal(rel, result.weights, last)
    occupied_keys = set(fitted.keys())
    for key, mass in last.cells():
        if key in occupied_keys and mass > 0:
            assert fitted.mass(key) == pytest.approx(mass, rel=1e-6)


@given(sample_and_marginals())
@settings(max_examples=40, deadline=None)
def test_total_weight_bounded_by_population(case):
    """Raked total weight never exceeds the reported population size."""
    rel, marginals = case
    result = ipf_reweight(rel, marginals, max_iterations=100)
    population_size = marginals[0].total_mass
    assert result.total_weight <= population_size + 1e-6


@given(sample_and_marginals(), st.floats(min_value=0.5, max_value=5.0))
@settings(max_examples=40, deadline=None)
def test_scale_invariance_in_initial_weights(case, scale):
    """Scaling all initial weights by a constant does not change the fit."""
    rel, marginals = case
    base = ipf_reweight(rel, marginals, max_iterations=100)
    scaled = ipf_reweight(
        rel,
        marginals,
        initial_weights=np.full(rel.num_rows, scale),
        max_iterations=100,
    )
    assert np.allclose(base.weights, scaled.weights, rtol=1e-6, atol=1e-9)
