"""Unit tests for known-mechanism inverse-probability reweighting."""

import numpy as np
import pytest

from repro.catalog.metadata import Marginal
from repro.catalog.sample import SampleRelation
from repro.errors import ReweightError
from repro.mechanisms import StratifiedMechanism, UniformMechanism
from repro.relational.relation import Relation
from repro.reweight.inverse_probability import (
    declared_mechanism_weights,
    mechanism_weights_from_population,
)


@pytest.fixture
def population():
    rng = np.random.default_rng(11)
    return Relation.from_dict(
        {
            "stratum": rng.choice(["a", "b"], size=1000, p=[0.9, 0.1]).tolist(),
            "v": rng.normal(size=1000),
        }
    )


class TestFromPopulation:
    def test_uniform(self, population):
        mech = UniformMechanism(10)
        idx = mech.draw(population, np.random.default_rng(0))
        w = mechanism_weights_from_population(mech, population, idx)
        assert np.allclose(w, 10.0)

    def test_stratified_estimates_population_size(self, population):
        mech = StratifiedMechanism("stratum", 20)
        idx = mech.draw(population, np.random.default_rng(0))
        w = mechanism_weights_from_population(mech, population, idx)
        assert np.sum(w) == pytest.approx(population.num_rows)


class TestDeclaredUniform:
    def test_weights_are_inverse_percent(self):
        rel = Relation.from_dict({"x": [1.0, 2.0, 3.0]})
        sample = SampleRelation("S", rel, "GP", mechanism=UniformMechanism(5))
        w = declared_mechanism_weights(sample)
        assert np.allclose(w, 20.0)

    def test_no_mechanism_raises(self):
        rel = Relation.from_dict({"x": [1.0]})
        sample = SampleRelation("S", rel, "GP")
        with pytest.raises(ReweightError, match="no declared"):
            declared_mechanism_weights(sample)


class TestDeclaredStratified:
    def make_sample(self):
        rel = Relation.from_dict({"stratum": ["a", "a", "b", "b"], "v": [1.0, 2.0, 3.0, 4.0]})
        return SampleRelation(
            "S", rel, "GP", mechanism=StratifiedMechanism("stratum", 40)
        )

    def test_with_marginal(self):
        sample = self.make_sample()
        marginal = Marginal(["stratum"], {("a",): 90, ("b",): 10})
        w = declared_mechanism_weights(sample, [marginal])
        assert w[:2].tolist() == [45.0, 45.0]  # N_a/n_a = 90/2
        assert w[2:].tolist() == [5.0, 5.0]
        assert np.sum(w) == pytest.approx(100.0)

    def test_projects_two_dimensional_marginal(self):
        sample = self.make_sample()
        marginal = Marginal(
            ["stratum", "other"],
            {("a", "x"): 50, ("a", "y"): 40, ("b", "x"): 10},
        )
        w = declared_mechanism_weights(sample, [marginal])
        assert np.sum(w) == pytest.approx(100.0)

    def test_without_marginal_raises(self):
        sample = self.make_sample()
        with pytest.raises(ReweightError, match="needs a 1-D marginal"):
            declared_mechanism_weights(sample, [])

    def test_stratum_missing_from_marginal_raises(self):
        sample = self.make_sample()
        marginal = Marginal(["stratum"], {("a",): 90})
        with pytest.raises(ReweightError, match="missing from the marginal"):
            declared_mechanism_weights(sample, [marginal])
