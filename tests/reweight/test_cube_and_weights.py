"""Unit tests for cube IPF, weight helpers, and raking/cube agreement."""

import numpy as np
import pytest

from repro.catalog.metadata import Marginal
from repro.errors import ReweightError
from repro.relational.relation import Relation
from repro.reweight.contingency import Binner, assign_cells
from repro.reweight.cube import cube_ipf
from repro.reweight.ipf import ipf_reweight
from repro.reweight.weights import (
    normalize_to_total,
    summarize,
    uniform_weights,
    validate_weights,
)


class TestCubeIpf:
    def test_fits_row_and_column_marginals(self):
        m1 = Marginal(["a"], {("x",): 60, ("y",): 40})
        m2 = Marginal(["b"], {("1",): 30, ("2",): 70})
        result = cube_ipf(["a", "b"], [["x", "y"], ["1", "2"]], [m1, m2])
        assert result.converged
        assert result.table.sum() == pytest.approx(100)
        assert result.to_marginal(["a"]).mass(("x",)) == pytest.approx(60)
        assert result.to_marginal(["b"]).mass(("2",)) == pytest.approx(70)

    def test_uniform_seed_gives_independence(self):
        m1 = Marginal(["a"], {("x",): 50, ("y",): 50})
        m2 = Marginal(["b"], {("1",): 20, ("2",): 80})
        result = cube_ipf(["a", "b"], [["x", "y"], ["1", "2"]], [m1, m2])
        # Max-entropy fit of independent marginals is the product measure.
        assert result.mass(("x", "1")) == pytest.approx(10.0)
        assert result.mass(("y", "2")) == pytest.approx(40.0)

    def test_seed_structure_preserved(self):
        m1 = Marginal(["a"], {("x",): 50, ("y",): 50})
        m2 = Marginal(["b"], {("1",): 50, ("2",): 50})
        seed = np.array([[1.0, 0.0], [0.0, 1.0]])  # only diagonal cells allowed
        result = cube_ipf(["a", "b"], [["x", "y"], ["1", "2"]], [m1, m2], seed_table=seed)
        assert result.mass(("x", "2")) == 0.0
        assert result.mass(("x", "1")) == pytest.approx(50.0)

    def test_marginal_attribute_order_independent(self):
        # Marginal declared as (b, a) while the cube stores (a, b).
        m = Marginal(
            ["b", "a"], {("1", "x"): 10, ("2", "x"): 20, ("1", "y"): 30, ("2", "y"): 40}
        )
        result = cube_ipf(["a", "b"], [["x", "y"], ["1", "2"]], [m])
        assert result.mass(("x", "2")) == pytest.approx(20.0)
        assert result.mass(("y", "1")) == pytest.approx(30.0)

    def test_out_of_domain_cell_raises(self):
        m = Marginal(["a"], {("zz",): 1})
        with pytest.raises(ReweightError, match="outside the declared domain"):
            cube_ipf(["a"], [["x", "y"]], [m])

    def test_three_dimensional_cube(self):
        m1 = Marginal(["a"], {("x",): 50, ("y",): 50})
        m2 = Marginal(["b", "c"], {("1", "p"): 30, ("1", "q"): 20, ("2", "p"): 40, ("2", "q"): 10})
        result = cube_ipf(
            ["a", "b", "c"], [["x", "y"], ["1", "2"], ["p", "q"]], [m1, m2]
        )
        assert result.converged
        assert result.to_marginal(["b", "c"]).mass(("2", "p")) == pytest.approx(40)


class TestRakingMatchesCube:
    def test_agreement_on_occupied_cells(self):
        """Tuple raking == cube IPF seeded with the sample's contingency counts."""
        rng = np.random.default_rng(3)
        n = 400
        a = rng.choice(["x", "y", "z"], size=n, p=[0.6, 0.3, 0.1])
        b = rng.choice(["1", "2"], size=n, p=[0.8, 0.2])
        rel = Relation.from_dict({"a": a.tolist(), "b": b.tolist()})
        m1 = Marginal(["a"], {("x",): 100, ("y",): 250, ("z",): 650})
        m2 = Marginal(["b"], {("1",): 300, ("2",): 700})

        raked = ipf_reweight(rel, [m1, m2], tolerance=1e-12)

        domains = [["x", "y", "z"], ["1", "2"]]
        seed = np.zeros((3, 2))
        for i in range(n):
            seed[domains[0].index(a[i]), domains[1].index(b[i])] += 1
        cube = cube_ipf(["a", "b"], domains, [m1, m2], seed_table=seed, tolerance=1e-12)

        fitted = Marginal.from_data(rel, ["a", "b"], weights=raked.weights)
        for key, mass in fitted.cells():
            assert mass == pytest.approx(cube.mass(key), rel=1e-6)


class TestWeightHelpers:
    def test_summarize_uniform(self):
        s = summarize(np.ones(10))
        assert s.total == 10
        assert s.effective_sample_size == pytest.approx(10)
        assert s.degeneracy == pytest.approx(0.0)
        assert s.zero_fraction == 0.0

    def test_summarize_degenerate(self):
        s = summarize(np.array([10.0, 0.0, 0.0, 0.0]))
        assert s.effective_sample_size == pytest.approx(1.0)
        assert s.degeneracy == pytest.approx(0.75)
        assert s.zero_fraction == 0.75

    def test_summarize_empty(self):
        s = summarize(np.array([]))
        assert s.total == 0.0

    def test_normalize_to_total(self):
        out = normalize_to_total(np.array([1.0, 3.0]), 8.0)
        assert out.tolist() == [2.0, 6.0]

    def test_normalize_zero_total_raises(self):
        with pytest.raises(ReweightError):
            normalize_to_total(np.zeros(3), 5.0)

    def test_uniform_weights(self):
        out = uniform_weights(4, 100.0)
        assert out.tolist() == [25.0] * 4

    def test_uniform_weights_zero_rows_raises(self):
        with pytest.raises(ReweightError):
            uniform_weights(0, 10.0)

    def test_validate_rejects_nan_and_negative(self):
        with pytest.raises(ReweightError):
            validate_weights(np.array([np.nan]))
        with pytest.raises(ReweightError):
            validate_weights(np.array([-0.1]))


class TestCellAssignment:
    def test_assignment_and_masses(self):
        rel = Relation.from_dict({"c": ["UK", "FR", "UK", "XX"]})
        marginal = Marginal(["c"], {("UK",): 10, ("FR",): 5, ("DE",): 2})
        assignment = assign_cells(rel, marginal)
        achieved = assignment.achieved_mass(np.ones(4))
        by_key = dict(zip(assignment.cell_keys, achieved))
        assert by_key[("UK",)] == 2
        assert by_key[("FR",)] == 1
        assert by_key[("XX",)] == 1  # sample-only cell, target mass 0
        assert by_key[("DE",)] == 0
        assert assignment.unreachable_mass() == 2.0  # DE mass unreachable


class TestBinner:
    def test_fit_and_assign(self):
        values = np.array([0.0, 2.5, 5.0, 9.9, 10.0])
        binner = Binner.fit(values, bins=5)
        labels = binner.assign(values)
        assert labels.tolist() == [0, 1, 2, 4, 4]

    def test_out_of_range_clamped(self):
        binner = Binner(0.0, 10.0, 5)
        assert binner.assign(np.array([-5.0, 15.0])).tolist() == [0, 4]

    def test_midpoints(self):
        binner = Binner(0.0, 10.0, 5)
        assert binner.midpoints().tolist() == [1.0, 3.0, 5.0, 7.0, 9.0]

    def test_constant_values(self):
        binner = Binner.fit(np.array([3.0, 3.0]), bins=4)
        assert binner.assign(np.array([3.0])).tolist() == [0]

    def test_invalid_construction(self):
        with pytest.raises(ReweightError):
            Binner(0.0, 0.0, 5)
        with pytest.raises(ReweightError):
            Binner(0.0, 1.0, 0)
