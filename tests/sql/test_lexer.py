"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def types(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        tokens = tokenize("EuropeMigrants yahoo_count")
        assert [t.value for t in tokens[:-1]] == ["EuropeMigrants", "yahoo_count"]
        assert all(t.type is TokenType.IDENT for t in tokens[:-1])

    def test_eof_always_present(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("SELECT")[-1].type is TokenType.EOF

    def test_punctuation(self):
        assert types("( ) , ; *")[:-1] == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.SEMICOLON,
            TokenType.STAR,
        ]


class TestNumbers:
    def test_integer(self):
        assert values("42") == ["42"]

    def test_float(self):
        assert values("3.14") == ["3.14"]

    def test_leading_dot(self):
        assert values(".5") == [".5"]

    def test_scientific(self):
        assert values("1e-7 2E+3 5e2") == ["1e-7", "2E+3", "5e2"]

    def test_number_then_ident(self):
        tokens = tokenize("10 PERCENT")
        assert tokens[0].type is TokenType.NUMBER
        assert tokens[1].value == "PERCENT"


class TestStrings:
    def test_simple(self):
        tokens = tokenize("'WN'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "WN"

    def test_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_raises(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'oops")


class TestOperators:
    def test_all_comparison_ops(self):
        assert values("= != <> < <= > >=") == ["=", "!=", "<>", "<", "<=", ">", ">="]

    def test_arithmetic(self):
        assert values("+ - / %") == ["+", "-", "/", "%"]

    def test_bang_alone_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("!")


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- this is a comment\n x")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "x"]

    def test_positions(self):
        tokens = tokenize("SELECT\n  x")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("SELECT @")


class TestPaperQueries:
    def test_semi_open_lexes_as_three_tokens(self):
        tokens = tokenize("SELECT SEMI-OPEN country")
        assert [t.value for t in tokens[:5]] == ["SELECT", "SEMI", "-", "OPEN", "country"]

    def test_full_create_sample(self):
        text = (
            "CREATE SAMPLE YahooMigrants AS (SELECT * FROM EuropeMigrants "
            "WHERE email = Yahoo)"
        )
        tokens = tokenize(text)
        assert tokens[0].value == "CREATE"
        assert tokens[-1].type is TokenType.EOF
