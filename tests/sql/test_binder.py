"""Unit tests for bind-time name resolution (barewords vs columns)."""

import pytest

from repro.errors import SqlCompileError
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sql.ast_nodes import Identifier
from repro.sql.binder import bind_expression, require_column, resolve_column_name
from repro.sql.parser import parse_statement


@pytest.fixture
def schema():
    return Schema.of(email=DType.TEXT, country=DType.TEXT, age=DType.INT)


class TestBindIdentifier:
    def test_column_resolves(self, schema):
        out = bind_expression(Identifier("email"), schema)
        assert out == ColumnRef("email")

    def test_case_insensitive_fallback(self, schema):
        out = bind_expression(Identifier("EMAIL"), schema)
        assert out == ColumnRef("email")

    def test_bareword_becomes_literal(self, schema):
        out = bind_expression(Identifier("Yahoo"), schema)
        assert out == Literal("Yahoo")

    def test_bareword_disallowed_raises(self, schema):
        with pytest.raises(SqlCompileError, match="unknown column"):
            bind_expression(Identifier("Yahoo"), schema, allow_barewords=False)


class TestBindTrees:
    def test_paper_where_clause(self, schema):
        where = parse_statement("SELECT * FROM P WHERE email = Yahoo").where
        bound = bind_expression(where, schema)
        rel = Relation.from_columns(
            schema,
            {"email": ["Yahoo", "AOL"], "country": ["UK", "FR"], "age": [30, 40]},
        )
        assert bound.evaluate(rel).tolist() == [True, False]

    def test_nested_logic(self, schema):
        where = parse_statement(
            "SELECT * FROM P WHERE (email = Yahoo OR email = 'AOL') AND age > 35"
        ).where
        bound = bind_expression(where, schema)
        rel = Relation.from_columns(
            schema,
            {"email": ["Yahoo", "AOL"], "country": ["UK", "FR"], "age": [30, 40]},
        )
        assert bound.evaluate(rel).tolist() == [False, True]

    def test_in_and_between(self, schema):
        where = parse_statement(
            "SELECT * FROM P WHERE country IN ('UK', 'FR') AND age BETWEEN 25 AND 35"
        ).where
        bound = bind_expression(where, schema)
        rel = Relation.from_columns(
            schema,
            {"email": ["a", "b", "c"], "country": ["UK", "FR", "DE"], "age": [30, 40, 30]},
        )
        assert bound.evaluate(rel).tolist() == [True, False, False]

    def test_binding_is_idempotent(self, schema):
        where = parse_statement("SELECT * FROM P WHERE email = Yahoo").where
        once = bind_expression(where, schema)
        twice = bind_expression(once, schema)
        assert once.to_sql() == twice.to_sql()

    def test_arithmetic_binding(self, schema):
        expr = parse_statement("SELECT age * 2 + 1 FROM P").items[0].expr
        bound = bind_expression(expr, schema)
        rel = Relation.from_columns(
            schema, {"email": ["x"], "country": ["UK"], "age": [10]}
        )
        assert bound.evaluate(rel).tolist() == [21]


class TestHelpers:
    def test_resolve_exact(self, schema):
        assert resolve_column_name("age", schema) == "age"

    def test_resolve_case_insensitive(self, schema):
        assert resolve_column_name("Age", schema) == "age"

    def test_resolve_missing_is_none(self, schema):
        assert resolve_column_name("zzz", schema) is None

    def test_require_column_raises(self, schema):
        with pytest.raises(SqlCompileError):
            require_column("zzz", schema)

    def test_unbound_identifier_refuses_evaluation(self, schema):
        rel = Relation.from_columns(
            schema, {"email": ["x"], "country": ["UK"], "age": [1]}
        )
        with pytest.raises(SqlCompileError, match="unbound identifier"):
            Identifier("Yahoo").evaluate(rel)
