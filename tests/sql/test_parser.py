"""Unit tests for the SQL parser, including every statement from the paper."""

import pytest

from repro.core.visibility import Visibility
from repro.errors import SqlSyntaxError
from repro.relational.dtypes import DType
from repro.relational.expressions import Arithmetic, Literal, Negate
from repro.relational.predicates import And, Between, Comparison, InList, Like, Not, Or
from repro.sql.ast_nodes import (
    CreateMetadata,
    CreatePopulation,
    CreateSample,
    CreateTable,
    Drop,
    Identifier,
    Insert,
    SelectQuery,
    UpdateWeights,
)
from repro.sql.parser import parse_script, parse_statement


class TestSelect:
    def test_minimal(self):
        q = parse_statement("SELECT * FROM t")
        assert isinstance(q, SelectQuery)
        assert q.table == "t"
        assert q.items[0].is_star
        assert q.visibility is None

    def test_visibility_closed(self):
        q = parse_statement("SELECT CLOSED * FROM t")
        assert q.visibility is Visibility.CLOSED

    def test_visibility_semi_open_hyphenated(self):
        q = parse_statement("SELECT SEMI-OPEN country, COUNT(*) FROM P GROUP BY country")
        assert q.visibility is Visibility.SEMI_OPEN
        assert q.group_by == ("country",)

    def test_visibility_semi_open_underscore(self):
        q = parse_statement("SELECT SEMI_OPEN * FROM P")
        assert q.visibility is Visibility.SEMI_OPEN

    def test_visibility_open(self):
        q = parse_statement("SELECT OPEN country, email, COUNT(*) FROM P GROUP BY country, email")
        assert q.visibility is Visibility.OPEN
        assert q.group_by == ("country", "email")

    def test_aggregates(self):
        q = parse_statement("SELECT COUNT(*), AVG(x), SUM(x + 1) FROM t")
        assert q.items[0].func == "COUNT" and q.items[0].expr is None
        assert q.items[1].func == "AVG"
        assert isinstance(q.items[2].expr, Arithmetic)

    def test_aliases(self):
        q = parse_statement("SELECT COUNT(*) AS n, x total FROM t")
        assert q.items[0].alias == "n"
        assert q.items[1].alias == "total"

    def test_order_by_and_limit(self):
        q = parse_statement("SELECT * FROM t ORDER BY a DESC, b LIMIT 5")
        assert q.order_by[0].column == "a" and not q.order_by[0].ascending
        assert q.order_by[1].column == "b" and q.order_by[1].ascending
        assert q.limit == 5

    def test_distinct(self):
        q = parse_statement("SELECT DISTINCT tag FROM t")
        assert q.distinct

    def test_missing_from_raises(self):
        with pytest.raises(SqlSyntaxError, match="FROM"):
            parse_statement("SELECT *")


class TestExpressions:
    def where(self, text):
        return parse_statement(f"SELECT * FROM t WHERE {text}").where

    def test_comparison(self):
        expr = self.where("E > 200")
        assert isinstance(expr, Comparison)
        assert expr.op == ">"

    def test_precedence_and_or(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.right, And)

    def test_not(self):
        expr = self.where("NOT a = 1")
        assert isinstance(expr, Not)

    def test_in_list_strings(self):
        expr = self.where("C IN ('WN', 'AA')")
        assert isinstance(expr, InList)
        assert expr.values == ("WN", "AA")

    def test_in_list_barewords(self):
        expr = self.where("C IN (WN, AA)")
        assert expr.values == ("WN", "AA")

    def test_not_in(self):
        expr = self.where("C NOT IN (1, 2)")
        assert isinstance(expr, InList)
        assert expr.negated

    def test_between(self):
        expr = self.where("x BETWEEN 1 AND 10")
        assert isinstance(expr, Between)

    def test_not_between(self):
        expr = self.where("x NOT BETWEEN 1 AND 10")
        assert expr.negated

    def test_between_binds_tighter_than_and(self):
        expr = self.where("x BETWEEN 1 AND 10 AND y = 2")
        assert isinstance(expr, And)
        assert isinstance(expr.left, Between)

    def test_arithmetic_precedence(self):
        expr = parse_statement("SELECT a + b * 2 FROM t").items[0].expr
        assert isinstance(expr, Arithmetic) and expr.op == "+"
        assert isinstance(expr.right, Arithmetic) and expr.right.op == "*"

    def test_parens_override(self):
        expr = parse_statement("SELECT (a + b) * 2 FROM t").items[0].expr
        assert expr.op == "*"

    def test_unary_minus(self):
        expr = parse_statement("SELECT -x FROM t").items[0].expr
        assert isinstance(expr, Negate)

    def test_scientific_literal(self):
        expr = self.where("lam = 1e-7")
        assert isinstance(expr.right, Literal)
        assert expr.right.value == pytest.approx(1e-7)

    def test_bareword_comparison(self):
        expr = self.where("email = Yahoo")
        assert isinstance(expr.right, Identifier)
        assert expr.right.name == "Yahoo"


class TestCreateTable:
    def test_with_columns(self):
        stmt = parse_statement("CREATE TABLE t (a INT, b FLOAT, c TEXT)")
        assert isinstance(stmt, CreateTable)
        assert [c.dtype for c in stmt.columns] == [DType.INT, DType.FLOAT, DType.TEXT]
        assert not stmt.temporary

    def test_temporary(self):
        stmt = parse_statement("CREATE TEMPORARY TABLE Eurostat")
        assert stmt.temporary
        assert stmt.columns == ()

    def test_bad_type(self):
        with pytest.raises(Exception, match="unknown column type"):
            parse_statement("CREATE TABLE t (a BLOB)")


class TestInsert:
    def test_multi_row(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a', 2.5), (-2, 'b', 0.5)")
        assert isinstance(stmt, Insert)
        assert stmt.rows == ((1, "a", 2.5), (-2, "b", 0.5))

    def test_booleans(self):
        stmt = parse_statement("INSERT INTO t VALUES (TRUE, FALSE)")
        assert stmt.rows == ((True, False),)

    def test_bad_literal(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("INSERT INTO t VALUES (x)")


class TestCreatePopulation:
    def test_global_bare(self):
        stmt = parse_statement("CREATE GLOBAL POPULATION EuropeMigrants")
        assert isinstance(stmt, CreatePopulation)
        assert stmt.is_global
        assert stmt.source is None

    def test_with_columns(self):
        stmt = parse_statement("CREATE GLOBAL POPULATION P (a INT, b TEXT)")
        assert len(stmt.columns) == 2

    def test_derived_population(self):
        stmt = parse_statement(
            "CREATE POPULATION UkMigrants AS (SELECT * FROM EuropeMigrants WHERE country = 'UK')"
        )
        assert not stmt.is_global
        assert stmt.source.table == "EuropeMigrants"


class TestCreateSample:
    def test_paper_example(self):
        stmt = parse_statement(
            "CREATE SAMPLE YahooMigrants AS "
            "(SELECT * FROM EuropeMigrants WHERE email = Yahoo)"
        )
        assert isinstance(stmt, CreateSample)
        assert stmt.source.table == "EuropeMigrants"
        assert stmt.mechanism is None

    def test_uniform_mechanism(self):
        stmt = parse_statement(
            "CREATE SAMPLE S AS (SELECT * FROM P USING MECHANISM UNIFORM PERCENT 10)"
        )
        assert stmt.mechanism.kind == "UNIFORM"
        assert stmt.mechanism.percent == 10.0

    def test_stratified_mechanism(self):
        stmt = parse_statement(
            "CREATE SAMPLE S AS "
            "(SELECT * FROM P WHERE x > 0 USING MECHANISM STRATIFIED ON A1 PERCENT 20)"
        )
        assert stmt.mechanism.kind == "STRATIFIED"
        assert stmt.mechanism.stratify_on == "A1"
        assert stmt.mechanism.percent == 20.0
        assert stmt.source.where is not None


class TestCreateMetadata:
    def test_projection_form(self):
        stmt = parse_statement(
            "CREATE METADATA EuropeMigrants_M1 AS "
            "(SELECT country, reported_count FROM Eurostat)"
        )
        assert isinstance(stmt, CreateMetadata)
        assert stmt.name == "EuropeMigrants_M1"
        assert stmt.for_population is None

    def test_group_by_form(self):
        stmt = parse_statement(
            "CREATE METADATA M FOR Pop AS "
            "(SELECT a, b, COUNT(*) FROM aux GROUP BY a, b)"
        )
        assert stmt.for_population == "Pop"
        assert stmt.query.group_by == ("a", "b")


class TestUpdateAndDrop:
    def test_update_weights(self):
        stmt = parse_statement("UPDATE SAMPLE S SET WEIGHT = weight * 2 WHERE x > 0")
        assert isinstance(stmt, UpdateWeights)
        assert stmt.sample == "S"
        assert stmt.where is not None

    def test_drop(self):
        stmt = parse_statement("DROP SAMPLE S")
        assert stmt == Drop(kind="SAMPLE", name="S")

    def test_drop_bad_kind(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("DROP INDEX i")


class TestScripts:
    def test_motivating_example_script(self):
        script = """
        CREATE TEMPORARY TABLE Eurostat (country TEXT, email TEXT, reported_count INT);
        CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);
        CREATE METADATA EuropeMigrants_M1 AS
          (SELECT country, reported_count FROM Eurostat);
        CREATE METADATA EuropeMigrants_M2 AS
          (SELECT email, reported_count FROM Eurostat);
        CREATE SAMPLE YahooMigrants AS
          (SELECT * FROM EuropeMigrants WHERE email = Yahoo);
        SELECT SEMI-OPEN country, email, COUNT(*)
          FROM EuropeMigrants GROUP BY country, email;
        SELECT OPEN country, email, COUNT(*)
          FROM EuropeMigrants GROUP BY country, email;
        """
        statements = parse_script(script)
        assert len(statements) == 7
        assert statements[-2].visibility is Visibility.SEMI_OPEN
        assert statements[-1].visibility is Visibility.OPEN

    def test_paper_table2_queries_parse(self):
        queries = [
            "SELECT AVG(D) FROM F WHERE E > 200",
            "SELECT AVG(I) FROM F WHERE E < 200",
            "SELECT AVG(E) FROM F WHERE D > 1000",
            "SELECT AVG(O) FROM F WHERE D < 1000",
            "SELECT C, AVG(D) FROM F WHERE E > 200 AND C IN ('WN', 'AA') GROUP BY C",
            "SELECT C, AVG(I) FROM F WHERE E < 200 AND C IN ('WN', 'AA') GROUP BY C",
            "SELECT C, AVG(E) FROM F WHERE D > 1000 AND C IN ('WN', 'AA') GROUP BY C",
            "SELECT C, AVG(O) FROM F WHERE D < 1000 AND C IN ('US', 'F9') GROUP BY C",
        ]
        for text in queries:
            query = parse_statement(text)
            assert isinstance(query, SelectQuery)

    def test_like_parses(self):
        query = parse_statement("SELECT * FROM t WHERE name LIKE 'A%'")
        assert isinstance(query.where, Like)
        assert query.where.pattern == "A%"
        assert not query.where.negated

    def test_not_like_parses(self):
        query = parse_statement("SELECT * FROM t WHERE name NOT LIKE '_b%' AND x = 1")
        like = query.where.left
        assert isinstance(like, Like)
        assert like.pattern == "_b%"
        assert like.negated

    def test_like_requires_string_pattern(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT * FROM t WHERE name LIKE 42")

    def test_empty_script(self):
        assert parse_script("  -- nothing here\n") == []

    def test_trailing_garbage_raises(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT * FROM t garbage extra ,")
