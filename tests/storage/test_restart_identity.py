"""Bit-identity across checkpoint → restart, and zero-copy worker scans.

The acceptance bar for durable storage: a restarted engine answers every
visibility *bit-identically* to the pre-restart engine — CLOSED and
SEMI-OPEN because the mapped pages are byte-identical to the original
arrays, OPEN additionally because session RNG streams are derived from
the engine seed and the (matched) session spawn index, never from
storage.  And the morsel worker pool must scan restored relations through
the page file itself (``segment_mmap_leases``), not via a /dev/shm copy.
"""

import numpy as np

from repro import MosaicDB
from repro.core.session import SessionConfig
from repro.core.workers import ExecutionConfig
from repro.workloads.flights import (
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_biased_flights_sample,
    make_flights_population,
)

CONFIG = FlightsConfig(rows=6_000)

QUERIES = (
    "SELECT CLOSED carrier, COUNT(*) FROM Flights GROUP BY carrier",
    "SELECT CLOSED AVG(distance) FROM FlightsSample",
    "SELECT SEMI-OPEN carrier, COUNT(*) FROM Flights GROUP BY carrier",
    "SELECT SEMI-OPEN AVG(elapsed_time) FROM Flights",
    "SELECT OPEN COUNT(*) FROM Flights WHERE elapsed_time <= 200",
    "SELECT OPEN carrier, COUNT(*) FROM Flights GROUP BY carrier",
)


def build_flights(data_dir, execution=None) -> MosaicDB:
    db = MosaicDB(seed=23, data_dir=str(data_dir), execution=execution)
    db.execute(
        "CREATE GLOBAL POPULATION Flights (carrier TEXT, taxi_out INT, "
        "taxi_in INT, elapsed_time INT, distance INT)"
    )
    rng = np.random.default_rng(101)
    population = make_flights_population(CONFIG, rng)
    sample, mechanism, _ = make_biased_flights_sample(population, CONFIG, rng)
    db.execute("CREATE SAMPLE FlightsSample AS (SELECT * FROM Flights)")
    # The marginals are bucketed; the ingested sample must match or IPF
    # sees zero-mass cells (same convention as experiments/random_queries).
    db.ingest_relation("FlightsSample", bucket_flights(sample, CONFIG))
    for marginal in flights_marginals(population, CONFIG):
        db.register_marginal(marginal.name, "Flights", marginal)
    return db


def run_queries(db) -> list[dict[str, np.ndarray]]:
    out = []
    for sql in QUERIES:
        relation = db.execute(sql).relation
        out.append({name: relation.column(name) for name in relation.column_names})
    return out


def assert_identical(first, second):
    for sql, a, b in zip(QUERIES, first, second):
        assert list(a) == list(b), sql
        for name in a:
            np.testing.assert_array_equal(a[name], b[name], err_msg=sql)


def test_all_three_visibilities_bit_identical_across_restart(tmp_path):
    db = build_flights(tmp_path)
    before = run_queries(db)
    db.close()

    db2 = MosaicDB(seed=23, data_dir=str(tmp_path))
    assert db2.cache_stats()["storage"]["restored_models"] >= 1
    assert_identical(before, run_queries(db2))
    db2.close()


def test_spawned_sessions_match_across_restart(tmp_path):
    # The fleet pins logical clients to spawn indices; a restarted shard
    # must replay the same per-index RNG streams (pool_size=1 → index 0).
    db = build_flights(tmp_path)
    session = db.engine.connect(SessionConfig(), spawn_index=0)
    before = session.execute(QUERIES[4]).relation.column("COUNT(*)")
    session.close()
    db.close()

    db2 = MosaicDB(seed=23, data_dir=str(tmp_path))
    session = db2.engine.connect(SessionConfig(), spawn_index=0)
    after = session.execute(QUERIES[4]).relation.column("COUNT(*)")
    session.close()
    np.testing.assert_array_equal(before, after)
    db2.close()


def test_workers_scan_restored_pages_zero_copy(tmp_path):
    # morsel_rows far below the sample size forces the morsel path; one
    # worker process exercises the cross-process file attach.  Both runs
    # use the same execution config: partial-aggregation order must match
    # for float results to be bit-identical.
    config = ExecutionConfig(processes=1, morsel_rows=64)
    db = build_flights(tmp_path, execution=config)
    reference = run_queries(db)
    db.close()

    db2 = MosaicDB(seed=23, data_dir=str(tmp_path), execution=config)
    try:
        assert_identical(reference, run_queries(db2))
        execution = db2.cache_stats()["execution"]
        # CLOSED scans over the restored (mmap-backed) sample went through
        # the page file directly — never copied into /dev/shm.
        assert execution["segment_mmap_leases"] > 0
    finally:
        db2.close()
