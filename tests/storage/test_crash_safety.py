"""Crash safety: SIGKILL mid-checkpoint and torn WAL tails.

The contract these tests pin (ARCHITECTURE.md §10): after *any* crash —
including one that lands exactly between a checkpoint's temp-directory
write and its rename — recovery reaches the last committed state, where
"committed" means every mutation whose WAL append returned.  Results after
recovery are bit-identical to an uncrashed engine holding the same state.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro import MosaicDB

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Runs in a subprocess: builds a catalog, checkpoints, mutates (WAL-only),
#: then starts a second checkpoint that a crash-test hook holds open long
#: enough for the parent to SIGKILL the process mid-write.
CHILD = textwrap.dedent(
    """
    import os
    import sys
    from repro import MosaicDB

    data_dir = sys.argv[1]
    db = MosaicDB(seed=11, data_dir=data_dir)
    db.execute("CREATE TABLE t (city TEXT, n INT)")
    db.execute("INSERT INTO t VALUES ('AA', 1), ('BB', 2)")
    db.commit()                                   # checkpoint ck-000001
    db.execute("INSERT INTO t VALUES ('CC', 3)")  # WAL only
    os.environ["MOSAIC_TEST_CHECKPOINT_DELAY"] = "30"
    print("CHECKPOINT-START", flush=True)
    db.commit()                                   # held open by the delay hook
    print("CHECKPOINT-DONE", flush=True)
    """
)


def expected_rows():
    return [("AA", 1), ("BB", 2), ("CC", 3)]


def rows_of(result):
    rel = result.relation
    columns = [rel.column(name) for name in rel.column_names]
    return [tuple(col[i] for col in columns) for i in range(rel.num_rows)]


def run_child_and_kill_mid_checkpoint(data_dir: str) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-c", CHILD, data_dir],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        assert process.stdout is not None
        line = process.stdout.readline().strip()
        assert line == "CHECKPOINT-START", line
        # The checkpoint's temp directory is being written (or sitting in
        # the delay window before its rename).  Give the writes a moment to
        # hit disk, then kill without any chance to clean up.
        deadline = time.time() + 10
        while time.time() < deadline:
            if any(
                name.endswith(".tmp") for name in os.listdir(data_dir)
            ):
                break
            time.sleep(0.02)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
    finally:
        if process.poll() is None:  # pragma: no cover - defensive
            process.kill()
            process.wait(timeout=30)
    assert process.returncode == -signal.SIGKILL


def test_sigkill_mid_checkpoint_recovers_last_committed_state(tmp_path):
    run_child_and_kill_mid_checkpoint(str(tmp_path))
    # The half-written checkpoint must be visible as debris right now...
    assert any(name.endswith(".tmp") for name in os.listdir(tmp_path))

    db = MosaicDB(seed=11, data_dir=str(tmp_path))
    # ...swept on boot, with CURRENT still on the committed checkpoint.
    assert not any(name.endswith(".tmp") for name in os.listdir(tmp_path))
    storage = db.cache_stats()["storage"]
    assert storage["checkpoint"].startswith("ck-")
    assert storage["wal_replayed"] >= 1  # the CC row came back via replay
    assert sorted(rows_of(db.execute("SELECT city, n FROM t"))) == expected_rows()
    db.close()

    # And the state stays stable across a further clean restart.
    db2 = MosaicDB(seed=11, data_dir=str(tmp_path))
    assert sorted(rows_of(db2.execute("SELECT city, n FROM t"))) == expected_rows()
    db2.close()


def test_torn_wal_tail_recovers_committed_prefix(tmp_path):
    db = MosaicDB(seed=5, data_dir=str(tmp_path))
    db.execute("CREATE TABLE t (x INT)")
    db.execute("INSERT INTO t VALUES (1)")
    db.execute("INSERT INTO t VALUES (2)")
    db.engine._durable.close()  # crash: no final checkpoint
    db.close()

    wal = tmp_path / "wal.log"
    # Tear the last frame mid-payload, as a crash mid-append would.
    data = wal.read_bytes()
    wal.write_bytes(data[: len(data) - 5])

    db2 = MosaicDB(seed=5, data_dir=str(tmp_path))
    storage = db2.cache_stats()["storage"]
    assert storage["torn_wal_bytes"] > 0
    # The torn record (INSERT 2) is gone; the committed prefix survives.
    assert rows_of(db2.execute("SELECT x FROM t")) == [(1,)]
    db2.close()


def test_garbage_appended_to_wal_is_dropped(tmp_path):
    db = MosaicDB(seed=5, data_dir=str(tmp_path))
    db.execute("CREATE TABLE t (x INT)")
    db.execute("INSERT INTO t VALUES (7)")
    db.engine._durable.close()
    db.close()

    with open(tmp_path / "wal.log", "ab") as handle:
        handle.write(os.urandom(37))

    db2 = MosaicDB(seed=5, data_dir=str(tmp_path))
    assert db2.cache_stats()["storage"]["torn_wal_bytes"] > 0
    assert rows_of(db2.execute("SELECT x FROM t")) == [(7,)]
    # Recovery truncated the garbage: appends land on a frame boundary.
    db2.execute("INSERT INTO t VALUES (8)")
    db2.engine._durable.close()
    db2.close()

    db3 = MosaicDB(seed=5, data_dir=str(tmp_path))
    assert rows_of(db3.execute("SELECT x FROM t")) == [(7,), (8,)]
    db3.close()
