"""The write-ahead log: framing, torn tails, CRCs, LSN monotonicity."""

import struct

import pytest

from repro.storage.wal import WalError, WriteAheadLog


def test_append_and_reopen_round_trip(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    assert wal.open() == []
    payloads = [b"alpha", b"", b"x" * 1000]
    lsns = [wal.append(p) for p in payloads]
    assert lsns == [1, 2, 3]
    wal.close()

    wal2 = WriteAheadLog(path)
    assert wal2.open() == list(zip(lsns, payloads))
    assert wal2.next_lsn == 4
    wal2.close()


def test_torn_tail_truncated_and_appendable(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.open()
    wal.append(b"committed-1")
    wal.append(b"committed-2")
    wal.close()
    good_size = path.stat().st_size

    # A crash mid-append leaves a partial frame at the tail.
    with open(path, "ab") as handle:
        handle.write(struct.pack("<IIQ", 500, 0, 3) + b"only-part-of-it")

    wal2 = WriteAheadLog(path)
    records = wal2.open()
    assert [payload for _, payload in records] == [b"committed-1", b"committed-2"]
    assert wal2.torn_bytes_dropped > 0
    assert path.stat().st_size == good_size  # tail physically truncated
    assert wal2.append(b"after-recovery") == 3
    wal2.close()


def test_corrupt_crc_stops_replay_at_last_good_frame(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.open()
    wal.append(b"first")
    second_start = path.stat().st_size
    wal.append(b"second")
    wal.close()

    data = bytearray(path.read_bytes())
    data[second_start + 16] ^= 0xFF  # flip a payload byte of frame 2
    path.write_bytes(bytes(data))

    wal2 = WriteAheadLog(path)
    records = wal2.open()
    assert [payload for _, payload in records] == [b"first"]
    assert wal2.torn_bytes_dropped > 0
    wal2.close()


def test_truncate_preserves_lsn_counter(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.open()
    wal.append(b"a")
    wal.append(b"b")
    wal.truncate()
    assert wal.size() == 0
    assert wal.append(b"c") == 3  # monotonic across truncation
    wal.close()


def test_set_next_lsn_never_moves_backwards(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.open()
    wal.set_next_lsn(10)
    assert wal.next_lsn == 10
    wal.set_next_lsn(4)
    assert wal.next_lsn == 10


def test_append_on_closed_log_raises(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    with pytest.raises(WalError):
        wal.append(b"x")
    wal.open()
    wal.close()
    assert wal.closed
    with pytest.raises(WalError):
        wal.append(b"x")
