"""The durable store through the engine: checkpoint, replay, commit/rollback."""

import numpy as np
import pytest

from repro import MosaicDB
from repro.errors import CatalogError, UnknownRelationError

SETUP = """
CREATE GLOBAL POPULATION People (country TEXT, age INT);
CREATE TABLE counts (country TEXT, n INT);
INSERT INTO counts VALUES ('UK', 120), ('FR', 200), ('DE', 150);
CREATE METADATA People_M1 AS (SELECT country, n FROM counts);
CREATE SAMPLE S AS (SELECT * FROM People)
"""

ROWS = [("UK", 30)] * 40 + [("FR", 40)] * 30 + [("DE", 50)] * 30


def rows_of(result):
    rel = result.relation
    columns = [rel.column(name) for name in rel.column_names]
    return [tuple(col[i] for col in columns) for i in range(rel.num_rows)]


def build(data_dir, seed=3):
    db = MosaicDB(seed=seed, data_dir=str(data_dir))
    db.execute_script(SETUP)
    db.ingest_rows("S", ROWS)
    return db


def crash(db):
    """Simulate process death: no final checkpoint, WAL survives as-is."""
    db.engine._durable.close()
    db.close()


def test_clean_shutdown_then_reopen_restores_everything(tmp_path):
    db = build(tmp_path)
    before = rows_of(db.execute("SELECT SEMI-OPEN country, COUNT(*) FROM People GROUP BY country"))
    db.close()  # final checkpoint

    db2 = MosaicDB(seed=3, data_dir=str(tmp_path))
    storage = db2.cache_stats()["storage"]
    assert storage["restored_tables"] == 1
    assert storage["restored_samples"] == 1
    assert storage["wal_replayed"] == 0  # clean shutdown leaves an empty WAL
    assert db2.catalog.sample("S").num_rows == len(ROWS)
    assert db2.catalog.population("People").has_metadata
    after = rows_of(db2.execute("SELECT SEMI-OPEN country, COUNT(*) FROM People GROUP BY country"))
    assert before == after
    db2.close()


def test_wal_replay_without_checkpoint(tmp_path):
    db = build(tmp_path)
    expected = rows_of(db.execute("SELECT CLOSED country, COUNT(*) FROM S GROUP BY country"))
    crash(db)

    db2 = MosaicDB(seed=3, data_dir=str(tmp_path))
    storage = db2.cache_stats()["storage"]
    assert storage["wal_replayed"] > 0
    assert rows_of(db2.execute("SELECT CLOSED country, COUNT(*) FROM S GROUP BY country")) == expected
    db2.close()


def test_replay_covers_insert_update_weights_and_drop(tmp_path):
    db = build(tmp_path)
    db.execute("INSERT INTO S VALUES ('UK', 77)")
    db.execute("UPDATE SAMPLE S SET WEIGHT = 2.5 WHERE country = 'UK'")
    db.execute("CREATE TABLE doomed (x INT)")
    db.execute("DROP TABLE doomed")
    weights = db.catalog.sample("S").weights
    crash(db)

    db2 = MosaicDB(seed=3, data_dir=str(tmp_path))
    sample = db2.catalog.sample("S")
    assert sample.num_rows == len(ROWS) + 1
    np.testing.assert_array_equal(sample.weights, weights)
    with pytest.raises(UnknownRelationError):
        db2.catalog.auxiliary("doomed")
    db2.close()


def test_restart_is_idempotent_across_many_boots(tmp_path):
    db = build(tmp_path)
    expected = rows_of(db.execute("SELECT CLOSED COUNT(*) FROM S"))
    crash(db)
    for _ in range(3):  # replay → checkpoint → restore → ... must be stable
        db = MosaicDB(seed=3, data_dir=str(tmp_path))
        assert rows_of(db.execute("SELECT CLOSED COUNT(*) FROM S")) == expected
        db.close()


def test_model_caches_restore_warm(tmp_path):
    db = build(tmp_path)
    db.execute("SELECT SEMI-OPEN country, COUNT(*) FROM People GROUP BY country")
    db.execute("SELECT OPEN COUNT(*) FROM People")
    db.close()

    db2 = MosaicDB(seed=3, data_dir=str(tmp_path))
    assert db2.cache_stats()["storage"]["restored_models"] == 2
    result = db2.execute("SELECT SEMI-OPEN country, COUNT(*) FROM People GROUP BY country")
    assert any("reweight cache hit" in note for note in result.notes)
    result = db2.execute("SELECT OPEN COUNT(*) FROM People")
    assert any("generator cache hit" in note for note in result.notes)
    stats = db2.cache_stats()
    assert stats["reweights"]["hits"] == 1 and stats["reweights"]["misses"] == 0
    assert stats["generators"]["hits"] == 1 and stats["generators"]["misses"] == 0
    db2.close()


def test_replayed_mutation_invalidates_persisted_models(tmp_path):
    db = build(tmp_path)
    db.execute("SELECT SEMI-OPEN country, COUNT(*) FROM People GROUP BY country")
    db.engine.checkpoint()  # persists the fitted reweight
    db.execute("INSERT INTO S VALUES ('UK', 99)")  # WAL only
    crash(db)

    db2 = MosaicDB(seed=3, data_dir=str(tmp_path))
    storage = db2.cache_stats()["storage"]
    # Replay bumped the sample past the version the model was fitted at.
    assert storage["stale_models_skipped"] >= 1
    assert storage["restored_models"] == 0
    result = db2.execute("SELECT SEMI-OPEN country, COUNT(*) FROM People GROUP BY country")
    assert not any("cache hit" in note for note in result.notes)
    db2.close()


def test_temporary_tables_do_not_survive_restart(tmp_path):
    db = build(tmp_path)
    db.execute("CREATE TEMPORARY TABLE scratch (x INT)")
    db.execute("INSERT INTO scratch VALUES (1), (2)")
    db.close()

    db2 = MosaicDB(seed=3, data_dir=str(tmp_path))
    with pytest.raises(UnknownRelationError):
        db2.catalog.auxiliary("scratch")
    db2.close()


def test_commit_and_rollback(tmp_path):
    db = build(tmp_path)
    db.commit()
    db.execute("CREATE TABLE uncommitted (x INT)")
    db.ingest_rows("S", [("UK", 1)])
    assert db.catalog.sample("S").num_rows == len(ROWS) + 1

    summary = db.rollback()
    assert summary["discarded_wal_bytes"] > 0
    assert db.catalog.sample("S").num_rows == len(ROWS)
    with pytest.raises(UnknownRelationError):
        db.catalog.auxiliary("uncommitted")
    # The store stays writable after a rollback.
    db.execute("CREATE TABLE after_rollback (x INT)")
    db.close()

    db2 = MosaicDB(seed=3, data_dir=str(tmp_path))
    db2.catalog.auxiliary("after_rollback")
    db2.close()


def test_rollback_without_checkpoint_empties_catalog(tmp_path):
    db = build(tmp_path)
    db.rollback()
    assert db.catalog.sample_names == []
    assert db.catalog.auxiliary_names == []
    db.close()


def test_checkpoint_requires_data_dir():
    db = MosaicDB(seed=0)
    with pytest.raises(CatalogError, match="data_dir"):
        db.checkpoint()
    with pytest.raises(CatalogError, match="data_dir"):
        db.rollback()
    db.close()


def test_wal_limit_triggers_auto_checkpoint(tmp_path, monkeypatch):
    monkeypatch.setenv("MOSAIC_WAL_LIMIT_BYTES", "4000")
    db = build(tmp_path)
    for _ in range(4):
        db.ingest_rows("S", ROWS)  # each ingest logs the whole relation
    storage = db.cache_stats()["storage"]
    assert storage["checkpoints_written"] >= 1
    assert storage["wal_bytes"] <= 4000
    db.close()

    db2 = MosaicDB(seed=3, data_dir=str(tmp_path))
    assert db2.catalog.sample("S").num_rows == 5 * len(ROWS)
    db2.close()


def test_old_checkpoints_are_garbage_collected(tmp_path):
    db = build(tmp_path)
    for _ in range(4):
        db.engine.checkpoint()
    names = [p.name for p in tmp_path.iterdir() if p.name.startswith("ck-")]
    # boot state had no checkpoint, so only current + immediately previous
    # survive; nothing unbounded accumulates.
    assert len(names) <= 2
    db.close()


def test_restored_sample_weights_are_adopted_without_copy(tmp_path):
    db = build(tmp_path)
    db.execute("UPDATE SAMPLE S SET WEIGHT = 1.5")
    db.close()

    db2 = MosaicDB(seed=3, data_dir=str(tmp_path))
    sample = db2.catalog.sample("S")
    assert not sample._weights.flags.writeable  # the mmap view itself
    np.testing.assert_array_equal(sample.weights, np.full(len(ROWS), 1.5))
    # Mutators must still work (they replace, never write in place).
    db2.execute("UPDATE SAMPLE S SET WEIGHT = 2.0")
    np.testing.assert_array_equal(sample.weights, np.full(len(ROWS), 2.0))
    db2.close()
