"""The on-disk columnar page format: round-trips, alignment, corruption."""

import os

import numpy as np
import pytest

from repro.relational.dtypes import DType
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.shm import _ALIGNMENT
from repro.storage.pages import (
    MappedRelation,
    PAGE_MAGIC,
    PageFormatError,
    open_page,
    read_descriptor,
    write_page,
)


def sample_relation(rows: int = 100) -> Relation:
    rng = np.random.default_rng(7)
    return Relation.from_columns(
        Schema.of(city=DType.TEXT, pop=DType.INT, area=DType.FLOAT),
        {
            "city": np.asarray(
                [("Ann Arbor", "Boston", "Chicago")[i % 3] for i in range(rows)],
                dtype=object,
            ),
            "pop": rng.integers(0, 10_000, size=rows),
            "area": rng.normal(size=rows),
        },
    )


def test_round_trip_bit_identical(tmp_path):
    relation = sample_relation()
    path = tmp_path / "t.page"
    write_page(path, relation)
    mapped, extras = open_page(path)
    assert extras == {}
    assert isinstance(mapped, MappedRelation)
    assert isinstance(mapped, Relation)
    assert mapped.num_rows == relation.num_rows
    assert mapped.schema == relation.schema
    for name in relation.column_names:
        np.testing.assert_array_equal(mapped.column(name), relation.column(name))


def test_dictionary_encoding_survives(tmp_path):
    relation = sample_relation()
    path = tmp_path / "t.page"
    write_page(path, relation)
    mapped, _ = open_page(path)
    vocab, codes = relation.encoding("city")
    restored_vocab, restored_codes = mapped.encoding("city")
    np.testing.assert_array_equal(vocab, restored_vocab)
    np.testing.assert_array_equal(codes, restored_codes)


def test_extras_round_trip(tmp_path):
    relation = sample_relation()
    weights = np.linspace(0.5, 2.0, relation.num_rows)
    path = tmp_path / "t.page"
    write_page(path, relation, {"__weights__": weights})
    _, extras = open_page(path)
    np.testing.assert_array_equal(extras["__weights__"], weights)
    assert not extras["__weights__"].flags.writeable


def test_slot_offsets_are_aligned(tmp_path):
    path = tmp_path / "t.page"
    write_page(path, sample_relation(), {"w": np.ones(100)})
    descriptor = read_descriptor(path)
    for slot in (*descriptor.columns, *descriptor.extras):
        assert slot.offset % _ALIGNMENT == 0


def test_mapped_views_are_read_only_and_zero_copy(tmp_path):
    path = tmp_path / "t.page"
    write_page(path, sample_relation())
    mapped, _ = open_page(path)
    pops = mapped.column("pop")
    assert not pops.flags.writeable
    assert not pops.flags.owndata  # a view over the mapping, not a copy
    with pytest.raises(ValueError):
        pops[0] = 1


def test_transformations_still_work(tmp_path):
    relation = sample_relation()
    path = tmp_path / "t.page"
    write_page(path, relation)
    mapped, _ = open_page(path)
    filtered = mapped.filter(mapped.column("pop") > 5000)
    expected = relation.filter(relation.column("pop") > 5000)
    assert filtered.num_rows == expected.num_rows
    np.testing.assert_array_equal(filtered.column("city"), expected.column("city"))


def test_atomic_write_replaces_existing(tmp_path):
    path = tmp_path / "t.page"
    write_page(path, sample_relation(10))
    write_page(path, sample_relation(50))
    mapped, _ = open_page(path)
    assert mapped.num_rows == 50
    assert not any(name.startswith("t.page.tmp") for name in os.listdir(tmp_path))


def test_missing_file_raises(tmp_path):
    with pytest.raises(PageFormatError):
        read_descriptor(tmp_path / "nope.page")


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "t.page"
    path.write_bytes(b"NOTAPAGE" + b"\x00" * 64)
    with pytest.raises(PageFormatError, match="bad magic"):
        read_descriptor(path)


def test_truncated_payload_raises(tmp_path):
    path = tmp_path / "t.page"
    write_page(path, sample_relation())
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 64])
    with pytest.raises(PageFormatError, match="claims bytes"):
        read_descriptor(path)


def test_truncated_header_raises(tmp_path):
    path = tmp_path / "t.page"
    write_page(path, sample_relation())
    path.write_bytes(path.read_bytes()[: len(PAGE_MAGIC) + 6])
    with pytest.raises(PageFormatError):
        read_descriptor(path)


def test_extra_validation(tmp_path):
    relation = sample_relation(10)
    with pytest.raises(PageFormatError, match="rows"):
        write_page(tmp_path / "a.page", relation, {"w": np.ones(3)})
    with pytest.raises(PageFormatError, match="numeric"):
        write_page(
            tmp_path / "b.page",
            relation,
            {"w": np.asarray(["x"] * 10, dtype=object)},
        )


def test_window_attach_matches_slice(tmp_path):
    from repro.relational.shm import attach_relation

    relation = sample_relation(100)
    path = tmp_path / "t.page"
    write_page(path, relation)
    descriptor = read_descriptor(path)
    attached = attach_relation(descriptor, window=(25, 75))
    try:
        np.testing.assert_array_equal(
            attached.relation.column("pop"), relation.column("pop")[25:75]
        )
        np.testing.assert_array_equal(
            attached.relation.column("city"), relation.column("city")[25:75]
        )
    finally:
        attached.close()
