"""Unit and statistical tests for the sampling mechanisms."""

import numpy as np
import pytest

from repro.errors import ReweightError
from repro.mechanisms import (
    CustomMechanism,
    PredicateBiasedMechanism,
    StratifiedMechanism,
    UniformMechanism,
)
from repro.mechanisms.base import sample_size, validate_percent
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.predicates import Comparison
from repro.relational.relation import Relation


@pytest.fixture
def population():
    rng = np.random.default_rng(7)
    n = 2000
    return Relation.from_dict(
        {
            "value": rng.normal(size=n),
            "stratum": rng.choice(["a", "b", "c", "rare"], size=n, p=[0.5, 0.3, 0.19, 0.01]),
        }
    )


class TestHelpers:
    def test_validate_percent_bounds(self):
        assert validate_percent(10) == 10.0
        with pytest.raises(ReweightError):
            validate_percent(0)
        with pytest.raises(ReweightError):
            validate_percent(101)

    def test_sample_size(self):
        assert sample_size(1000, 10) == 100
        assert sample_size(10, 1) == 1  # at least one row
        assert sample_size(0, 50) == 0
        assert sample_size(10, 100) == 10


class TestUniform:
    def test_draw_size(self, population):
        mech = UniformMechanism(10)
        idx = mech.draw(population, np.random.default_rng(0))
        assert len(idx) == 200
        assert len(set(idx.tolist())) == 200  # without replacement

    def test_inclusion_probabilities_constant(self, population):
        probs = UniformMechanism(10).inclusion_probabilities(population)
        assert np.allclose(probs, 0.1)

    def test_inverse_probability_weights(self, population):
        mech = UniformMechanism(10)
        idx = mech.draw(population, np.random.default_rng(0))
        weights = mech.inverse_probability_weights(population, idx)
        assert np.allclose(weights, 10.0)
        # Weighted sample size estimates the population size exactly.
        assert np.sum(weights) == pytest.approx(population.num_rows)

    def test_describe(self):
        assert UniformMechanism(10).describe() == "UNIFORM PERCENT 10"


class TestStratified:
    def test_equal_allocation_covers_rare_stratum(self, population):
        mech = StratifiedMechanism("stratum", 10)
        idx = mech.draw(population, np.random.default_rng(1))
        sampled = population.take(idx)
        strata = set(sampled.column("stratum").tolist())
        assert "rare" in strata  # equal allocation guarantees coverage

    def test_total_size_preserved_when_feasible(self, population):
        mech = StratifiedMechanism("stratum", 10)
        idx = mech.draw(population, np.random.default_rng(1))
        assert len(idx) == sample_size(population.num_rows, 10)

    def test_inclusion_probabilities_sum_to_sample_size(self, population):
        mech = StratifiedMechanism("stratum", 10)
        probs = mech.inclusion_probabilities(population)
        assert np.sum(probs) == pytest.approx(sample_size(population.num_rows, 10))

    def test_inverse_weights_recover_stratum_sizes(self, population):
        mech = StratifiedMechanism("stratum", 20)
        rng = np.random.default_rng(2)
        idx = mech.draw(population, rng)
        weights = mech.inverse_probability_weights(population, idx)
        sampled = population.take(idx)
        # Per-stratum weighted counts equal true stratum sizes (exactly,
        # because allocation within a stratum is uniform).
        for stratum in ["a", "b", "c", "rare"]:
            mask = np.asarray(
                [s == stratum for s in sampled.column("stratum")], dtype=bool
            )
            true_count = sum(
                1 for s in population.column("stratum") if s == stratum
            )
            assert np.sum(weights[mask]) == pytest.approx(true_count)

    def test_describe(self):
        assert (
            StratifiedMechanism("A1", 20).describe() == "STRATIFIED ON A1 PERCENT 20"
        )


class TestPredicateBiased:
    def predicate(self):
        return Comparison(">", ColumnRef("value"), Literal(0.5))

    def test_bias_share(self, population):
        mech = PredicateBiasedMechanism(self.predicate(), percent=10, bias=0.95)
        idx = mech.draw(population, np.random.default_rng(3))
        sampled = population.take(idx)
        long_share = np.mean(sampled.column("value") > 0.5)
        assert long_share == pytest.approx(0.95, abs=0.01)

    def test_sample_size(self, population):
        mech = PredicateBiasedMechanism(self.predicate(), percent=10, bias=0.95)
        idx = mech.draw(population, np.random.default_rng(3))
        assert len(idx) == sample_size(population.num_rows, 10)

    def test_inverse_weights_debias_exactly(self, population):
        mech = PredicateBiasedMechanism(self.predicate(), percent=10, bias=0.95)
        idx = mech.draw(population, np.random.default_rng(4))
        weights = mech.inverse_probability_weights(population, idx)
        sampled = population.take(idx)
        matching = np.asarray(sampled.column("value") > 0.5)
        true_matching = int(np.sum(population.column("value") > 0.5))
        assert np.sum(weights[matching]) == pytest.approx(true_matching)
        assert np.sum(weights) == pytest.approx(population.num_rows)

    def test_bias_out_of_range(self, population):
        with pytest.raises(ReweightError):
            PredicateBiasedMechanism(self.predicate(), percent=10, bias=1.5)

    def test_overflow_shifts_to_other_side(self):
        # Only 2 tuples match but bias asks for ~9 of 10: deficit moves over.
        rel = Relation.from_dict({"value": [1.0] * 2 + [0.0] * 98})
        predicate = Comparison(">", ColumnRef("value"), Literal(0.5))
        mech = PredicateBiasedMechanism(predicate, percent=10, bias=0.9)
        idx = mech.draw(rel, np.random.default_rng(5))
        assert len(idx) == 10


class TestCustom:
    def test_probabilities_used(self, population):
        mech = CustomMechanism(lambda rel: np.full(rel.num_rows, 0.05), label="flat5")
        probs = mech.inclusion_probabilities(population)
        assert np.allclose(probs, 0.05)
        idx = mech.draw(population, np.random.default_rng(6))
        # Poisson sampling: E[|S|] = 100, loose bound to avoid flakiness.
        assert 50 <= len(idx) <= 160

    def test_bad_shape_rejected(self, population):
        mech = CustomMechanism(lambda rel: np.ones(3))
        with pytest.raises(ReweightError, match="shape"):
            mech.inclusion_probabilities(population)

    def test_out_of_range_rejected(self, population):
        mech = CustomMechanism(lambda rel: np.full(rel.num_rows, 1.5))
        with pytest.raises(ReweightError, match="0, 1"):
            mech.inclusion_probabilities(population)

    def test_zero_probability_sampled_tuple_raises(self, population):
        mech = CustomMechanism(lambda rel: np.zeros(rel.num_rows))
        with pytest.raises(ReweightError, match="zero inclusion"):
            mech.inverse_probability_weights(population, np.array([0]))
