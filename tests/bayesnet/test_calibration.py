"""Tests for Bayesian-network marginal calibration (tree-structured IPF).

The raked-weights-only fit cannot put mass on attribute values the sample
never contains; calibration rescales the CPTs against the metadata
marginals so the model's implied marginals match the reports.
"""

import numpy as np
import pytest

from repro.bayesnet.model import BayesianNetworkModel
from repro.catalog.metadata import Marginal
from repro.relational.relation import Relation


@pytest.fixture
def yahoo_only_case():
    """The migrants shape: the sample contains a single email provider."""
    rng = np.random.default_rng(0)
    sample = Relation.from_dict(
        {
            "country": rng.choice(["UK", "FR"], size=400, p=[0.8, 0.2]).tolist(),
            "email": ["Yahoo"] * 400,
        }
    )
    marginals = [
        Marginal(["country"], {("UK",): 5000, ("FR",): 5000}),
        Marginal(["email"], {("Yahoo",): 6000, ("AOL",): 3000, ("GMX",): 1000}),
    ]
    return sample, marginals


class TestCalibration:
    def test_unseen_category_receives_mass(self, yahoo_only_case):
        sample, marginals = yahoo_only_case
        model = BayesianNetworkModel(seed=0).fit(sample, marginals)
        aol = model.expected_count({"email": lambda e: e == "AOL"})
        assert aol == pytest.approx(3000, rel=0.02)

    def test_country_marginal_calibrated(self, yahoo_only_case):
        """The sample says 80/20 UK/FR; the metadata says 50/50."""
        sample, marginals = yahoo_only_case
        model = BayesianNetworkModel(seed=0).fit(sample, marginals)
        uk = model.expected_count({"country": lambda c: c == "UK"})
        assert uk == pytest.approx(5000, rel=0.02)

    def test_generation_covers_unseen_values(self, yahoo_only_case):
        sample, marginals = yahoo_only_case
        model = BayesianNetworkModel(seed=0).fit(sample, marginals)
        generated = model.generate(5_000, rng=np.random.default_rng(1))
        emails = set(generated.column("email"))
        assert {"Yahoo", "AOL", "GMX"} <= emails

    def test_two_dimensional_marginal_projections_used(self):
        rng = np.random.default_rng(1)
        sample = Relation.from_dict(
            {"a": rng.choice(["x", "y"], size=300).tolist(), "b": ["p"] * 300}
        )
        marginal = Marginal(
            ["a", "b"],
            {("x", "p"): 100, ("x", "q"): 300, ("y", "p"): 500, ("y", "q"): 100},
        )
        model = BayesianNetworkModel(seed=0).fit(sample, [marginal])
        q_mass = model.expected_count({"b": lambda b: b == "q"})
        assert q_mass == pytest.approx(400, rel=0.02)

    def test_binned_attribute_calibration(self):
        rng = np.random.default_rng(2)
        # Sample only contains small values; metadata says half are large.
        sample = Relation.from_dict({"v": rng.uniform(0, 10, size=300)})
        marginal = Marginal(["v"], {(5.0,): 500, (95.0,): 500})
        model = BayesianNetworkModel(seed=0, max_categorical_int_values=0).fit(
            sample, [marginal]
        )
        large = model.expected_count({"v": lambda v: v > 50})
        assert large == pytest.approx(500, rel=0.05)

    def test_calibration_idempotent_when_already_matched(self):
        rng = np.random.default_rng(3)
        sample = Relation.from_dict(
            {"tag": rng.choice(["a", "b"], size=1000, p=[0.5, 0.5]).tolist()}
        )
        marginal = Marginal(["tag"], {("a",): 500, ("b",): 500})
        model = BayesianNetworkModel(seed=0).fit(sample, [marginal])
        before = model.expected_count({"tag": lambda t: t == "a"})
        model.calibrate_to_marginals([marginal])
        after = model.expected_count({"tag": lambda t: t == "a"})
        assert after == pytest.approx(before, rel=1e-9)
