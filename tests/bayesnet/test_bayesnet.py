"""Unit tests for the Bayesian-network population model."""

import numpy as np
import pytest

from repro.bayesnet.cpd import ConditionalTable, RootTable
from repro.bayesnet.model import BayesianNetworkModel
from repro.bayesnet.structure import learn_chow_liu, mutual_information
from repro.catalog.metadata import Marginal
from repro.errors import GenerativeModelError
from repro.relational.relation import Relation


@pytest.fixture
def correlated_sample():
    """a ⟂̸ b (deterministic copy), c independent."""
    rng = np.random.default_rng(0)
    a = rng.choice([0, 1], size=500)
    b = a.copy()
    c = rng.choice([0, 1], size=500)
    return {"a": a, "b": b, "c": c}


class TestMutualInformation:
    def test_independent_is_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.choice(2, size=5000)
        b = rng.choice(2, size=5000)
        mi = mutual_information(a, b, 2, 2, np.ones(5000))
        assert mi < 0.01

    def test_deterministic_copy_is_entropy(self):
        a = np.array([0, 1] * 100)
        mi = mutual_information(a, a, 2, 2, np.ones(200))
        assert mi == pytest.approx(np.log(2), rel=1e-6)

    def test_weights_matter(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        # Upweight the diagonal so the variables become correlated.
        mi = mutual_information(a, b, 2, 2, np.array([10.0, 0.1, 0.1, 10.0]))
        assert mi > 0.3


class TestStructure:
    def test_correlated_pair_connected(self, correlated_sample):
        codes = {k: v for k, v in correlated_sample.items()}
        structure = learn_chow_liu(codes, {"a": 2, "b": 2, "c": 2}, np.ones(500))
        # a-b is the strongest edge; whichever the root, a and b are adjacent.
        assert structure.parents["b"] == "a" or structure.parents["a"] == "b"

    def test_order_has_parents_first(self, correlated_sample):
        codes = {k: v for k, v in correlated_sample.items()}
        structure = learn_chow_liu(codes, {"a": 2, "b": 2, "c": 2}, np.ones(500))
        seen = set()
        for node in structure.order:
            parent = structure.parents[node]
            assert parent is None or parent in seen
            seen.add(node)

    def test_single_attribute(self):
        structure = learn_chow_liu({"a": np.zeros(3, dtype=int)}, {"a": 1}, np.ones(3))
        assert structure.root == "a"
        assert structure.parents == {"a": None}

    def test_explicit_root(self, correlated_sample):
        codes = {k: v for k, v in correlated_sample.items()}
        structure = learn_chow_liu(codes, {"a": 2, "b": 2, "c": 2}, np.ones(500), root="c")
        assert structure.root == "c"


class TestCpds:
    def test_root_table_normalised(self):
        table = RootTable(np.array([0, 0, 1]), 2, np.ones(3), alpha=0.0)
        assert table.probabilities.sum() == pytest.approx(1.0)
        assert table[0] == pytest.approx(2 / 3)

    def test_conditional_rows_normalised(self):
        table = ConditionalTable(
            np.array([0, 1, 1]), np.array([0, 0, 1]), 2, 2, np.ones(3), alpha=0.0
        )
        assert np.allclose(table.probabilities.sum(axis=1), 1.0)

    def test_smoothing_fills_unseen_parent(self):
        table = ConditionalTable(
            np.array([0]), np.array([0]), 2, 3, np.ones(1), alpha=0.0
        )
        # Parent values 1 and 2 never occur: fallback to uniform.
        assert np.allclose(table.row(1), 0.5)
        assert np.allclose(table.row(2), 0.5)


class TestModelFitAndInference:
    @pytest.fixture
    def flights_like(self):
        rng = np.random.default_rng(5)
        n = 3000
        carrier = rng.choice(["AA", "WN"], size=n, p=[0.4, 0.6])
        distance = np.where(
            carrier == "AA",
            rng.normal(1500, 200, size=n),
            rng.normal(400, 100, size=n),
        ).round()
        return Relation.from_dict({"carrier": carrier.tolist(), "distance": distance})

    def test_expected_count_unconstrained_is_population_size(self, flights_like):
        marginal = Marginal.from_data(flights_like, ["carrier"])
        model = BayesianNetworkModel(seed=0).fit(flights_like, [marginal])
        assert model.expected_count({}) == pytest.approx(3000, rel=1e-6)

    def test_expected_count_matches_truth(self, flights_like):
        marginal = Marginal.from_data(flights_like, ["carrier"])
        model = BayesianNetworkModel(seed=0).fit(flights_like, [marginal])
        estimated = model.expected_count({"carrier": lambda c: c == "AA"})
        true = sum(1 for c in flights_like.column("carrier") if c == "AA")
        assert estimated == pytest.approx(true, rel=0.02)

    def test_conditional_structure_learned(self, flights_like):
        """P(distance > 1000 | AA) should be near 1, | WN near 0."""
        marginal = Marginal.from_data(flights_like, ["carrier"])
        model = BayesianNetworkModel(seed=0).fit(flights_like, [marginal])
        aa_long = model.probability(
            {"carrier": lambda c: c == "AA", "distance": lambda d: d > 1000}
        )
        aa_total = model.probability({"carrier": lambda c: c == "AA"})
        assert aa_long / aa_total > 0.9
        wn_long = model.probability(
            {"carrier": lambda c: c == "WN", "distance": lambda d: d > 1000}
        )
        wn_total = model.probability({"carrier": lambda c: c == "WN"})
        assert wn_long / wn_total < 0.1

    def test_generated_sample_matches_marginal(self, flights_like):
        marginal = Marginal.from_data(flights_like, ["carrier"])
        model = BayesianNetworkModel(seed=0).fit(flights_like, [marginal])
        generated = model.generate(4000, rng=np.random.default_rng(1))
        share_aa = np.mean([c == "AA" for c in generated.column("carrier")])
        assert share_aa == pytest.approx(0.4, abs=0.03)

    def test_debiases_with_marginals(self):
        """Fit on a biased sample + true marginal; the marginal wins."""
        rng = np.random.default_rng(9)
        # Population: 50/50; sample: 90/10.
        sample = Relation.from_dict(
            {"tag": rng.choice(["x", "y"], size=500, p=[0.9, 0.1]).tolist()}
        )
        marginal = Marginal(["tag"], {("x",): 5000, ("y",): 5000})
        model = BayesianNetworkModel(seed=0).fit(sample, [marginal])
        assert model.expected_count({"tag": lambda t: t == "y"}) == pytest.approx(
            5000, rel=0.01
        )

    def test_unknown_constraint_attribute_raises(self, flights_like):
        model = BayesianNetworkModel(seed=0).fit(
            flights_like, [Marginal.from_data(flights_like, ["carrier"])]
        )
        with pytest.raises(GenerativeModelError, match="unknown attribute"):
            model.probability({"nope": lambda v: True})

    def test_generate_before_fit_raises(self):
        with pytest.raises(GenerativeModelError):
            BayesianNetworkModel().generate(5)

    def test_empty_sample_raises(self):
        empty = Relation.from_dict({"x": np.array([], dtype=float)})
        with pytest.raises(GenerativeModelError):
            BayesianNetworkModel().fit(empty, [])

    def test_small_int_domain_treated_categorical(self):
        rel = Relation.from_dict({"code": [1, 2, 3, 1, 2, 3] * 10})
        model = BayesianNetworkModel(seed=0).fit(rel, [])
        assert model.attributes["code"].kind == "categorical"

    def test_int_binned_generation_rounds(self):
        rng = np.random.default_rng(2)
        rel = Relation.from_dict({"v": rng.integers(0, 1000, size=200)})
        model = BayesianNetworkModel(seed=0, max_categorical_int_values=5).fit(rel, [])
        generated = model.generate(50, rng=np.random.default_rng(3))
        values = generated.column("v")
        assert np.all(values == np.round(values))
