"""Concurrency and isolation tests for the Engine / Session split.

Three families:

- stress: 8 threads mixing SELECT / INSERT / CREATE METADATA over one
  shared engine, asserting no torn reads (every observed COUNT is a
  consistent prefix state) and correct final counts;
- determinism: concurrent OPEN execution is bit-identical to the serial
  path under the same seed;
- session isolation: independent RNG streams, per-session visibility
  defaults, engine-shared cache statistics.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.core.caches import LRUCache, VersionedLRUCache
from repro.core.locks import ReadWriteLock
from repro.core.visibility import Visibility
from repro.engine.open_world import IPFSynthesizer, OpenQueryConfig


def make_db(**kwargs) -> MosaicDB:
    db = MosaicDB(seed=0, **kwargs)
    db.execute_script(
        """
        CREATE GLOBAL POPULATION P (country TEXT, email TEXT);
        CREATE SAMPLE S AS (SELECT * FROM P);
        """
    )
    db.register_marginal(
        "P_M1", "P", Marginal(["country"], {("UK",): 700, ("FR",): 300})
    )
    db.register_marginal(
        "P_M2", "P", Marginal(["email"], {("Yahoo",): 600, ("AOL",): 400})
    )
    db.ingest_rows("S", [("UK", "Yahoo")] * 60 + [("FR", "Yahoo")] * 40)
    return db


class TestStress:
    """8 threads of mixed DML/DDL/SELECT traffic over one engine."""

    READERS = 5
    WRITERS = 2
    METADATA_WRITERS = 1
    OPS = 40
    BATCH = 3  # rows per INSERT

    def test_mixed_select_insert_create_metadata(self):
        db = make_db()
        initial = db.catalog.sample("S").num_rows
        start = threading.Barrier(self.READERS + self.WRITERS + self.METADATA_WRITERS)
        errors: list[Exception] = []
        observed_counts: list[int] = []

        def reader(session):
            try:
                start.wait()
                for _ in range(self.OPS):
                    result = session.execute("SELECT CLOSED COUNT(*) AS n FROM S")
                    observed_counts.append(int(result.scalar()))
                    weighted = session.execute(
                        "SELECT SEMI-OPEN country, COUNT(*) AS n FROM S GROUP BY country"
                    )
                    # Torn read check: the weighted path touches both the
                    # tuple store and the weight vector; a mismatch raises
                    # inside execute_plan.
                    assert weighted.num_rows >= 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer(session):
            try:
                start.wait()
                for _ in range(self.OPS):
                    session.execute(
                        "INSERT INTO S VALUES "
                        + ", ".join(["('UK', 'Yahoo')"] * self.BATCH)
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def metadata_writer(session):
            try:
                start.wait()
                for i in range(self.OPS):
                    session.register_marginal(
                        f"P_extra_{i}", "P", Marginal(["country"], {("UK",): 1.0})
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = (
            [threading.Thread(target=reader, args=(db.connect(),)) for _ in range(self.READERS)]
            + [threading.Thread(target=writer, args=(db.connect(),)) for _ in range(self.WRITERS)]
            + [threading.Thread(target=metadata_writer, args=(db.connect(),))]
        )
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive(), "worker thread deadlocked"
        assert errors == []

        # Correct final counts: every INSERT landed exactly once.
        expected = initial + self.WRITERS * self.OPS * self.BATCH
        assert db.catalog.sample("S").num_rows == expected
        assert db.execute("SELECT CLOSED COUNT(*) AS n FROM S").scalar() == expected
        # Every metadata registration landed (plus the two fixture marginals).
        assert len(db.catalog.population("P").marginals) == 2 + self.OPS

        # No torn reads: each observed count is a consistent prefix state —
        # the initial rows plus a whole number of insert batches.
        for count in observed_counts:
            assert (count - initial) % self.BATCH == 0
            assert initial <= count <= expected

    def test_weights_never_torn(self):
        """UPDATE WEIGHTS races SELECTs; a reader must never see a weight
        vector whose length disagrees with the tuple store."""
        db = make_db()
        stop = threading.Event()
        errors: list[Exception] = []

        def reader(session):
            try:
                while not stop.is_set():
                    result = session.execute(
                        "SELECT SEMI-OPEN country, COUNT(*) AS n FROM S GROUP BY country"
                    )
                    total = sum(r["n"] for r in result.to_pylist())
                    assert total > 0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [
            threading.Thread(target=reader, args=(db.connect(),)) for _ in range(3)
        ]
        for t in readers:
            t.start()
        try:
            writer = db.connect()
            for i in range(30):
                writer.execute("UPDATE SAMPLE S SET WEIGHT = weight * 1")
                writer.execute("INSERT INTO S VALUES ('UK', 'Yahoo')")
        finally:
            stop.set()
        for t in readers:
            t.join(timeout=60)
            assert not t.is_alive(), "reader thread deadlocked"
        assert errors == []


class TestOpenDeterminism:
    """Concurrent OPEN execution must be bit-identical to the serial path."""

    SQL = "SELECT OPEN country, email, COUNT(*) AS n FROM P GROUP BY country, email"

    def run_open(self, max_workers: int):
        db = make_db(
            open_config=OpenQueryConfig(
                generator_factory=IPFSynthesizer,
                repetitions=6,
                rows_per_generation=2000,
                max_workers=max_workers,
            )
        )
        return db.execute(self.SQL)

    def test_concurrent_equals_serial(self):
        serial = self.run_open(max_workers=1)
        concurrent = self.run_open(max_workers=4)
        assert serial.relation.schema == concurrent.relation.schema
        assert serial.to_pylist() == concurrent.to_pylist()  # bit-identical rows

    def test_serial_is_deterministic_across_runs(self):
        assert self.run_open(max_workers=1).to_pylist() == self.run_open(
            max_workers=1
        ).to_pylist()


class TestSessionIsolation:
    def test_sessions_have_independent_deterministic_rngs(self):
        db_a = MosaicDB(seed=7)
        db_b = MosaicDB(seed=7)
        # Root session reproduces the pre-split MosaicDB stream exactly.
        assert db_a.rng.integers(1 << 30) == np.random.default_rng(7).integers(1 << 30)
        # Spawned sessions: deterministic per connect order, independent of
        # each other and of the root.
        a1, a2 = db_a.connect(), db_a.connect()
        b1, b2 = db_b.connect(), db_b.connect()
        draw = lambda s: s.rng.integers(1 << 62, size=4).tolist()
        assert draw(a1) == draw(b1)
        assert draw(a2) == draw(b2)
        assert draw(db_a.connect()) != draw(db_a.connect())

    def test_per_session_visibility_defaults(self):
        db = make_db()
        closed_session = db.connect(default_visibility=Visibility.CLOSED)
        default_session = db.connect()
        sql = "SELECT country, COUNT(*) AS n FROM P GROUP BY country"
        assert closed_session.execute(sql).visibility == "CLOSED"
        assert default_session.execute(sql).visibility == "SEMI-OPEN"
        assert db.execute(sql).visibility == "SEMI-OPEN"

    def test_cache_stats_shared_across_sessions(self):
        db = make_db()
        sql = "SELECT CLOSED country, COUNT(*) AS n FROM S GROUP BY country"
        first = db.connect()
        second = db.connect()
        first.execute(sql)
        before = second.cache_stats()["plans"]["hits"]
        result = second.execute(sql)  # plan compiled by the *other* session
        assert result.has_note("plan: cache hit")
        assert second.cache_stats()["plans"]["hits"] == before + 1
        assert db.cache_stats() == second.cache_stats()

    def test_open_config_isolated_per_session(self):
        """set_open_generator (or any open_config tweak) on one session
        must not leak into the root or sibling sessions."""
        db = make_db(
            open_config=OpenQueryConfig(generator_factory=IPFSynthesizer, repetitions=3)
        )
        first = db.connect()
        second = db.connect()
        assert first.config.open_config is not db.config.open_config
        assert first.config.open_config is not second.config.open_config

        sentinel = lambda: IPFSynthesizer()
        first.set_open_generator(sentinel)
        first.config.open_config.repetitions = 99
        assert db.config.open_config.generator_factory is IPFSynthesizer
        assert second.config.open_config.generator_factory is IPFSynthesizer
        assert db.config.open_config.repetitions == 3
        assert second.config.open_config.repetitions == 3

    def test_sessions_share_the_catalog(self):
        db = make_db()
        writer = db.connect()
        reader = db.connect()
        writer.execute("INSERT INTO S VALUES ('FR', 'AOL')")
        assert reader.execute("SELECT CLOSED COUNT(*) AS n FROM S").scalar() == 101


class TestThreadSafeCaches:
    def test_lru_cache_parallel_churn(self):
        cache = LRUCache(capacity=32)

        def churn(worker: int):
            for i in range(500):
                key = (worker * 7 + i) % 64
                if cache.get(key) is None:
                    cache.put(key, key)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(churn, range(8)))
        stats = cache.stats()
        assert len(cache) <= 32
        assert stats["hits"] + stats["misses"] == 8 * 500

    def test_versioned_cache_parallel_stamp_churn(self):
        cache = VersionedLRUCache(capacity=16)

        def churn(worker: int):
            for i in range(400):
                key = i % 8
                stamp = i % 3
                if cache.get(key, stamp) is None:
                    cache.put(key, stamp, (key, stamp))

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(churn, range(8)))
        for key in range(8):
            for stamp in range(3):
                value = cache.get(key, stamp)
                assert value is None or value == (key, stamp)


class TestReadWriteLock:
    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        state = {"readers": 0, "writers": 0, "max_readers": 0}
        state_mutex = threading.Lock()
        errors: list[str] = []

        def read_task():
            for _ in range(200):
                with lock.read_locked():
                    with state_mutex:
                        state["readers"] += 1
                        state["max_readers"] = max(
                            state["max_readers"], state["readers"]
                        )
                        if state["writers"]:
                            errors.append("reader overlapped writer")
                    with state_mutex:
                        state["readers"] -= 1

        def write_task():
            for _ in range(100):
                with lock.write_locked():
                    with state_mutex:
                        state["writers"] += 1
                        if state["writers"] > 1 or state["readers"]:
                            errors.append("writer not exclusive")
                    with state_mutex:
                        state["writers"] -= 1

        threads = [threading.Thread(target=read_task) for _ in range(4)] + [
            threading.Thread(target=write_task) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), "lock test deadlocked"
        assert errors == []
