"""Session / Engine lifecycle: close(), shutdown(), and the OPEN pool drain."""

import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.engine.open_world import IPFSynthesizer, OpenQueryConfig
from repro.errors import SessionClosedError


def make_db(**kwargs) -> MosaicDB:
    db = MosaicDB(seed=0, **kwargs)
    db.execute_script(
        """
        CREATE GLOBAL POPULATION P (country TEXT, email TEXT);
        CREATE SAMPLE S AS (SELECT * FROM P);
        """
    )
    db.register_marginal(
        "P_M1", "P", Marginal(["country"], {("UK",): 700, ("FR",): 300})
    )
    db.register_marginal(
        "P_M2", "P", Marginal(["email"], {("Yahoo",): 600, ("AOL",): 400})
    )
    db.ingest_rows("S", [("UK", "Yahoo")] * 60 + [("FR", "Yahoo")] * 40)
    return db


OPEN_SQL = "SELECT OPEN country, email, COUNT(*) AS n FROM P GROUP BY country, email"


class TestSessionClose:
    def test_context_manager_closes(self):
        db = make_db()
        with db.connect() as session:
            assert session.execute("SELECT CLOSED COUNT(*) AS n FROM S").scalar() == 100
        assert session.closed
        with pytest.raises(SessionClosedError):
            session.execute("SELECT CLOSED COUNT(*) AS n FROM S")
        with pytest.raises(SessionClosedError):
            session.execute_script("SELECT CLOSED COUNT(*) AS n FROM S")

    def test_close_is_idempotent(self):
        db = make_db()
        session = db.connect()
        session.close()
        session.close()
        assert session.closed

    def test_other_sessions_unaffected(self):
        db = make_db()
        first, second = db.connect(), db.connect()
        first.close()
        assert second.execute("SELECT CLOSED COUNT(*) AS n FROM S").scalar() == 100

    def test_spawn_index_assigned_in_connect_order(self):
        db = make_db()
        assert [db.connect().spawn_index for _ in range(3)] == [0, 1, 2]
        assert db.session.spawn_index is None  # root session is not spawned


class TestEngineShutdown:
    def test_shutdown_is_idempotent_and_fences_statements(self):
        db = make_db()
        session = db.connect()
        db.engine.shutdown()
        db.engine.shutdown()
        assert db.engine.closed
        with pytest.raises(SessionClosedError):
            session.execute("SELECT CLOSED COUNT(*) AS n FROM S")
        with pytest.raises(SessionClosedError):
            db.engine.connect()

    def test_shutdown_drains_the_open_repetition_pool(self):
        db = make_db(
            open_config=OpenQueryConfig(
                generator_factory=IPFSynthesizer,
                repetitions=4,
                max_workers=4,
                batched=False,
            )
        )
        result = db.execute(OPEN_SQL)
        # batched=False + max_workers=4 forces the per-repetition fan-out
        # path, which runs on the shared engine-owned pool the shutdown
        # must drain (the batched default never submits to the pool).
        assert result.has_note("shared engine pool")
        assert db.engine._open_pool is not None
        db.engine.shutdown()
        assert db.engine._open_pool is None

    def test_shared_pool_matches_serial_execution(self):
        serial = make_db(
            open_config=OpenQueryConfig(
                generator_factory=IPFSynthesizer, repetitions=4, max_workers=1
            )
        ).execute(OPEN_SQL)
        pooled = make_db(
            open_config=OpenQueryConfig(
                generator_factory=IPFSynthesizer, repetitions=4, max_workers=4
            )
        ).execute(OPEN_SQL)
        assert pooled.relation.equals(serial.relation)

    def test_database_context_manager(self):
        with make_db() as db:
            assert db.execute("SELECT CLOSED COUNT(*) AS n FROM S").scalar() == 100
        with pytest.raises(SessionClosedError):
            db.execute("SELECT CLOSED COUNT(*) AS n FROM S")
        db.close()  # idempotent
