"""Unit tests for the observability layer (``repro.observability``).

Covers the metrics registry (typed families, per-thread counter shards,
histogram buckets, Prometheus exposition), the deterministic trace
sampler, trace-id uniqueness, end-to-end trace capture through
``Session.execute``, and ``EXPLAIN ANALYZE`` across all three visibility
levels in-process.
"""

import threading
import urllib.request

import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.engine.open_world import IPFSynthesizer, OpenQueryConfig
from repro.observability import (
    MetricsExporter,
    MetricsRegistry,
    QueryTrace,
    new_trace_id,
)
from repro.observability import trace as trace_module


@pytest.fixture()
def sampled(monkeypatch):
    """Force the sampler to trace every query for the test's duration."""
    monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "1")


def build_closed_db(seed: int = 3) -> MosaicDB:
    db = MosaicDB(seed=seed)
    db.execute("CREATE TABLE T (name TEXT, n INT)")
    db.execute("INSERT INTO T VALUES ('a', 1), ('b', 2), ('a', 3)")
    return db


def build_population_db(seed: int = 0, **open_kwargs) -> MosaicDB:
    db = MosaicDB(
        seed=seed,
        open_config=OpenQueryConfig(
            generator_factory=IPFSynthesizer,
            repetitions=4,
            rows_per_generation=200,
            max_workers=1,
            batched=True,
            **open_kwargs,
        ),
    )
    db.execute_script(
        """
        CREATE GLOBAL POPULATION P (country TEXT, email TEXT);
        CREATE SAMPLE S AS (SELECT * FROM P);
        """
    )
    db.register_marginal(
        "M1", "P", Marginal(["country"], {("UK",): 700, ("FR",): 300})
    )
    db.register_marginal(
        "M2", "P", Marginal(["email"], {("Yahoo",): 600, ("AOL",): 400})
    )
    db.ingest_rows("S", [("UK", "Yahoo")] * 60 + [("FR", "Yahoo")] * 40)
    return db


class TestMetricsRegistry:
    def test_counter_sums_across_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", help="x")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1000)]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000

    def test_register_is_idempotent_and_kind_checked(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total")
        assert registry.counter("x_total") is a
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_labels_key_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"cache": "plans"}).inc(2)
        registry.counter("c", labels={"cache": "statements"}).inc(5)
        snapshot = registry.snapshot()
        assert snapshot['c{cache="plans"}'] == 2
        assert snapshot['c{cache="statements"}'] == 5

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_ms", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        value = histogram.value()
        buckets = dict(value["buckets"])
        assert buckets[1.0] == 2
        assert buckets[10.0] == 3
        assert buckets[float("inf")] == 4
        assert value["count"] == 4
        assert value["sum"] == pytest.approx(106.2)

    def test_prometheus_exposition_parses(self):
        registry = MetricsRegistry()
        registry.counter("q_total", help="queries").inc(3)
        registry.gauge("up", fn=lambda: 1)
        registry.histogram("lat_ms", buckets=(1.0,)).observe(0.4)
        text = registry.render_prometheus()
        lines = text.strip().splitlines()
        # Every non-comment line is `name{labels} value` with a float value.
        for line in lines:
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name
        assert "q_total 3" in text
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="+Inf"} 1' in text
        assert "lat_ms_count 1" in text

    def test_exporter_serves_scrapes(self):
        registry = MetricsRegistry()
        registry.counter("served_total").inc(7)
        exporter = MetricsExporter(registry.render_prometheus, port=0)
        exporter.start()
        try:
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{exporter.port}/metrics", timeout=10
            ).read().decode()
            assert "served_total 7" in body
        finally:
            exporter.stop()


class TestSampler:
    def test_rate_one_traces_every_query(self, monkeypatch):
        monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "1")
        assert all(
            trace_module.maybe_trace() is not None for _ in range(5)
        )

    def test_rate_zero_disables_tracing(self, monkeypatch):
        monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "0")
        assert all(trace_module.maybe_trace() is None for _ in range(5))

    def test_fractional_rate_is_periodic(self, monkeypatch):
        monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "0.25")
        hits = [trace_module.maybe_trace() is not None for _ in range(8)]
        assert sum(hits) == 2  # one in four, deterministically

    def test_unparseable_rate_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "not-a-rate")
        assert trace_module.trace_sample_rate() == trace_module.DEFAULT_SAMPLE

    def test_trace_ids_unique(self):
        ids = {new_trace_id() for _ in range(1000)}
        assert len(ids) == 1000


class TestQueryTrace:
    def test_span_records_annotations_and_duration(self):
        trace = QueryTrace()
        with trace.span("stage", table="T") as span:
            span["rows"] = 3
        trace.finish()
        payload = trace.to_dict()
        assert payload["spans"][0]["name"] == "stage"
        assert payload["spans"][0]["table"] == "T"
        assert payload["spans"][0]["rows"] == 3
        assert payload["spans"][0]["ms"] >= 0.0
        assert payload["total_ms"] >= payload["spans"][0]["ms"]

    def test_activate_sets_and_restores_context(self):
        trace = QueryTrace()
        assert trace_module.current_trace() is None
        with trace.activate():
            assert trace_module.current_trace() is trace
        assert trace_module.current_trace() is None


class TestSessionTracing:
    def test_sampled_select_carries_trace(self, sampled):
        db = build_closed_db()
        result = db.execute("SELECT CLOSED name, SUM(n) AS t FROM T GROUP BY name")
        assert result.trace is not None
        names = [span["name"] for span in result.trace["spans"]]
        assert "parse" in names
        assert "plan" in names
        assert "execute" in names

    def test_unsampled_select_has_no_trace(self, monkeypatch):
        monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "0")
        db = build_closed_db()
        result = db.execute("SELECT CLOSED name, SUM(n) AS t FROM T GROUP BY name")
        assert result.trace is None

    def test_plan_cache_provenance_in_trace(self, sampled):
        db = build_closed_db()
        sql = "SELECT CLOSED name, SUM(n) AS t FROM T GROUP BY name"
        db.execute(sql)
        result = db.execute(sql)
        plan_span = next(
            span for span in result.trace["spans"] if span["name"] == "plan"
        )
        assert "cache hit" in plan_span["provenance"]

    def test_trace_ids_distinct_across_queries(self, sampled):
        db = build_closed_db()
        sql = "SELECT CLOSED name, SUM(n) AS t FROM T GROUP BY name"
        ids = {db.execute(sql).trace["trace_id"] for _ in range(3)}
        assert len(ids) == 3


class TestExplainAnalyze:
    SQL = "SELECT CLOSED name, SUM(n) AS t FROM T GROUP BY name"

    def test_closed_reports_per_node_rows_and_timings(self):
        db = build_closed_db()
        result = db.execute(f"EXPLAIN ANALYZE {self.SQL}")
        assert result.columns == ("step", "detail", "ms")
        steps = [row[0] for row in result]
        assert "node: Scan" in steps
        assert any(step.startswith("node: Aggregate") for step in steps)
        assert result.trace is not None
        node_rows = {
            node["node"]: node["rows"]
            for node in result.trace["meta"]["plan_nodes"]
        }
        assert node_rows["Scan"] == 3
        assert result.has_note("EXPLAIN ANALYZE")

    def test_explain_bypasses_sampling(self, monkeypatch):
        monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "0")
        db = build_closed_db()
        result = db.execute(f"EXPLAIN ANALYZE {self.SQL}")
        assert result.trace is not None

    def test_explain_uses_same_plan_cache_as_bare_select(self):
        db = build_closed_db()
        db.execute(self.SQL)
        result = db.execute(f"EXPLAIN ANALYZE {self.SQL}")
        assert result.has_note("plan: cache hit")

    def test_semi_open_explain(self):
        db = build_population_db()
        result = db.execute(
            "EXPLAIN ANALYZE SELECT SEMI-OPEN country, COUNT(*) AS n "
            "FROM P GROUP BY country"
        )
        assert result.visibility == "SEMI-OPEN"
        execute_span = next(
            span for span in result.trace["spans"] if span["name"] == "execute"
        )
        assert execute_span["visibility"] == "SEMI-OPEN"

    def test_open_explain_records_generator_and_stop_reason(self):
        db = build_population_db()
        result = db.execute(
            "EXPLAIN ANALYZE SELECT OPEN country, email, COUNT(*) AS n "
            "FROM P GROUP BY country, email"
        )
        meta = result.trace["meta"]
        assert meta["generator"]["name"] == "ipf-synth"
        assert meta["open"]["repetitions_used"] == result.repetitions_used
        assert meta["open"]["stop_reason"]
        fit_spans = [
            span for span in result.trace["spans"] if span["name"] == "open.fit"
        ]
        assert len(fit_spans) == 1

    def test_adaptive_open_explain_logs_chunk_half_widths(self):
        db = build_population_db(
            tolerance=0.05, min_repetitions=2, chunk_repetitions=2
        )
        result = db.execute(
            "EXPLAIN ANALYZE SELECT OPEN country, email, COUNT(*) AS n "
            "FROM P GROUP BY country, email"
        )
        meta = result.trace["meta"]
        chunks = meta["open_chunks"]
        assert chunks, "adaptive run must log per-chunk telemetry"
        for chunk in chunks:
            assert chunk["rep_stop"] > chunk["rep_start"]
            assert chunk["max_rel_ci_half_width"] is None or (
                chunk["max_rel_ci_half_width"] >= 0.0
            )
        assert meta["open"]["repetitions_used"] == chunks[-1]["rep_stop"]
        generate_spans = [
            span
            for span in result.trace["spans"]
            if span["name"] == "open.generate"
        ]
        assert len(generate_spans) == len(chunks)


class TestRegistryViewsOfEngineCounters:
    def test_cache_stats_match_registry_snapshot(self):
        db = build_closed_db()
        sql = "SELECT CLOSED name, SUM(n) AS t FROM T GROUP BY name"
        db.execute(sql)
        db.execute(sql)
        stats = db.engine.cache_stats()
        snapshot = db.engine.metrics.snapshot()
        assert snapshot['mosaic_cache_hits{cache="plans"}'] == (
            stats["plans"]["hits"]
        )
        assert snapshot['mosaic_cache_size{cache="statements"}'] == (
            stats["statements"]["size"]
        )
        assert snapshot["mosaic_open_adaptive_runs_total"] == (
            stats["open_adaptive"]["runs"]
        )

    def test_execution_stats_keys_stable(self):
        db = build_closed_db()
        execution = db.engine.cache_stats()["execution"]
        # Append-only contract: the seed keys survive, worker_crashes adds.
        for key in (
            "workers",
            "worker_restarts",
            "worker_crashes",
            "parallel_batches",
            "local_batches",
            "tasks_dispatched",
            "plan_fallbacks",
            "pool_busy",
            "segments_shared",
            "segment_reuses",
            "segment_evictions",
            "live_segments",
        ):
            assert key in execution
