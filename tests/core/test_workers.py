"""Morsel-driven multi-process execution: bit-identity, crashes, lifecycle.

The acceptance bar for the worker pool: parallel results are *bit-identical*
to serial execution for CLOSED, SEMI-OPEN, and batched OPEN queries under
fixed seeds (including over the TCP server), a killed worker never hangs a
query (retry on a fresh process or a stable ``WORKER_CRASH`` wire error),
and shutdown unlinks every shared segment idempotently.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.core.workers import (
    DEFAULT_MORSEL_ROWS,
    ExecutionConfig,
    ParallelExecution,
    _register_crashes,
)
from repro.client import Connection
from repro.engine.open_world import IPFSynthesizer, OpenQueryConfig
from repro.errors import (
    SessionClosedError,
    WorkerCrashError,
    error_from_wire,
    error_to_wire,
)
from repro.relational.dtypes import DType
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.server.server import MosaicServer

ROWS = 12_000
MORSEL_ROWS = 1024

#: Engines whose pool wedged mid-batch (regression only): kept alive so
#: their finalizers never run — a finalizer would block on the held pool
#: lock and turn a clean failure into a session hang.
_WEDGED_ENGINES: list = []

CLOSED_SQL = (
    "SELECT CLOSED country, COUNT(*) AS n, SUM(age) AS s, AVG(score) AS a, "
    "MIN(age) AS mn, MAX(score) AS mx FROM P GROUP BY country ORDER BY country"
)
SEMI_SQL = (
    "SELECT SEMI-OPEN country, email, COUNT(*) AS n, AVG(age) AS a "
    "FROM P GROUP BY country, email ORDER BY country, email"
)
OPEN_SQL = (
    "SELECT OPEN country, email, COUNT(*) AS n "
    "FROM P2 GROUP BY country, email ORDER BY country, email"
)


def big_relation(rows: int = ROWS) -> Relation:
    rng = np.random.default_rng(42)
    countries = ["DE", "FR", "UK"]
    emails = ["AOL", "GMX", "Yahoo"]
    schema = Schema.of(
        country=DType.TEXT, email=DType.TEXT, age=DType.INT, score=DType.FLOAT
    )
    return Relation.from_columns(
        schema,
        {
            "country": [countries[i] for i in rng.integers(0, 3, rows)],
            "email": [emails[i] for i in rng.integers(0, 3, rows)],
            "age": rng.integers(18, 80, rows),
            "score": rng.uniform(-10.0, 10.0, rows),
        },
    )


def make_db(processes: int, **execution_kwargs) -> MosaicDB:
    db = MosaicDB(
        seed=0,
        open_config=OpenQueryConfig(
            generator_factory=IPFSynthesizer,
            repetitions=4,
            rows_per_generation=2000,
            max_workers=1,
        ),
        execution=ExecutionConfig(
            processes=processes,
            **{"morsel_rows": MORSEL_ROWS, **execution_kwargs},
        ),
    )
    db.execute_script(
        """
        CREATE GLOBAL POPULATION P
            (country TEXT, email TEXT, age INT, score FLOAT);
        CREATE SAMPLE S AS (SELECT * FROM P);
        CREATE POPULATION P2 AS (SELECT country, email FROM P);
        CREATE SAMPLE S2 AS (SELECT country, email FROM P2);
        """
    )
    db.register_marginal(
        "P_C", "P", Marginal(["country"], {("DE",): 5000, ("FR",): 3000, ("UK",): 4000})
    )
    db.register_marginal(
        "P_E", "P", Marginal(["email"], {("AOL",): 2000, ("GMX",): 4000, ("Yahoo",): 6000})
    )
    # P2 is the categorical projection OPEN queries generate against
    # (IPFSynthesizer needs a small cross-product domain).
    db.register_marginal(
        "P2_C", "P2", Marginal(["country"], {("DE",): 5000, ("FR",): 3000, ("UK",): 4000})
    )
    db.register_marginal(
        "P2_E", "P2", Marginal(["email"], {("AOL",): 2000, ("GMX",): 4000, ("Yahoo",): 6000})
    )
    data = big_relation()
    db.ingest_relation("S", data)
    db.ingest_relation("S2", data.project(["country", "email"]))
    return db


def assert_identical(received: Relation, expected: Relation) -> None:
    assert list(received.column_names) == list(expected.column_names)
    assert received.num_rows == expected.num_rows
    for name in expected.column_names:
        mine, theirs = received.column(name), expected.column(name)
        assert mine.dtype == theirs.dtype, name
        if mine.dtype == object:
            assert list(mine) == list(theirs), name
        else:
            assert mine.tobytes() == theirs.tobytes(), name


class TestBitIdentity:
    @pytest.mark.parametrize("sql", [CLOSED_SQL, SEMI_SQL, OPEN_SQL])
    def test_parallel_matches_serial(self, sql):
        serial_db = make_db(processes=0)
        try:
            reference = serial_db.execute(sql).relation
        finally:
            serial_db.close()
        for processes in (1, 2):
            db = make_db(processes=processes)
            try:
                result = db.execute(sql).relation
                stats = db.engine.execution.stats()
                assert stats["parallel_batches"] >= 1, (processes, sql)
                assert_identical(result, reference)
            finally:
                db.close()

    def test_open_shards_ride_the_pool(self):
        db = make_db(processes=2)
        try:
            result = db.execute(OPEN_SQL)
            assert any("sharded across the worker pool" in n for n in result.notes)
        finally:
            db.close()

    def test_repeated_parallel_queries_reuse_segments(self):
        db = make_db(processes=2)
        try:
            first = db.execute(CLOSED_SQL).relation
            second = db.execute(CLOSED_SQL).relation
            assert_identical(second, first)
            assert db.engine.execution.stats()["segment_reuses"] >= 1
        finally:
            db.close()


class TestPipeFlowControl:
    def test_high_cardinality_results_do_not_deadlock(self):
        """Partials larger than the pipe buffer must not wedge a batch.

        Every row is its own group, so each per-morsel partial carries
        O(30k)-cell arrays (hundreds of KB — far beyond the ~64KB pipe
        buffer) and the descriptor's vocab is ~30k strings.  A dispatch
        that queued every task (each once carrying that vocab) before
        reading any result deadlocked here: the worker blocked sending a
        partial while the parent blocked sending tasks, and the batch
        deadline never fired.  Flow-controlled dispatch must finish —
        with answers identical to the serial engine.
        """
        rows = 30_000
        db = MosaicDB(
            seed=0,
            execution=ExecutionConfig(
                processes=1, morsel_rows=2048, worker_timeout=60.0
            ),
        )
        serial_db = MosaicDB(
            seed=0, execution=ExecutionConfig(processes=0, morsel_rows=2048)
        )
        ddl = """
            CREATE GLOBAL POPULATION P (k TEXT);
            CREATE SAMPLE S AS (SELECT * FROM P);
        """
        data = Relation.from_columns(
            Schema.of(k=DType.TEXT), {"k": [f"k{i:05d}" for i in range(rows)]}
        )
        sql = "SELECT CLOSED k, COUNT(*) AS n FROM P GROUP BY k ORDER BY k"
        deadlocked = False
        try:
            for engine in (db, serial_db):
                engine.execute_script(ddl)
                engine.ingest_relation("S", data)
            outcome: dict = {}

            def run():
                try:
                    outcome["relation"] = db.execute(sql).relation
                except BaseException as exc:  # pragma: no cover - fail path
                    outcome["error"] = exc

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            thread.join(timeout=120)
            deadlocked = thread.is_alive()
            if not deadlocked:
                assert "error" not in outcome, outcome.get("error")
                assert db.engine.execution.stats()["parallel_batches"] >= 1
                assert_identical(
                    outcome["relation"], serial_db.execute(sql).relation
                )
        finally:
            serial_db.close()
            if not deadlocked:
                db.close()
            else:  # closing (or even GC-finalizing) a wedged engine hangs
                _WEDGED_ENGINES.append(db)
        assert not deadlocked, "parallel batch deadlocked"


class TestBitIdentityOverTcp:
    def test_wire_results_match_serial_engine(self):
        serial_db, parallel_db = make_db(processes=0), make_db(processes=2)
        serial = MosaicServer(
            serial_db.engine, port=0, session_config=serial_db.session.config
        ).start_in_thread()
        parallel = MosaicServer(
            parallel_db.engine, port=0, session_config=parallel_db.session.config
        ).start_in_thread()
        try:
            with Connection("127.0.0.1", serial.port) as reference_conn:
                with Connection("127.0.0.1", parallel.port) as parallel_conn:
                    for sql in (CLOSED_SQL, SEMI_SQL, OPEN_SQL):
                        expected = reference_conn.execute(sql)
                        received = parallel_conn.execute(sql)
                        assert_identical(received.relation, expected.relation)
            assert parallel_db.engine.execution.stats()["parallel_batches"] >= 1
        finally:
            serial.stop_in_thread()
            parallel.stop_in_thread()


class TestFallbacks:
    def test_small_relations_never_touch_the_pool(self):
        db = make_db(processes=2, morsel_rows=DEFAULT_MORSEL_ROWS)
        try:
            db.execute(CLOSED_SQL)
            stats = db.engine.execution.stats()
            assert stats["parallel_batches"] == 0
            assert stats["local_batches"] == 0
        finally:
            db.close()

    def test_unencoded_group_key_falls_back_in_process(self):
        # GROUP BY a numeric column has no storage encoding, so the plan
        # cannot be morsel-decomposed; it must fall back (and still answer
        # exactly like a serial engine).
        sql = "SELECT CLOSED age, COUNT(*) AS n FROM P GROUP BY age ORDER BY age"
        serial_db, db = make_db(processes=0), make_db(processes=2)
        try:
            assert_identical(
                db.execute(sql).relation, serial_db.execute(sql).relation
            )
            assert db.engine.execution.stats()["plan_fallbacks"] >= 1
        finally:
            serial_db.close()
            db.close()


class TestWorkerCrash:
    def test_killed_worker_is_respawned_and_query_retried(self):
        db = make_db(processes=2)
        try:
            reference = db.execute(CLOSED_SQL).relation
            pids = db.engine.execution.worker_pids()
            assert len(pids) == 2
            os.kill(pids[0], signal.SIGKILL)
            result = db.execute(CLOSED_SQL).relation
            assert_identical(result, reference)
            stats = db.engine.execution.stats()
            assert stats["worker_restarts"] >= 1
            survivors = db.engine.execution.worker_pids()
            assert len(survivors) == 2 and pids[0] not in survivors
        finally:
            db.close()

    def test_exhausted_retries_raise_stable_error_not_hang(self):
        db = make_db(processes=2, max_task_retries=0)
        try:
            db.execute(CLOSED_SQL)  # spin the pool up
            for pid in db.engine.execution.worker_pids():
                os.kill(pid, signal.SIGKILL)
            started = time.monotonic()
            with pytest.raises(WorkerCrashError):
                db.execute(CLOSED_SQL)
            assert time.monotonic() - started < 30  # failed fast, no hang
        finally:
            db.close()

    def test_engine_respawns_pool_after_failed_batch(self):
        # A batch that exhausts the retry budget terminates the pool; the
        # engine must discard it so the *next* query respawns a fresh one
        # and answers normally — not raise "worker pool is not running"
        # until restart.
        db = make_db(processes=2, max_task_retries=0)
        try:
            reference = db.execute(CLOSED_SQL).relation
            for pid in db.engine.execution.worker_pids():
                os.kill(pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashError):
                db.execute(CLOSED_SQL)
            before = db.engine.execution.stats()["parallel_batches"]
            result = db.execute(CLOSED_SQL).relation
            assert_identical(result, reference)
            stats = db.engine.execution.stats()
            assert stats["parallel_batches"] == before + 1
            assert stats["worker_restarts"] >= 1  # survives the pool swap
            assert len(db.engine.execution.worker_pids()) == 2
        finally:
            db.close()

    def test_retry_budget_counts_crashes_per_task(self):
        # max_task_retries=N must allow N re-runs after the first crash,
        # not collapse to one (a flat "already retried" set did that).
        crashes: dict[int, int] = {}
        assert _register_crashes(crashes, {7: {}}, 2) == []
        assert _register_crashes(crashes, {7: {}}, 2) == []
        assert _register_crashes(crashes, {7: {}}, 2) == [7]
        assert _register_crashes({}, {1: {}, 2: {}}, 0) == [1, 2]
        assert _register_crashes({3: 1}, {3: {}, 4: {}}, 1) == [3]

    def test_worker_crash_error_has_stable_wire_code(self):
        code, message, data = error_to_wire(WorkerCrashError("worker died"))
        assert code == "WORKER_CRASH"
        rebuilt = error_from_wire(code, message, data)
        assert type(rebuilt) is WorkerCrashError
        assert str(rebuilt) == "worker died"

    def test_engine_usable_after_crash_recovery(self):
        db = make_db(processes=2)
        try:
            db.execute(CLOSED_SQL)
            os.kill(db.engine.execution.worker_pids()[1], signal.SIGKILL)
            first = db.execute(SEMI_SQL).relation
            second = db.execute(SEMI_SQL).relation
            assert_identical(second, first)
        finally:
            db.close()


class TestLifecycle:
    def test_shutdown_stops_workers_and_unlinks_segments(self):
        db = make_db(processes=2)
        db.execute(CLOSED_SQL)
        execution = db.engine.execution
        pids = execution.worker_pids()
        assert execution.stats()["live_segments"] >= 1
        db.close()
        assert execution.stats()["live_segments"] == 0
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not any(_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        assert not any(_alive(pid) for pid in pids)

    def test_shutdown_is_idempotent(self):
        db = make_db(processes=2)
        db.execute(CLOSED_SQL)
        db.engine.shutdown()
        db.engine.shutdown()
        assert db.engine.execution.closed
        with pytest.raises(SessionClosedError):
            db.execute(CLOSED_SQL)

    def test_serial_engine_never_starts_processes(self):
        db = make_db(processes=0)
        try:
            db.execute(CLOSED_SQL)
            assert db.engine.execution.worker_pids() == []
            stats = db.engine.execution.stats()
            assert stats["local_batches"] >= 1
        finally:
            db.close()


class TestExecutionConfig:
    def test_env_workers(self, monkeypatch):
        monkeypatch.setenv("MOSAIC_WORKERS", "3")
        assert ExecutionConfig().resolved_processes() == 3
        assert ExecutionConfig(processes=1).resolved_processes() == 1
        monkeypatch.setenv("MOSAIC_WORKERS", "junk")
        assert ExecutionConfig().resolved_processes() == 0

    def test_env_morsel_rows(self, monkeypatch):
        monkeypatch.delenv("MOSAIC_MORSEL_ROWS", raising=False)
        assert ExecutionConfig().resolved_morsel_rows() == DEFAULT_MORSEL_ROWS
        monkeypatch.setenv("MOSAIC_MORSEL_ROWS", "2048")
        assert ExecutionConfig().resolved_morsel_rows() == 2048

    def test_threaded_parent_never_defaults_to_fork(self):
        # Pools spawn lazily, typically after the engine's OPEN thread
        # pool or server threads exist; forking a multithreaded parent
        # can deadlock the child, so the default must avoid it (explicit
        # opt-in still honored).
        release = threading.Event()
        thread = threading.Thread(target=release.wait, daemon=True)
        thread.start()
        try:
            assert ExecutionConfig().resolved_start_method() != "fork"
            assert (
                ExecutionConfig(start_method="fork").resolved_start_method()
                == "fork"
            )
        finally:
            release.set()
            thread.join()

    def test_context_without_pool_is_cheap_and_closable(self):
        context = ParallelExecution(ExecutionConfig(processes=0))
        assert context.processes == 0
        context.shutdown()
        context.shutdown()
        assert context.closed


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover
        return True
    return True
