"""Fleet-level observability tests (PR 9).

Covers the acceptance criteria that involve the router: a traced
scattered query stitches the per-shard traces as children under one
gather trace (all ids distinct), routed whole-table queries annotate the
serving shard, ``EXPLAIN ANALYZE`` works through a 2-shard fleet (and
refuses sliced tables with a typed error), ``shard_rollup`` tolerates a
down shard without skewing the sums, :class:`ShardUnavailableError`
carries the failing trace id, and the router's Prometheus endpoint
scrapes.
"""

import urllib.request

import pytest

from repro.client import Connection
from repro.errors import PartialUnsupportedError, ShardUnavailableError
from repro.fleet import FleetClient, FleetRouter, PartitionSpec
from repro.server.server import MosaicServer

from test_fleet import CLOSED_SQL, build_tiny_db

SLICED_SETUP = (
    "CREATE TEMPORARY TABLE T (name TEXT, n INT)",
    "INSERT INTO T VALUES ('a', 1), ('b', 2), ('a', 3), ('c', 9), "
    "('b', 5), ('a', 7), ('c', 1)",
)
SCATTER_SQL = "SELECT name, SUM(n) AS total FROM T GROUP BY name"


class ObservedFleet:
    """Two MosaicServer shards + a FleetRouter with metrics enabled."""

    def __init__(self, shard_count: int = 2):
        self.dbs = [build_tiny_db() for _ in range(shard_count)]
        self.servers = [
            MosaicServer(
                db.engine, port=0, session_config=db.session.config, shard_id=index
            ).start_in_thread()
            for index, db in enumerate(self.dbs)
        ]
        self.router = FleetRouter(
            [("127.0.0.1", server.port) for server in self.servers],
            port=0,
            partitions={"T": PartitionSpec("T")},
            metrics_port=0,
        ).start_in_thread()
        self.port = self.router.port

    def close(self):
        self.router.stop_in_thread()
        for server in self.servers:
            server.stop_in_thread()


@pytest.fixture()
def observed_fleet(monkeypatch):
    monkeypatch.setenv("MOSAIC_TRACE_SAMPLE", "1")
    fleet = ObservedFleet(2)
    try:
        yield fleet
    finally:
        fleet.close()


class TestFleetTracing:
    def test_scatter_trace_stitches_one_child_per_shard(self, observed_fleet):
        with Connection("127.0.0.1", observed_fleet.port) as conn:
            for sql in SLICED_SETUP:
                conn.execute(sql)
            result = conn.execute(SCATTER_SQL)
        trace = result.trace
        assert trace is not None
        assert trace["meta"]["fleet"] == {"mode": "scatter", "shards": 2}
        children = trace["children"]
        assert len(children) == 2
        # Gather id plus both shard ids: three distinct traces in the tree.
        ids = {trace["trace_id"]} | {child["trace_id"] for child in children}
        assert len(ids) == 3
        # Each child is a shard-side trace (partial execution records the
        # plan span) with the shard server's phase timings stamped in.
        for child in children:
            assert "plan" in {span["name"] for span in child["spans"]}
            assert "execute_ms" in child["server"]
            assert child["server"]["shard_id"] in (0, 1)

    def test_routed_query_annotates_serving_shard(self, observed_fleet):
        with Connection("127.0.0.1", observed_fleet.port) as conn:
            result = conn.execute(CLOSED_SQL)
        fleet_meta = result.trace["fleet"]
        assert fleet_meta["mode"] == "routed"
        assert fleet_meta["shard"] in (0, 1)


class TestFleetExplainAnalyze:
    def test_explain_analyze_routes_whole_query(self, observed_fleet):
        with Connection("127.0.0.1", observed_fleet.port) as conn:
            result = conn.execute(f"EXPLAIN ANALYZE {CLOSED_SQL}")
        assert list(result.columns) == ["step", "detail", "ms"]
        assert "trace" in list(result.column("step"))
        assert result.trace is not None
        assert result.trace["fleet"]["mode"] == "routed"

    def test_explain_analyze_on_sliced_table_is_typed_error(self, observed_fleet):
        with Connection("127.0.0.1", observed_fleet.port) as conn:
            for sql in SLICED_SETUP:
                conn.execute(sql)
            with pytest.raises(PartialUnsupportedError):
                conn.execute(f"EXPLAIN ANALYZE {SCATTER_SQL}")


class TestFleetFailureObservability:
    def test_shard_rollup_tolerates_down_shard(self, observed_fleet):
        with FleetClient("127.0.0.1", observed_fleet.port, pool_size=1) as client:
            client.execute(CLOSED_SQL)
            healthy = client.shard_rollup()
            assert healthy["shards_reporting"] == 2
            assert healthy["shards_down"] == []
            observed_fleet.servers[1].stop_in_thread()
            rollup = client.shard_rollup()
        assert rollup["shards_reporting"] == 1
        assert rollup["shards_down"] == ["1"]
        # Sums come from the surviving shard only — never skewed by junk.
        assert all(
            isinstance(value, int) for value in rollup["execution"].values()
        )
        assert rollup["open_adaptive"]["runs"] >= 0

    def test_shard_unavailable_error_carries_trace_id(self, observed_fleet):
        with Connection("127.0.0.1", observed_fleet.port) as conn:
            for sql in SLICED_SETUP:
                conn.execute(sql)
            observed_fleet.servers[1].stop_in_thread()
            with pytest.raises(ShardUnavailableError) as excinfo:
                conn.execute(SCATTER_SQL)
        exc = excinfo.value
        assert "[trace " in str(exc)
        assert len(exc.trace_id) == 16


class TestFleetMetricsEndpoint:
    def test_router_prometheus_scrapes(self, observed_fleet):
        exporter = observed_fleet.router.metrics_exporter
        assert exporter is not None
        with Connection("127.0.0.1", observed_fleet.port) as conn:
            conn.execute(CLOSED_SQL)
        with urllib.request.urlopen(
            f"http://127.0.0.1:{exporter.port}/metrics"
        ) as response:
            text = response.read().decode("utf-8")
        assert "# TYPE mosaic_fleet_queries_total counter" in text
        assert "mosaic_fleet_up_shards 2" in text

    def test_stats_ships_router_metrics_snapshot(self, observed_fleet):
        with FleetClient("127.0.0.1", observed_fleet.port, pool_size=1) as client:
            client.execute(CLOSED_SQL)
            stats = client.stats()
        assert stats["metrics"]["mosaic_fleet_queries_total"] >= 1
        assert stats["router"]["queries_total"] >= 1
