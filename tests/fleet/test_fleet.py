"""End-to-end tests for the sharded engine fleet (``repro.fleet``).

Covers the PR acceptance criteria: fleet answers are bit-identical to a
single engine at fixed seeds for CLOSED, SEMI-OPEN, and OPEN across
1/2/4 shards over real sockets; sliced relations scatter INSERTs and
gather decomposable aggregates exactly; shard death surfaces as typed
:class:`ShardUnavailableError` over the wire and the fleet keeps serving
from the survivors without a restart; the router drains in-flight work
on graceful shutdown; pooled clients reconnect once across a server
restart and raise typed :class:`ConnectionLostError` when the retry
fails too.

Most tests run the shards in-process (``MosaicServer`` threads over real
sockets — same wire path, no subprocess latency); the failure-mode tests
boot genuine ``python -m repro.server`` subprocesses so SIGKILL means
SIGKILL.
"""

import threading
import time

import pytest

from repro import MosaicDB
from repro.catalog.metadata import Marginal
from repro.client import Client, Connection
from repro.engine.open_world import IPFSynthesizer, OpenQueryConfig
from repro.errors import (
    ConnectionLostError,
    PartialUnsupportedError,
    SchemaError,
    ShardUnavailableError,
    UnknownRelationError,
)
from repro.fleet import FleetClient, FleetRouter, HashRing, PartitionSpec
from repro.fleet.boot import launch_shards, terminate_shards
from repro.fleet.partition import parse_partition_option
from repro.fleet.ring import stable_hash
from repro.server.server import MosaicServer

CLOSED_SQL = "SELECT CLOSED country, COUNT(*) AS n FROM S GROUP BY country"
SEMI_SQL = (
    "SELECT SEMI-OPEN country, email, COUNT(*) AS n "
    "FROM EuropeMigrants GROUP BY country, email"
)
OPEN_SQL = (
    "SELECT OPEN country, email, COUNT(*) AS n "
    "FROM EuropeMigrants GROUP BY country, email"
)
SEED = 7


def build_tiny_db(seed: int = SEED, ingest: bool = True) -> MosaicDB:
    """Migrants-style database small enough for fast OPEN queries."""
    db = MosaicDB(
        seed=seed,
        open_config=OpenQueryConfig(
            generator_factory=IPFSynthesizer, repetitions=3
        ),
    )
    db.execute_script(
        """
        CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);
        CREATE SAMPLE S AS (SELECT * FROM EuropeMigrants);
        """
    )
    db.register_marginal(
        "M1", "EuropeMigrants", Marginal(["country"], {("UK",): 700, ("FR",): 300})
    )
    db.register_marginal(
        "M2", "EuropeMigrants", Marginal(["email"], {("Yahoo",): 600, ("AOL",): 400})
    )
    if ingest:
        db.ingest_rows("S", [("UK", "Yahoo")] * 60 + [("FR", "Yahoo")] * 40)
    return db


def assert_results_identical(received, expected, compare_notes=False):
    assert received.visibility == expected.visibility
    assert received.sample_name == expected.sample_name
    if compare_notes:
        assert received.notes == expected.notes
    assert received.columns == expected.columns
    assert received.num_rows == expected.num_rows
    for name in expected.columns:
        mine, theirs = received.column(name), expected.column(name)
        if mine.dtype == object:
            assert list(mine) == list(theirs)
        else:
            # Bit-for-bit, not approximately: the wire ships raw buffers.
            assert mine.tobytes() == theirs.tobytes()


class InProcessFleet:
    """N MosaicServer shards + a FleetRouter, all over real sockets."""

    def __init__(self, shard_count: int, partitions=None, ingest: bool = True):
        self.dbs = [build_tiny_db(ingest=ingest) for _ in range(shard_count)]
        self.servers = [
            MosaicServer(
                db.engine, port=0, session_config=db.session.config, shard_id=index
            ).start_in_thread()
            for index, db in enumerate(self.dbs)
        ]
        self.router = FleetRouter(
            [("127.0.0.1", server.port) for server in self.servers],
            port=0,
            partitions=partitions,
        ).start_in_thread()
        self.port = self.router.port

    def close(self):
        self.router.stop_in_thread()
        for server in self.servers:
            server.stop_in_thread()


@pytest.fixture(params=[1, 2, 4])
def fleet(request):
    fleet = InProcessFleet(request.param)
    try:
        yield fleet
    finally:
        fleet.close()


@pytest.fixture()
def sliced_fleet():
    fleet = InProcessFleet(
        2,
        partitions={
            "T": PartitionSpec("T"),
            "H": PartitionSpec("H", key_column="name"),
        },
    )
    try:
        yield fleet
    finally:
        fleet.close()


class TestBitIdentity:
    def test_whole_query_routing_matches_single_engine(self, fleet):
        """CLOSED/SEMI-OPEN/OPEN answers over the fleet are bit-identical
        to an in-process single-engine session at the same seed.

        The two OPEN calls also prove shard affinity: the second OPEN must
        consume RNG draw #1 of the *same* stream, which only happens if
        both land on the same shard session.
        """
        reference = build_tiny_db().connect()
        with Connection("127.0.0.1", fleet.port) as conn:
            assert conn.session_index == 0
            assert "mosaic-fleet" in conn.server_info
            for sql in (CLOSED_SQL, SEMI_SQL, OPEN_SQL, CLOSED_SQL, OPEN_SQL):
                assert_results_identical(
                    conn.execute(sql), reference.execute(sql)
                )

    def test_second_client_replays_second_session_stream(self, fleet):
        reference_db = build_tiny_db()
        sessions = [reference_db.connect() for _ in range(2)]
        with Connection("127.0.0.1", fleet.port) as first:
            with Connection("127.0.0.1", fleet.port) as second:
                assert (first.session_index, second.session_index) == (0, 1)
                assert_results_identical(
                    first.execute(OPEN_SQL), sessions[0].execute(OPEN_SQL)
                )
                assert_results_identical(
                    second.execute(OPEN_SQL), sessions[1].execute(OPEN_SQL)
                )

    def test_scripts_fan_out_in_lockstep(self, fleet):
        reference = build_tiny_db().connect()
        script = (
            "CREATE TEMPORARY TABLE R (name TEXT, n INT);"
            "INSERT INTO R VALUES ('a', 1), ('b', 2), ('a', 3)"
        )
        with Connection("127.0.0.1", fleet.port) as conn:
            fleet_results = conn.execute_script(script)
            reference_results = reference.execute_script(script)
            assert len(fleet_results) == len(reference_results) == 2
            sql = "SELECT name, SUM(n) AS total FROM R GROUP BY name"
            assert_results_identical(conn.execute(sql), reference.execute(sql))


class TestScatterGather:
    SLICED_STATEMENTS = (
        "CREATE TEMPORARY TABLE T (name TEXT, n INT)",
        "INSERT INTO T VALUES ('a', 1), ('b', 2), ('a', 3), ('c', 9), "
        "('b', 5), ('a', 7), ('c', 1)",
    )
    AGGREGATES = (
        "SELECT name, SUM(n) AS total FROM T GROUP BY name",
        "SELECT name, COUNT(*) AS c, AVG(n) AS avg_n, MIN(n) AS mn, "
        "MAX(n) AS mx FROM T GROUP BY name",
        "SELECT COUNT(*) AS c FROM T",
        "SELECT SUM(n) AS s FROM T WHERE name = 'a'",
        "SELECT COUNT(*) AS c FROM T WHERE name = 'zzz'",
        "SELECT name, SUM(n) AS total FROM T GROUP BY name "
        "ORDER BY total DESC LIMIT 2",
    )

    def test_sliced_aggregates_match_single_engine(self, sliced_fleet):
        reference = build_tiny_db().connect()
        with Connection("127.0.0.1", sliced_fleet.port) as conn:
            for sql in self.SLICED_STATEMENTS:
                conn.execute(sql)
                reference.execute(sql)
            for sql in self.AGGREGATES:
                assert_results_identical(conn.execute(sql), reference.execute(sql))

    def test_rows_actually_slice_across_shards(self, sliced_fleet):
        with Connection("127.0.0.1", sliced_fleet.port) as conn:
            for sql in self.SLICED_STATEMENTS:
                conn.execute(sql)
        per_shard = []
        for server in sliced_fleet.servers:
            with Connection("127.0.0.1", server.port) as direct:
                per_shard.append(
                    direct.execute("SELECT COUNT(*) AS c FROM T").rows()[0][0]
                )
        assert sum(per_shard) == 7
        assert all(count < 7 for count in per_shard), per_shard

    def test_hash_partitioning_groups_by_key(self, sliced_fleet):
        with Connection("127.0.0.1", sliced_fleet.port) as conn:
            conn.execute("CREATE TEMPORARY TABLE H (name TEXT, n INT)")
            conn.execute(
                "INSERT INTO H VALUES ('a', 1), ('b', 2), ('a', 3), ('b', 4)"
            )
            result = conn.execute(
                "SELECT name, SUM(n) AS total FROM H GROUP BY name"
            )
            assert result.rows() == [("a", 4), ("b", 6)]
        # Each key's rows live on exactly one shard — the hash contract.
        for key in ("a", "b"):
            holders = 0
            for server in sliced_fleet.servers:
                with Connection("127.0.0.1", server.port) as direct:
                    count = direct.execute(
                        f"SELECT COUNT(*) AS c FROM H WHERE name = '{key}'"
                    ).rows()[0][0]
                    holders += 1 if count == 2 else 0
                    assert count in (0, 2), (key, count)
            assert holders == 1, key

    def test_hash_partitioned_table_must_be_created_through_router(
        self, sliced_fleet
    ):
        with Connection("127.0.0.1", sliced_fleet.port) as conn:
            fresh_router = FleetRouter(
                [("127.0.0.1", server.port) for server in sliced_fleet.servers],
                port=0,
                partitions={"H": PartitionSpec("H", key_column="name")},
            ).start_in_thread()
            try:
                with Connection("127.0.0.1", fresh_router.port) as other:
                    with pytest.raises(
                        PartialUnsupportedError, match="created through the router"
                    ):
                        other.execute("INSERT INTO H VALUES ('a', 1)")
            finally:
                fresh_router.stop_in_thread()

    def test_empty_ungrouped_sum_raises_like_single_engine(self, sliced_fleet):
        reference = build_tiny_db().connect()
        sql = "SELECT SUM(n) AS s FROM T WHERE name = 'zzz'"
        with Connection("127.0.0.1", sliced_fleet.port) as conn:
            for statement in self.SLICED_STATEMENTS:
                conn.execute(statement)
                reference.execute(statement)
            with pytest.raises(SchemaError) as fleet_error:
                conn.execute(sql)
        with pytest.raises(SchemaError) as reference_error:
            reference.execute(sql)
        assert str(fleet_error.value) == str(reference_error.value)

    def test_non_decomposable_over_sliced_raises_typed(self, sliced_fleet):
        with Connection("127.0.0.1", sliced_fleet.port) as conn:
            for statement in self.SLICED_STATEMENTS:
                conn.execute(statement)
            with pytest.raises(PartialUnsupportedError, match="decomposable"):
                conn.execute("SELECT name FROM T")

    def test_scripts_touching_sliced_relations_are_refused(self, sliced_fleet):
        with Connection("127.0.0.1", sliced_fleet.port) as conn:
            with pytest.raises(PartialUnsupportedError, match="scripts"):
                conn.execute_script(
                    "CREATE TEMPORARY TABLE T (name TEXT, n INT);"
                    "INSERT INTO T VALUES ('a', 1)"
                )


class TestSlicedPopulation:
    """Population CLOSED over a sliced sample scatters; SEMI-OPEN/OPEN
    need globally fitted weights and are refused with the typed error."""

    @pytest.fixture()
    def population_fleet(self):
        fleet = InProcessFleet(
            2,
            partitions={
                "S": PartitionSpec("S"),
                "EuropeMigrants": PartitionSpec("EuropeMigrants"),
            },
            ingest=False,
        )
        try:
            yield fleet
        finally:
            fleet.close()

    def test_population_closed_scatters_exactly(self, population_fleet):
        reference = build_tiny_db(ingest=False).connect()
        insert = (
            "INSERT INTO S VALUES " +
            ", ".join(["('UK', 'Yahoo')"] * 6 + ["('FR', 'AOL')"] * 4)
        )
        sql = (
            "SELECT CLOSED country, COUNT(*) AS n "
            "FROM EuropeMigrants GROUP BY country"
        )
        with Connection("127.0.0.1", population_fleet.port) as conn:
            conn.execute(insert)
            reference.execute(insert)
            assert_results_identical(conn.execute(sql), reference.execute(sql))

    def test_population_semi_open_over_sliced_is_refused(self, population_fleet):
        with Connection("127.0.0.1", population_fleet.port) as conn:
            conn.execute("INSERT INTO S VALUES ('UK', 'Yahoo'), ('FR', 'AOL')")
            with pytest.raises(PartialUnsupportedError, match="replicate"):
                conn.execute(
                    "SELECT SEMI-OPEN country, COUNT(*) AS n "
                    "FROM EuropeMigrants GROUP BY country"
                )


class TestStats:
    def test_fleet_client_stats_surface(self, sliced_fleet):
        with FleetClient("127.0.0.1", sliced_fleet.port, pool_size=1) as client:
            client.execute(CLOSED_SQL)
            for sql in TestScatterGather.SLICED_STATEMENTS:
                client.execute(sql)
            client.execute("SELECT COUNT(*) AS c FROM T")

            router_stats = client.router_stats()
            assert router_stats["shard_count"] == 2
            assert router_stats["up"] == [0, 1]
            assert router_stats["down"] == []
            assert router_stats["routed_queries"] >= 1
            assert router_stats["scatter_queries"] >= 1
            assert router_stats["sliced_inserts"] == 1
            assert router_stats["fanout_statements"] >= 1
            assert "T: sliced round-robin" in router_stats["partitions"].values()

            shard_stats = client.shard_stats()
            assert sorted(shard_stats) == ["0", "1"]
            for payload in shard_stats.values():
                assert payload["server"]["shard_id"] in (0, 1)
                assert "open_adaptive" in payload["engine"]

            rollup = client.shard_rollup()
            assert rollup["shards_reporting"] == 2
            assert set(rollup) == {
                "shards_reporting",
                "shards_down",
                "execution",
                "open_adaptive",
            }
            assert rollup["shards_down"] == []
            assert rollup["execution"]["worker_restarts"] == 0
            assert rollup["open_adaptive"]["runs"] >= 0


class TestFailureModes:
    """Real subprocess shards: SIGKILL means SIGKILL."""

    INIT_ROWS = "('a', 1), ('b', 2), ('a', 3), ('c', 9)"

    @pytest.fixture()
    def subprocess_fleet(self, tmp_path):
        init_sql = tmp_path / "init.sql"
        init_sql.write_text(
            "CREATE TEMPORARY TABLE Base (name TEXT, n INT);\n"
            f"INSERT INTO Base VALUES {self.INIT_ROWS}\n"
        )
        shards = launch_shards(2, seed=SEED, init_sql=str(init_sql))
        router = FleetRouter(
            [shard.address for shard in shards],
            port=0,
            partitions={"T": PartitionSpec("T")},
        ).start_in_thread()
        try:
            yield router, shards
        finally:
            router.stop_in_thread()
            terminate_shards(shards)

    def test_shard_death_mid_scatter_is_typed_and_survivable(
        self, subprocess_fleet
    ):
        router, shards = subprocess_fleet
        with Connection("127.0.0.1", router.port) as conn:
            conn.execute("CREATE TEMPORARY TABLE T (name TEXT, n INT)")
            conn.execute(f"INSERT INTO T VALUES {self.INIT_ROWS}")
            assert conn.execute("SELECT COUNT(*) AS c FROM T").rows() == [(4,)]

            shards[1].kill()

            # The scatter needs shard 1 and must fail with the typed,
            # wire-coded error — not a raw socket exception.
            with pytest.raises(ShardUnavailableError):
                conn.execute("SELECT COUNT(*) AS c FROM T")

            # The fleet recovers without a restart: replicated relations
            # keep serving from the survivor on the very next query.
            assert conn.execute(
                "SELECT name, SUM(n) AS total FROM Base GROUP BY name"
            ).rows() == [("a", 4), ("b", 2), ("c", 9)]
            # DDL now fans out to the survivors only.
            conn.execute("CREATE TEMPORARY TABLE After (name TEXT, n INT)")
            conn.execute("INSERT INTO After VALUES ('x', 1)")
            assert conn.execute(
                "SELECT COUNT(*) AS c FROM After"
            ).rows() == [(1,)]

        with Client("127.0.0.1", router.port, pool_size=1) as client:
            router_stats = client.stats()["router"]
            assert router_stats["down"] == [1]
            assert client.stats()["shards"]["1"] == {"error": "down"}

    def test_sliced_insert_needing_dead_shard_is_refused(self, subprocess_fleet):
        router, shards = subprocess_fleet
        with Connection("127.0.0.1", router.port) as conn:
            conn.execute("CREATE TEMPORARY TABLE T (name TEXT, n INT)")
            shards[0].kill()
            with pytest.raises(ShardUnavailableError) as error:
                for _ in range(2):  # first call may only discover the death
                    conn.execute(f"INSERT INTO T VALUES {self.INIT_ROWS}")
            assert error.value.shard in (0, None)

    def test_graceful_shutdown_drains_inflight_query(self, subprocess_fleet):
        router, shards = subprocess_fleet
        results, errors = [], []

        def run_query():
            try:
                with Connection("127.0.0.1", router.port) as conn:
                    results.append(
                        conn.execute(
                            "SELECT name, SUM(n) AS total FROM Base GROUP BY name"
                        ).rows()
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=run_query)
        thread.start()
        time.sleep(0.05)
        router.stop_in_thread()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert not errors, errors
        assert results == [[("a", 4), ("b", 2), ("c", 9)]]


class TestFanoutOutcomePolicy:
    """Unit tests for the fan-out divergence report (hard to time E2E)."""

    def _boom(self, message):
        return UnknownRelationError(message)

    def test_all_failed_reraises_first(self):
        with pytest.raises(UnknownRelationError, match="first"):
            FleetRouter._raise_scatter_failures(
                [0, 1],
                [self._boom("first"), self._boom("second")],
                mixed_is_fatal=True,
            )

    def test_mixed_write_outcome_reports_divergence(self):
        with pytest.raises(ShardUnavailableError, match="partially applied"):
            FleetRouter._raise_scatter_failures(
                [0, 1], ["ok-result", self._boom("boom")], mixed_is_fatal=True
            )

    def test_mixed_read_outcome_reraises_original(self):
        with pytest.raises(UnknownRelationError, match="boom"):
            FleetRouter._raise_scatter_failures(
                [0, 1], ["ok-result", self._boom("boom")], mixed_is_fatal=False
            )

    def test_all_ok_returns(self):
        FleetRouter._raise_scatter_failures(
            [0, 1], ["a", "b"], mixed_is_fatal=True
        )


class TestClientReconnect:
    """Satellite: pooled clients survive a server restart (reconnect once)
    and raise typed ConnectionLostError when the retry fails too."""

    def test_stale_pooled_socket_reconnects_once(self):
        db = build_tiny_db()
        server = MosaicServer(
            db.engine, port=0, session_config=db.session.config
        ).start_in_thread()
        port = server.port
        client = Client("127.0.0.1", port, pool_size=1)
        try:
            assert client.execute(CLOSED_SQL).num_rows >= 1
            server.stop_in_thread()
            # Same engine, same port: the pooled socket is now stale.
            server = MosaicServer(
                db.engine, "127.0.0.1", port, session_config=db.session.config
            ).start_in_thread()
            assert client.execute(CLOSED_SQL).num_rows >= 1
        finally:
            client.close()
            server.stop_in_thread()

    def test_retry_failure_raises_typed_connection_lost(self):
        db = build_tiny_db()
        server = MosaicServer(
            db.engine, port=0, session_config=db.session.config
        ).start_in_thread()
        client = Client("127.0.0.1", server.port, pool_size=1)
        try:
            assert client.execute(CLOSED_SQL).num_rows >= 1
            server.stop_in_thread()
            with pytest.raises(ConnectionLostError, match="reconnecting failed"):
                client.execute(CLOSED_SQL)
        finally:
            client.close()


class TestRingAndPartition:
    def test_ring_lookup_is_deterministic_and_fails_over(self):
        ring = HashRing(range(4))
        owner = ring.lookup("EuropeMigrants")
        assert ring.lookup("EuropeMigrants") == owner
        moved = ring.lookup("EuropeMigrants", down={owner})
        assert moved != owner
        # Keys not owned by the dead shard do not move.
        for key in ("A", "B", "C", "D", "E"):
            before = ring.lookup(key)
            if before != owner:
                assert ring.lookup(key, down={owner}) == before
        with pytest.raises(LookupError):
            ring.lookup("x", down={0, 1, 2, 3})

    def test_stable_hash_is_process_independent(self):
        # crc32, not the salted builtin hash.
        assert stable_hash("EuropeMigrants") == 558082901

    def test_round_robin_assignment_is_contiguous_and_complete(self):
        spec = PartitionSpec("T")
        assignment = spec.assign_rows(tuple(range(10)), 3)
        assert assignment == [[0, 1, 2], [3, 4, 5], [6, 7, 8, 9]]

    def test_hash_assignment_keys_on_column(self):
        spec = PartitionSpec("T", key_column="name")
        rows = (("a", 1), ("b", 2), ("a", 3))
        assignment = spec.assign_rows(rows, 2, key_index=0)
        flat = sorted(i for indices in assignment for i in indices)
        assert flat == [0, 1, 2]
        shard_of_a = stable_hash("a") % 2
        assert 0 in assignment[shard_of_a] and 2 in assignment[shard_of_a]
        with pytest.raises(ValueError, match="needs the index"):
            spec.assign_rows(rows, 2)

    def test_parse_partition_option(self):
        assert parse_partition_option("T") == ("T", PartitionSpec("T"))
        assert parse_partition_option("T:uid") == (
            "T",
            PartitionSpec("T", key_column="uid"),
        )
        with pytest.raises(ValueError):
            parse_partition_option(":uid")


class TestSpawnIndexDeterminism:
    def test_pinned_spawn_index_matches_sequential_connects(self):
        reference_db = build_tiny_db()
        sessions = [reference_db.connect() for _ in range(3)]
        pinned_db = build_tiny_db()
        # Ask for stream 2 first — out of order — then 0.
        pinned_2 = pinned_db.engine.connect(
            pinned_db.session.config, spawn_index=2
        )
        pinned_0 = pinned_db.engine.connect(
            pinned_db.session.config, spawn_index=0
        )
        assert_results_identical(
            pinned_2.execute(OPEN_SQL), sessions[2].execute(OPEN_SQL)
        )
        assert_results_identical(
            pinned_0.execute(OPEN_SQL), sessions[0].execute(OPEN_SQL)
        )

    def test_negative_spawn_index_rejected(self):
        db = build_tiny_db()
        with pytest.raises(ValueError):
            db.engine.connect(db.session.config, spawn_index=-1)
