"""Unit tests for error metrics and box-plot summaries."""

import numpy as np
import pytest

from repro.catalog.metadata import Marginal
from repro.errors import MosaicError
from repro.metrics.distribution import marginal_fit_error, sliced_wasserstein_metric
from repro.metrics.error import average_percent_difference, percent_difference
from repro.metrics.summary import boxplot_stats
from repro.relational.relation import Relation


class TestPercentDifference:
    def test_basic(self):
        assert percent_difference(110.0, 100.0) == pytest.approx(10.0)
        assert percent_difference(90.0, 100.0) == pytest.approx(10.0)

    def test_exact(self):
        assert percent_difference(5.0, 5.0) == 0.0

    def test_zero_truth(self):
        assert percent_difference(0.0, 0.0) == 0.0
        assert percent_difference(1.0, 0.0) == float("inf")

    def test_negative_truth(self):
        assert percent_difference(-90.0, -100.0) == pytest.approx(10.0)


class TestAveragePercentDifference:
    def test_common_policy(self):
        estimates = {("a",): 110.0, ("b",): 50.0, ("c",): 1.0}
        truths = {("a",): 100.0, ("b",): 100.0, ("d",): 5.0}
        # common keys: a (10%), b (50%).
        assert average_percent_difference(estimates, truths) == pytest.approx(30.0)

    def test_empty_intersection_returns_none(self):
        assert average_percent_difference({("x",): 1.0}, {("y",): 1.0}) is None

    def test_penalize_missing(self):
        estimates = {("a",): 100.0, ("fp",): 1.0}
        truths = {("a",): 100.0, ("fn",): 1.0}
        out = average_percent_difference(
            estimates, truths, policy="penalize_missing", missing_penalty=100.0
        )
        # a: 0%, fn: 100, fp: 100 -> mean 200/3.
        assert out == pytest.approx(200.0 / 3.0)

    def test_unknown_policy(self):
        with pytest.raises(MosaicError):
            average_percent_difference({}, {}, policy="magic")

    def test_scalar_answers_via_unit_key(self):
        assert average_percent_difference({(): 105.0}, {(): 100.0}) == pytest.approx(5.0)


class TestBoxplotStats:
    def test_basic_stats(self):
        stats = boxplot_stats(list(range(101)))
        assert stats.mean == pytest.approx(50.0)
        assert stats.median == pytest.approx(50.0)
        assert stats.p3 == pytest.approx(3.0)
        assert stats.p97 == pytest.approx(97.0)
        assert stats.count == 101

    def test_infinities_dropped(self):
        stats = boxplot_stats([1.0, float("inf"), 3.0])
        assert stats.count == 2
        assert stats.mean == pytest.approx(2.0)

    def test_all_infinite_raises(self):
        with pytest.raises(MosaicError):
            boxplot_stats([float("inf")])

    def test_as_row(self):
        row = boxplot_stats([1.0, 2.0]).as_row()
        assert set(row) == {"mean", "median", "p3", "p25", "p75", "p97", "count"}


class TestDistributionMetrics:
    def test_marginal_fit_perfect(self):
        rel = Relation.from_dict({"tag": ["a", "a", "b"]})
        target = Marginal.from_data(rel, ["tag"])
        assert marginal_fit_error(rel, None, target) == 0.0

    def test_marginal_fit_weighted(self):
        rel = Relation.from_dict({"tag": ["a", "b"]})
        target = Marginal(["tag"], {("a",): 3, ("b",): 1})
        weights = np.array([3.0, 1.0])
        assert marginal_fit_error(rel, weights, target) == pytest.approx(0.0)

    def test_sliced_w_zero_for_same_cloud(self):
        rng = np.random.default_rng(0)
        cloud = rng.normal(size=(200, 2))
        assert sliced_wasserstein_metric(cloud, cloud, rng) == pytest.approx(0.0, abs=1e-12)

    def test_sliced_w_detects_translation(self):
        rng = np.random.default_rng(0)
        cloud = rng.normal(size=(300, 2))
        shifted = cloud + np.array([2.0, 0.0])
        distance = sliced_wasserstein_metric(cloud, shifted, rng)
        # E|<e1, w>| over the unit circle = 2/pi for shift 2.
        assert distance == pytest.approx(2.0 * 2.0 / np.pi, rel=0.1)
