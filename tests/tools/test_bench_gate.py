"""The CI perf gate must skip gracefully, not crash, on new metrics/files."""

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "check_bench_regression.py"
_spec = importlib.util.spec_from_file_location("check_bench_regression", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


class TestLookup:
    def test_flat_and_dotted(self):
        payload = {"a_ms": 1.5, "levels": {"8": {"p50_ms": 2.5}}}
        assert gate.lookup(payload, "a_ms") == 1.5
        assert gate.lookup(payload, "levels.8.p50_ms") == 2.5

    def test_missing_segments_return_none(self):
        payload = {"levels": {"8": {"p50_ms": 2.5}}}
        assert gate.lookup(payload, "levels.32.p50_ms") is None
        assert gate.lookup(payload, "nope") is None
        assert gate.lookup(payload, "levels.8.p50_ms.deeper") is None

    def test_non_numeric_leaf_is_none(self):
        assert gate.lookup({"a": "fast"}, "a") is None


class TestCheck:
    METRICS = ("x_ms", "nested.y_ms")

    def test_ok_and_regressed(self):
        baseline = {"x_ms": 1.0, "nested": {"y_ms": 1.0}}
        good = {"x_ms": 1.5, "nested": {"y_ms": 0.5}}
        bad = {"x_ms": 2.5, "nested": {"y_ms": 0.5}}
        assert gate.check(baseline, good, 2.0, self.METRICS) == []
        failures = gate.check(baseline, bad, 2.0, self.METRICS)
        assert len(failures) == 1 and "x_ms regressed" in failures[0]

    def test_metric_missing_from_baseline_is_a_skip(self, capsys):
        # A brand-new metric has no committed baseline yet: report the
        # skip instead of raising (the historical KeyError failure mode).
        failures = gate.check({}, {"x_ms": 9.9, "nested": {"y_ms": 9.9}}, 2.0, self.METRICS)
        assert failures == []
        out = capsys.readouterr().out
        assert out.count("missing from baseline, skipping") == 2

    def test_metric_missing_from_current_fails(self):
        failures = gate.check({"x_ms": 1.0}, {}, 2.0, ("x_ms",))
        assert failures == ["x_ms: missing from current payload"]


class TestCheckScaling:
    METRICS = ("closed_qps_by_workers.4",)

    def test_ok_and_regressed(self):
        baseline = {"cpu_count": 4, "closed_qps_by_workers": {"4": 100.0}}
        good = {"cpu_count": 4, "closed_qps_by_workers": {"4": 60.0}}
        bad = {"cpu_count": 4, "closed_qps_by_workers": {"4": 40.0}}
        assert gate.check_scaling(baseline, good, 2.0, self.METRICS) == []
        failures = gate.check_scaling(baseline, bad, 2.0, self.METRICS)
        assert len(failures) == 1 and "regressed" in failures[0]

    def test_cpu_count_mismatch_skips_with_message(self, capsys):
        baseline = {"cpu_count": 16, "closed_qps_by_workers": {"4": 500.0}}
        current = {"cpu_count": 1, "closed_qps_by_workers": {"4": 10.0}}
        assert gate.check_scaling(baseline, current, 2.0, self.METRICS) == []
        out = capsys.readouterr().out
        assert "cpu_count differs (baseline 16, current 1)" in out
        assert "machine-bound" in out

    def test_metric_missing_from_current_fails(self):
        baseline = {"cpu_count": 2, "closed_qps_by_workers": {"4": 50.0}}
        failures = gate.check_scaling(baseline, {"cpu_count": 2}, 2.0, self.METRICS)
        assert failures == ["closed_qps_by_workers.4: missing from current payload"]

    def test_metric_missing_from_baseline_is_a_skip(self, capsys):
        current = {"cpu_count": 2, "closed_qps_by_workers": {"4": 50.0}}
        assert gate.check_scaling({"cpu_count": 2}, current, 2.0, self.METRICS) == []
        assert "missing from baseline, skipping" in capsys.readouterr().out


class TestCheckPair:
    def test_missing_baseline_file_is_a_skip(self, tmp_path, capsys):
        current = tmp_path / "BENCH_server.json"
        current.write_text(json.dumps({"levels": {"1": {"p50_ms": 1.0}}}))
        failures = gate.check_pair(str(tmp_path / "nope.json"), str(current), 2.0)
        assert failures == []
        assert "no committed baseline" in capsys.readouterr().out

    def test_untracked_payload_is_a_skip(self, tmp_path, capsys):
        current = tmp_path / "BENCH_mystery.json"
        current.write_text("{}")
        current2 = tmp_path / "base.json"
        current2.write_text("{}")
        failures = gate.check_pair(str(current2), str(current), 2.0)
        assert failures == []
        assert "no tracked metrics" in capsys.readouterr().out

    def test_multi_pair_main(self, tmp_path):
        engine_base = tmp_path / "engine_base.json"
        engine_base.write_text(json.dumps({"grouped_aggregate_30k_ms": 1.0}))
        engine_now = tmp_path / "BENCH_engine.json"
        engine_now.write_text(json.dumps({"grouped_aggregate_30k_ms": 1.2}))
        server_now = tmp_path / "BENCH_server.json"
        server_now.write_text(json.dumps({"levels": {"1": {"p50_ms": 3.0}}}))
        code = gate.main(
            [
                "gate",
                str(engine_base),
                str(engine_now),
                str(tmp_path / "missing_server_base.json"),
                str(server_now),
            ]
        )
        assert code == 0

    def test_parallel_payload_routes_to_scaling_gate(self, tmp_path, capsys):
        base = tmp_path / "parallel_base.json"
        base.write_text(
            json.dumps({"cpu_count": 1, "open_qps_by_workers": {"2": 50.0}})
        )
        now = tmp_path / "BENCH_parallel.json"
        now.write_text(
            json.dumps({"cpu_count": 1, "open_qps_by_workers": {"2": 10.0}})
        )
        failures = gate.check_pair(str(base), str(now), 2.0)
        assert any("open_qps_by_workers.2 regressed" in f for f in failures)

    def test_regression_fails_main(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"grouped_aggregate_30k_ms": 1.0}))
        now = tmp_path / "BENCH_engine.json"
        now.write_text(json.dumps({"grouped_aggregate_30k_ms": 5.0}))
        assert gate.main(["gate", str(base), str(now)]) == 1

    def test_usage_error(self):
        assert gate.main(["gate", "only-one-arg"]) == 2
