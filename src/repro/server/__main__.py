"""``python -m repro.server``: run a Mosaic wire server from the shell.

Boots an :class:`~repro.core.engine.Engine`, optionally executes a
bootstrap SQL script against a root session (DDL, marginals, INSERTs),
then serves until SIGINT/SIGTERM, draining in-flight queries on the way
down::

    PYTHONPATH=src python -m repro.server --port 7744 --init-sql boot.sql
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import signal
import sys

from repro.core.engine import Engine
from repro.core.session import SessionConfig
from repro.core.workers import ExecutionConfig
from repro.server.server import MosaicServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server", description="Mosaic wire server"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7744)
    parser.add_argument("--seed", type=int, default=0, help="engine RNG seed")
    parser.add_argument(
        "--init-sql",
        metavar="PATH",
        help="SQL script executed on a root session before serving",
    )
    parser.add_argument("--max-connections", type=int, default=64)
    parser.add_argument(
        "--executor-workers",
        type=int,
        default=None,
        help="query executor threads (default: max(4, 2 x cpu))",
    )
    parser.add_argument(
        "--query-timeout",
        type=float,
        default=None,
        help="per-query wall-clock limit in seconds (default: none)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="morsel-execution worker processes (default: MOSAIC_WORKERS or 0)",
    )
    parser.add_argument(
        "--shard-id",
        type=int,
        default=None,
        help="fleet shard identity (set by python -m repro.fleet)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve Prometheus /metrics on this port (0 picks a free one)",
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        help="log queries at or above this execution time to stderr",
    )
    parser.add_argument(
        "--data-dir",
        default=os.environ.get("MOSAIC_DATA_DIR") or None,
        help="durable storage directory: restore on boot, checkpoint on "
        "SIGTERM (default: MOSAIC_DATA_DIR, or in-memory only)",
    )
    return parser


async def run(args: argparse.Namespace) -> int:
    engine = Engine(
        seed=args.seed,
        execution=ExecutionConfig(processes=args.workers),
        data_dir=args.data_dir,
    )
    warm = False
    if args.data_dir:
        storage = engine.cache_stats()["storage"]
        warm = bool(storage["checkpoint"]) or storage["wal_replayed"] > 0
        print(
            "storage: restored "
            f"{storage['restored_tables']} table(s), "
            f"{storage['restored_samples']} sample(s), "
            f"{storage['restored_models']} model(s), replayed "
            f"{storage['wal_replayed']} WAL record(s) from {args.data_dir} "
            f"in {storage['restore_ms']:.1f}ms",
            file=sys.stderr,
        )
    if args.init_sql and warm:
        # The bootstrap script's DDL already lives in the restored catalog;
        # re-running it would only raise duplicate-relation errors.
        print("init: skipped (warm restore from --data-dir)", file=sys.stderr)
    elif args.init_sql:
        with open(args.init_sql) as handle:
            script = handle.read()
        session = engine.root_session(SessionConfig(seed=args.seed))
        for result in session.execute_script(script):
            for note in result.notes:
                print(f"init: {note}", file=sys.stderr)
    server = MosaicServer(
        engine,
        args.host,
        args.port,
        max_connections=args.max_connections,
        executor_workers=args.executor_workers,
        query_timeout=args.query_timeout,
        shutdown_engine=True,
        shard_id=args.shard_id,
        slow_query_ms=args.slow_query_ms,
        metrics_port=args.metrics_port,
    )
    await server.start()
    print(f"mosaic server listening on {server.host}:{server.port}", file=sys.stderr)
    if server.metrics_exporter is not None:
        print(
            f"mosaic metrics on http://{server.host}:{server.metrics_exporter.port}/metrics",
            file=sys.stderr,
        )

    loop = asyncio.get_running_loop()
    for signal_number in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):  # non-unix event loops
            loop.add_signal_handler(
                signal_number, lambda: loop.create_task(server.stop())
            )
    await server.serve_forever()
    print("mosaic server stopped", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(run(args))
    except KeyboardInterrupt:  # pragma: no cover - signal race on teardown
        return 0


if __name__ == "__main__":
    sys.exit(main())
