"""The Mosaic wire protocol: length-prefixed frames + columnar results.

Shared by :class:`~repro.server.server.MosaicServer` and
:class:`~repro.client.client.Client`; stdlib + numpy only.

Frame layout (all integers little-endian)::

    u32 length | u8 type | u32 request_id | payload[length - 5]

``length`` counts everything after itself.  Request frames carry a
client-chosen ``request_id``; every response echoes the id of the request
it answers, so responses may interleave across in-flight requests of one
connection.

Frame types::

    client -> server                     server -> client
    0x01 HELLO   (JSON handshake)        0x81 WELCOME      (JSON)
    0x02 QUERY   (UTF-8 SQL)             0x82 RESULT       (columnar result)
    0x03 SCRIPT  (UTF-8 SQL script)      0x83 RESULT_SET   (u32 n + results)
    0x04 CANCEL  (u32 target id)         0x84 STATS_RESULT (JSON)
    0x05 STATS   (empty)                 0x85 ERROR        (JSON code/message)
    0x06 GOODBYE (empty)                 0x86 BYE          (empty)
    0x07 QUERYX  (envelope + SQL)

QUERYX is QUERY with an out-of-band JSON envelope (``u32 json_length |
envelope JSON | UTF-8 SQL``) for fleet-internal execution modes: the
router asks a shard to run a SELECT as a cross-shard *partial aggregate*
(``{"mode": "partial"}`` — the RESULT header gains a ``"partial"`` merge
recipe) or to apply only its slice of an INSERT (``{"mode": "insert",
"indices": [...]}``).  The response is an ordinary RESULT frame.

Columnar result payload
-----------------------
Results ship **columnar, never row-by-row** — the storage layer's arrays
go to the wire as-is::

    u32 header_length | header JSON | column blocks...

The JSON header carries ``visibility`` / ``sample_name`` / ``notes`` /
``num_rows`` (plus ``repetitions_used`` on OPEN answers — an append-only
extension older decoders ignore) and one descriptor per column: ``{"name", "dtype",
"enc": "buf" | "dict"}``.  A ``buf`` block is ``u32 nbytes`` + the raw
little-endian buffer (``int64`` for INT, ``float64`` for FLOAT, ``uint8``
for BOOL).  A ``dict`` block is the TEXT column's dictionary encoding:
``u32 nbytes`` + the vocabulary as a JSON string array, then ``u32
nbytes`` + the ``int32`` little-endian code array — the vocabulary
crosses once, however many rows reference it.  The decoder rebuilds the
relation with :meth:`Relation.from_codes`, so the client-side relation is
*born encoded* in the server's vocabulary and bit-identical to the
in-process result.

Errors cross as ``{"code", "message", "data"}`` JSON
(:func:`repro.errors.error_to_wire`); the client re-raises the same
exception type via :func:`repro.errors.error_from_wire`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

import numpy as np

from repro.core.result import QueryResult
from repro.errors import MosaicError, ProtocolError, error_from_wire, error_to_wire
from repro.relational.dtypes import CODES_DTYPE, DType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

MAGIC = "mosaic"
PROTOCOL_VERSION = 1

#: Refuse frames beyond this size (both directions) so a corrupt or
#: malicious length prefix cannot trigger an unbounded allocation.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024 * 1024

# Client -> server frame types.
HELLO = 0x01
QUERY = 0x02
SCRIPT = 0x03
CANCEL = 0x04
STATS = 0x05
GOODBYE = 0x06
QUERYX = 0x07

# Server -> client frame types.
WELCOME = 0x81
RESULT = 0x82
RESULT_SET = 0x83
STATS_RESULT = 0x84
ERROR = 0x85
BYE = 0x86

_HEAD = struct.Struct("<I")  # frame length prefix
_TYPE_RID = struct.Struct("<BI")  # frame type + request id
_U32 = struct.Struct("<I")

#: Bytes the length prefix counts beyond the payload (type + request id).
#: A payload may be at most ``max_frame_bytes - FRAME_OVERHEAD_BYTES``.
FRAME_OVERHEAD_BYTES = _TYPE_RID.size

#: Wire buffer dtype per logical column type (always little-endian).
_BUFFER_DTYPES = {
    DType.INT: np.dtype("<i8"),
    DType.FLOAT: np.dtype("<f8"),
    DType.BOOL: np.dtype("<u1"),
}


# --------------------------------------------------------------------- #
# Frames
# --------------------------------------------------------------------- #


def build_frame(frame_type: int, request_id: int, payload: bytes = b"") -> bytes:
    """One wire frame as a single bytes object (atomic to write)."""
    return (
        _HEAD.pack(_TYPE_RID.size + len(payload))
        + _TYPE_RID.pack(frame_type, request_id)
        + payload
    )


def _split_frame(body: bytes) -> tuple[int, int, bytes]:
    frame_type, request_id = _TYPE_RID.unpack_from(body)
    return frame_type, request_id, body[_TYPE_RID.size :]


def _checked_length(raw: bytes, max_frame_bytes: int) -> int:
    (length,) = _HEAD.unpack(raw)
    if length < _TYPE_RID.size or length > max_frame_bytes:
        raise ProtocolError(
            f"invalid frame length {length} (max {max_frame_bytes} bytes)"
        )
    return length


async def read_frame_async(
    reader: asyncio.StreamReader, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[int, int, bytes]:
    """Read one frame from an asyncio stream: ``(type, request_id, payload)``."""
    try:
        head = await reader.readexactly(_HEAD.size)
        body = await reader.readexactly(_checked_length(head, max_frame_bytes))
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("connection closed mid-frame") from exc
    return _split_frame(body)


def recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> tuple[int, int, bytes]:
    """Read one frame from a blocking socket: ``(type, request_id, payload)``."""
    head = recv_exact(sock, _HEAD.size)
    body = recv_exact(sock, _checked_length(head, max_frame_bytes))
    return _split_frame(body)


def write_frame(
    sock: socket.socket, frame_type: int, request_id: int, payload: bytes = b""
) -> None:
    sock.sendall(build_frame(frame_type, request_id, payload))


def json_payload(obj: Any) -> bytes:
    return json.dumps(obj).encode("utf-8")


def parse_json_payload(payload: bytes) -> Any:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON payload: {exc}") from exc


# --------------------------------------------------------------------- #
# Extended query frames (fleet-internal execution modes)
# --------------------------------------------------------------------- #


def encode_queryx(envelope: dict, sql: str) -> bytes:
    """QUERYX payload: ``u32 json_length | envelope JSON | UTF-8 SQL``."""
    body = json_payload(envelope)
    return _U32.pack(len(body)) + body + sql.encode("utf-8")


def decode_queryx(payload: bytes) -> tuple[dict, str]:
    """``(envelope, sql)`` from a QUERYX payload."""
    if len(payload) < _U32.size:
        raise ProtocolError("truncated QUERYX payload")
    (length,) = _U32.unpack_from(payload)
    start = _U32.size
    if start + length > len(payload):
        raise ProtocolError("truncated QUERYX payload")
    envelope = parse_json_payload(payload[start : start + length])
    if not isinstance(envelope, dict):
        raise ProtocolError("QUERYX envelope must be a JSON object")
    try:
        sql = payload[start + length :].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"QUERYX SQL is not valid UTF-8: {exc}") from exc
    return envelope, sql


# --------------------------------------------------------------------- #
# Columnar result codec
# --------------------------------------------------------------------- #


def encode_result(result: QueryResult, extra_header: dict | None = None) -> bytes:
    """Serialize a :class:`QueryResult` into a columnar wire payload."""
    relation = result.relation
    descriptors = []
    blocks: list[bytes] = []
    for field in relation.schema:
        name, dtype = field.name, field.dtype
        if dtype is DType.TEXT:
            encoding = relation.encoding(name)
            if encoding is None:
                # No stored encoding (raw-constructor output): derive the
                # dense dictionary once; it is memoized on the relation.
                encoding = relation.dictionary(name)
            vocab, codes = encoding
            vocab_bytes = json_payload([str(v) for v in vocab])
            code_bytes = np.ascontiguousarray(codes, dtype="<i4").tobytes()
            blocks.append(_U32.pack(len(vocab_bytes)) + vocab_bytes)
            blocks.append(_U32.pack(len(code_bytes)) + code_bytes)
            descriptors.append({"name": name, "dtype": dtype.value, "enc": "dict"})
        else:
            buffer = np.ascontiguousarray(
                relation.column(name), dtype=_BUFFER_DTYPES[dtype]
            ).tobytes()
            blocks.append(_U32.pack(len(buffer)) + buffer)
            descriptors.append({"name": name, "dtype": dtype.value, "enc": "buf"})
    header = {
        "visibility": result.visibility,
        "sample_name": result.sample_name,
        "notes": list(result.notes),
        "num_rows": relation.num_rows,
        "columns": descriptors,
    }
    # Append-only header extensions (older decoders ignore unknown keys):
    # OPEN answers report how many repetitions the adaptive stream used,
    # traced queries carry their serialized QueryTrace, and QUERYX partial
    # responses attach their merge recipe via ``extra_header``.
    if result.repetitions_used is not None:
        header["repetitions_used"] = result.repetitions_used
    if result.trace is not None:
        header["trace"] = result.trace
    if extra_header:
        header.update(extra_header)
    header = json_payload(header)
    return b"".join([_U32.pack(len(header)), header, *blocks])


def replace_header(payload: bytes, updates: dict) -> bytes:
    """Splice ``updates`` into a result payload's JSON header.

    Re-encodes only the length-prefixed header block, leaving the column
    blocks byte-identical — the server uses this to stamp post-encoding
    phase timings (``encode_ms``) into the ``trace`` header field without
    re-serializing the relation.
    """
    if len(payload) < _U32.size:
        raise ProtocolError("truncated result payload")
    (length,) = _U32.unpack_from(payload, 0)
    body_start = _U32.size + length
    if body_start > len(payload):
        raise ProtocolError("truncated result payload")
    header = parse_json_payload(payload[_U32.size : body_start])
    header.update(updates)
    header_bytes = json_payload(header)
    return b"".join(
        [_U32.pack(len(header_bytes)), header_bytes, payload[body_start:]]
    )


class _Cursor:
    """Sequential reader over a result payload."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes, offset: int = 0):
        self.data = data
        self.offset = offset

    def block(self) -> bytes:
        if self.offset + _U32.size > len(self.data):
            raise ProtocolError("truncated result payload")
        (length,) = _U32.unpack_from(self.data, self.offset)
        start = self.offset + _U32.size
        if start + length > len(self.data):
            raise ProtocolError("truncated result payload")
        self.offset = start + length
        return self.data[start : self.offset]


def decode_result(payload: bytes) -> QueryResult:
    """Rebuild the :class:`QueryResult` an :func:`encode_result` payload holds."""
    return decode_result_with_header(payload)[0]


def decode_result_with_header(payload: bytes) -> tuple[QueryResult, dict]:
    """Like :func:`decode_result`, also returning the raw JSON header.

    The header exposes append-only extensions a plain :class:`QueryResult`
    has no field for — notably the ``"partial"`` merge recipe on QUERYX
    partial-aggregate responses.
    """
    cursor = _Cursor(payload)
    header = parse_json_payload(cursor.block())
    num_rows = int(header["num_rows"])
    fields = []
    encoded: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    plain: dict[str, np.ndarray] = {}
    for descriptor in header["columns"]:
        name = descriptor["name"]
        dtype = DType(descriptor["dtype"])
        fields.append(Field(name, dtype))
        if descriptor["enc"] == "dict":
            if dtype is not DType.TEXT:
                raise ProtocolError(f"dict encoding on non-TEXT column {name!r}")
            vocab = parse_json_payload(cursor.block())
            codes = np.frombuffer(cursor.block(), dtype="<i4").astype(
                CODES_DTYPE, copy=False
            )
            if codes.shape[0] != num_rows:
                raise ProtocolError(
                    f"column {name!r}: {codes.shape[0]} codes for {num_rows} rows"
                )
            encoded[name] = (vocab, codes)
        else:
            buffer_dtype = _BUFFER_DTYPES.get(dtype)
            if buffer_dtype is None:
                raise ProtocolError(f"buf encoding on {dtype.value} column {name!r}")
            values = np.frombuffer(cursor.block(), dtype=buffer_dtype)
            if values.shape[0] != num_rows:
                raise ProtocolError(
                    f"column {name!r}: {values.shape[0]} values for {num_rows} rows"
                )
            plain[name] = values
    relation = Relation.from_codes(Schema(fields), encoded, plain)
    repetitions_used = header.get("repetitions_used")
    result = QueryResult(
        relation,
        visibility=header.get("visibility"),
        sample_name=header.get("sample_name"),
        notes=tuple(header.get("notes") or ()),
        repetitions_used=(
            None if repetitions_used is None else int(repetitions_used)
        ),
        trace=header.get("trace"),
    )
    return result, header


def encode_result_set(results: list[QueryResult]) -> bytes:
    """RESULT_SET payload: ``u32 count`` + length-prefixed result payloads."""
    blocks = [_U32.pack(len(results))]
    for result in results:
        body = encode_result(result)
        blocks.append(_U32.pack(len(body)) + body)
    return b"".join(blocks)


def decode_result_set(payload: bytes) -> list[QueryResult]:
    if len(payload) < _U32.size:
        raise ProtocolError("truncated result-set payload")
    (count,) = _U32.unpack_from(payload)
    cursor = _Cursor(payload, offset=_U32.size)
    return [decode_result(cursor.block()) for _ in range(count)]


# --------------------------------------------------------------------- #
# Error transport
# --------------------------------------------------------------------- #


def encode_error(exc: BaseException) -> bytes:
    code, message, data = error_to_wire(exc)
    return json_payload({"code": code, "message": message, "data": data})


def decode_error(payload: bytes) -> MosaicError:
    body = parse_json_payload(payload)
    return error_from_wire(
        body.get("code", "MOSAIC"), body.get("message", ""), body.get("data")
    )
