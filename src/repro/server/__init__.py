"""The Mosaic network service layer: asyncio wire server (see §5 of
``ARCHITECTURE.md``).

- :mod:`repro.server.protocol` — the framed wire protocol and the
  columnar result codec shared with :mod:`repro.client`.
- :mod:`repro.server.server` — :class:`MosaicServer`, the asyncio TCP
  server over a shared :class:`~repro.core.engine.Engine`.
- ``python -m repro.server`` — the standalone entrypoint.
"""

from repro.server.server import MosaicServer, serve

__all__ = ["MosaicServer", "serve"]
