""":class:`MosaicServer`: the asyncio TCP service over a shared Engine.

Threading model (see ``ARCHITECTURE.md`` §5): the asyncio event loop owns
every socket — it accepts connections, reads frames, and writes responses
— while blocking query execution is bridged onto a bounded
``ThreadPoolExecutor`` via ``run_in_executor``, so the loop keeps
accepting connections and CANCEL frames while an OPEN query trains a
generator.  Inside the executor a query is ordinary
:meth:`Session.execute`, which takes the engine's readers-writer lock
exactly as in-process callers do; the server adds no locking of its own
around the engine.

Each connection gets one :class:`~repro.core.session.Session`
(``engine.connect()`` at handshake), and its queries execute **serially**
(a per-connection asyncio lock): a session is not a concurrency unit, and
serial execution keeps the session RNG stream — and therefore OPEN
answers — deterministic per connection.  Concurrency comes from many
connections, exactly like in-process threading comes from many sessions.

Backpressure is layered: ``max_connections`` refuses sockets beyond the
cap (with an ERROR frame, so clients see *why*), ``pipeline_depth`` bounds
the frames a single connection may leave in flight, the executor bounds
concurrent query threads (excess queries queue), and response writes
``await drain()`` so a slow reader stalls its own connection only.
"""

from __future__ import annotations

import asyncio
import dataclasses
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any

import os

from repro import __version__
from repro.core.engine import Engine
from repro.core.session import Session, SessionConfig
from repro.core.visibility import Visibility
from repro.observability import MetricsExporter, MetricsRegistry
from repro.observability.trace import maybe_trace
from repro.errors import (
    MosaicError,
    ProtocolError,
    QueryCancelledError,
    QueryTimeoutError,
    ServerError,
)
from repro.server import protocol
from repro.sql.ast_nodes import Insert


class _Pending:
    """Cancellation flag for one in-flight request."""

    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False


class _Connection:
    """Per-socket state: the session, in-flight requests, write path."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.session: Session | None = None
        self.inflight: dict[int, _Pending] = {}
        self.pending = 0
        # Serializes query execution per connection: the session RNG (and
        # with it OPEN determinism) depends on statement order.
        self.execute_lock = asyncio.Lock()

    def close(self) -> None:
        if self.session is not None:
            self.session.close()
        if not self.writer.is_closing():
            self.writer.close()


class MosaicServer:
    """A TCP server exposing one :class:`Engine` to network clients.

    ``engine`` may be an :class:`Engine` or a
    :class:`~repro.core.database.MosaicDB` (its engine is used).
    ``session_config`` is the template for per-connection sessions — each
    connection gets an independent deep-enough copy (the OPEN config is
    replaced, so one client's generator choice never leaks into
    another's).  ``query_timeout`` bounds wall-clock execution per query;
    the executor thread cannot be killed, so a timed-out query finishes in
    the background with its result discarded.
    """

    def __init__(
        self,
        engine: Engine | Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        session_config: SessionConfig | None = None,
        max_connections: int = 64,
        executor_workers: int | None = None,
        query_timeout: float | None = None,
        pipeline_depth: int = 32,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        handshake_timeout: float = 10.0,
        shutdown_engine: bool = False,
        shard_id: int | None = None,
        slow_query_ms: float | None = None,
        metrics_port: int | None = None,
    ):
        self.engine: Engine = getattr(engine, "engine", engine)
        self.host = host
        self.port = port
        #: Fleet identity: set when this server runs as one shard of a
        #: sharded fleet (``python -m repro.fleet``).  Surfaced in WELCOME
        #: and stats so routers and operators can tell shards apart.
        self.shard_id = shard_id
        self.session_config = session_config or SessionConfig()
        self.max_connections = max_connections
        self.executor_workers = executor_workers or max(4, (os.cpu_count() or 1) * 2)
        self.query_timeout = query_timeout
        self.pipeline_depth = pipeline_depth
        self.max_frame_bytes = max_frame_bytes
        self.handshake_timeout = handshake_timeout
        self.shutdown_engine = shutdown_engine
        #: Execution times at or above this (ms) are logged to stderr with
        #: the query's trace id; ``None`` disables the slow-query log.
        self.slow_query_ms = slow_query_ms
        #: When set, :meth:`start` serves Prometheus text exposition on
        #: this port (``0`` picks a free one — read ``metrics_exporter.port``).
        self.metrics_port = metrics_port
        self.metrics_exporter: MetricsExporter | None = None

        # Server-level counters live in their own registry (per-server, not
        # per-engine: two servers sharing an engine keep separate request
        # counts) and are merged with the engine's registry in stats() and
        # the Prometheus endpoint.
        self.metrics = MetricsRegistry()
        self._queries_total = self.metrics.counter(
            "mosaic_server_queries_total", help="Query/script frames dispatched"
        )
        self._errors_total = self.metrics.counter(
            "mosaic_server_errors_total", help="Error frames sent to clients"
        )
        self._slow_queries = self.metrics.counter(
            "mosaic_server_slow_queries_total",
            help="Queries at or above the slow_query_ms threshold",
        )
        self._query_ms = self.metrics.histogram(
            "mosaic_server_query_ms", help="Per-query execution time (ms)"
        )
        self.metrics.gauge(
            "mosaic_server_connections",
            help="Currently open client connections",
            fn=lambda: len(self._connections),
        )

        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._connections: set[_Connection] = set()
        self._connection_tasks: set[asyncio.Task] = set()
        self._query_tasks: set[asyncio.Task] = set()
        self._stopping = False
        self._stopped = asyncio.Event()
        # Set by start_in_thread for cross-thread stop scheduling.
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> "MosaicServer":
        """Bind and start accepting connections (``port=0`` picks a free one)."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_workers, thread_name_prefix="mosaic-serve"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None and self.metrics_exporter is None:
            self.metrics_exporter = MetricsExporter(
                self.render_metrics, host=self.host, port=self.metrics_port
            )
            self.metrics_exporter.start()
        return self

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or ``stop_in_thread``) is called."""
        await self._stopped.wait()

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight queries, close.

        In-flight queries get up to ``drain_timeout`` seconds to complete
        and deliver their results; new QUERY frames arriving while
        draining are refused with a ``SERVER`` error frame.  Idempotent.
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._query_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=drain_timeout)
        for connection in list(self._connections):
            connection.close()
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        if self._executor is not None:
            # No wait: a zombie query past the drain window keeps running
            # on its thread (its done-callback still releases the
            # connection lock), but stop() honours drain_timeout instead
            # of blocking until it finishes.
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self.metrics_exporter is not None:
            self.metrics_exporter.stop()
            self.metrics_exporter = None
        if self.shutdown_engine:
            # Engine.shutdown drains under the engine write lock, so with
            # shutdown_engine=True a still-running zombie statement is
            # waited for here — that is the engine's documented contract.
            self.engine.shutdown()
        self._stopped.set()

    # ------------------------------------------------------------------ #
    # Sync wrappers (benchmarks, examples, blocking callers)
    # ------------------------------------------------------------------ #

    def start_in_thread(self, timeout: float = 30.0) -> "MosaicServer":
        """Run the server on a dedicated event-loop thread; returns when bound."""
        started = threading.Event()
        failures: list[BaseException] = []

        async def main() -> None:
            try:
                await self.start()
            except BaseException as exc:  # pragma: no cover - bind failure
                failures.append(exc)
                raise
            finally:
                started.set()
            await self.serve_forever()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(main()), name="mosaic-server", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):  # pragma: no cover - startup hang
            raise ServerError("server failed to start within the timeout")
        if failures:  # pragma: no cover - bind failure
            raise ServerError(f"server failed to start: {failures[0]}")
        return self

    def stop_in_thread(self, drain_timeout: float = 10.0, join_timeout: float = 30.0) -> None:
        """Gracefully stop a server started with :meth:`start_in_thread`."""
        if self._thread is None or self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.stop(drain_timeout), self._loop)
        try:
            future.result(timeout=join_timeout)
        except (asyncio.CancelledError, RuntimeError):  # loop already closing
            pass
        self._thread.join(timeout=join_timeout)
        self._thread = None

    # ------------------------------------------------------------------ #
    # Connection handling (event loop)
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        connection = _Connection(reader, writer)
        if self._stopping or len(self._connections) >= self.max_connections:
            await self._refuse(
                connection,
                ServerError(
                    "server is shutting down"
                    if self._stopping
                    else f"connection limit reached ({self.max_connections})"
                ),
            )
            return
        self._connections.add(connection)
        try:
            if not await self._handshake(connection):
                return
            await self._read_loop(connection)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away
        except asyncio.CancelledError:
            raise
        except ProtocolError as exc:
            await self._send_error(connection, 0, exc)
        finally:
            self._connections.discard(connection)
            connection.close()

    async def _handshake(self, connection: _Connection) -> bool:
        try:
            frame_type, request_id, payload = await asyncio.wait_for(
                protocol.read_frame_async(connection.reader, self.max_frame_bytes),
                self.handshake_timeout,
            )
        except asyncio.TimeoutError:
            return False
        if frame_type != protocol.HELLO:
            await self._send_error(
                connection, request_id, ProtocolError("expected a HELLO frame")
            )
            return False
        hello = protocol.parse_json_payload(payload)
        if hello.get("magic") != protocol.MAGIC:
            await self._send_error(
                connection, request_id, ProtocolError("bad magic in HELLO")
            )
            return False
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            await self._send_error(
                connection,
                request_id,
                ProtocolError(
                    f"unsupported protocol version {hello.get('version')!r} "
                    f"(server speaks {protocol.PROTOCOL_VERSION})"
                ),
            )
            return False
        options = hello.get("options") or {}
        try:
            spawn_index = self._spawn_index_option(options)
            connection.session = self.engine.connect(
                self._connection_config(options), spawn_index=spawn_index
            )
        except MosaicError as exc:
            await self._send_error(connection, request_id, exc)
            return False
        await self._send(
            connection,
            protocol.WELCOME,
            request_id,
            protocol.json_payload(
                {
                    "version": protocol.PROTOCOL_VERSION,
                    "server": f"mosaic-repro {__version__}",
                    "session_index": connection.session.spawn_index,
                    # Append-only handshake extension: which fleet shard
                    # this server is (null outside a fleet).
                    "shard_id": self.shard_id,
                }
            ),
        )
        return True

    @staticmethod
    def _spawn_index_option(options: dict) -> int | None:
        """The HELLO ``spawn_index`` option: pin the session's RNG stream.

        The fleet router dials one connection per (logical client, shard)
        and pins them all to the client's index, so every shard replays
        the same session RNG stream as a single-engine reference.
        """
        spawn_index = options.get("spawn_index")
        if spawn_index is None:
            return None
        if isinstance(spawn_index, bool) or not isinstance(spawn_index, int):
            raise ProtocolError('HELLO option "spawn_index" must be an integer')
        if spawn_index < 0:
            raise ProtocolError('HELLO option "spawn_index" must be >= 0')
        return spawn_index

    def _connection_config(self, options: dict) -> SessionConfig:
        # Fresh OPEN config per connection: one client's generator/worker
        # tweaks must not leak into the template or sibling connections.
        config = dataclasses.replace(
            self.session_config,
            open_config=dataclasses.replace(self.session_config.open_config),
        )
        visibility = options.get("default_visibility")
        if visibility is not None:
            config.default_visibility = Visibility.parse(str(visibility))
        open_options = options.get("open")
        if open_options is not None:
            if not isinstance(open_options, dict):
                raise ProtocolError('HELLO option "open" must be an object')
            self._apply_open_options(config.open_config, open_options)
        return config

    #: HELLO "open" keys a connection may tune, with their coercions.
    #: A whitelist, not setattr-from-JSON: generator factories, row
    #: budgets and worker counts stay server-controlled.
    _OPEN_OPTION_FIELDS = {
        "repetitions": int,
        "tolerance": float,
        "min_repetitions": int,
        "max_repetitions": lambda value: None if value is None else int(value),
        "chunk_repetitions": int,
        "report_ci": bool,
    }

    @classmethod
    def _apply_open_options(cls, open_config, open_options: dict) -> None:
        for key, value in open_options.items():
            coerce = cls._OPEN_OPTION_FIELDS.get(key)
            if coerce is None:
                raise ProtocolError(f'unknown HELLO "open" option {key!r}')
            try:
                setattr(open_config, key, coerce(value))
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    f'bad HELLO "open" option {key!r}: {exc}'
                ) from exc

    async def _read_loop(self, connection: _Connection) -> None:
        while True:
            frame_type, request_id, payload = await protocol.read_frame_async(
                connection.reader, self.max_frame_bytes
            )
            if frame_type in (protocol.QUERY, protocol.SCRIPT, protocol.QUERYX):
                self._dispatch_query(connection, request_id, payload, frame_type)
            elif frame_type == protocol.CANCEL:
                if len(payload) != 4:
                    await self._send_error(
                        connection, request_id, ProtocolError("malformed CANCEL frame")
                    )
                    continue
                target = int.from_bytes(payload, "little")
                record = connection.inflight.get(target)
                # Cancelling an unknown/completed request is a no-op: the
                # response races the CANCEL frame by design.
                if record is not None:
                    record.cancelled = True
            elif frame_type == protocol.STATS:
                await self._send(
                    connection,
                    protocol.STATS_RESULT,
                    request_id,
                    protocol.json_payload(self.stats()),
                )
            elif frame_type == protocol.GOODBYE:
                await self._send(connection, protocol.BYE, request_id)
                return
            else:
                await self._send_error(
                    connection,
                    request_id,
                    ProtocolError(f"unexpected frame type 0x{frame_type:02x}"),
                )

    def _dispatch_query(
        self, connection: _Connection, request_id: int, payload: bytes, frame_type: int
    ) -> None:
        if self._stopping:
            self._fire_and_forget(
                self._send_error(
                    connection, request_id, ServerError("server is shutting down")
                )
            )
            return
        if connection.pending >= self.pipeline_depth:
            self._fire_and_forget(
                self._send_error(
                    connection,
                    request_id,
                    ServerError(
                        f"pipeline depth exceeded ({self.pipeline_depth} queries "
                        "already in flight on this connection)"
                    ),
                )
            )
            return
        if request_id in connection.inflight:
            self._fire_and_forget(
                self._send_error(
                    connection,
                    request_id,
                    ProtocolError(f"request id {request_id} is already in flight"),
                )
            )
            return
        record = _Pending()
        connection.inflight[request_id] = record
        connection.pending += 1
        self._queries_total.inc()
        task = asyncio.get_running_loop().create_task(
            self._run_query(connection, request_id, payload, record, frame_type)
        )
        self._query_tasks.add(task)
        task.add_done_callback(self._query_tasks.discard)

    def _fire_and_forget(self, coroutine) -> None:
        task = asyncio.get_running_loop().create_task(coroutine)
        self._query_tasks.add(task)
        task.add_done_callback(self._query_tasks.discard)

    # ------------------------------------------------------------------ #
    # Query execution (event loop -> executor bridge)
    # ------------------------------------------------------------------ #

    async def _run_query(
        self,
        connection: _Connection,
        request_id: int,
        payload: bytes,
        record: _Pending,
        frame_type: int,
    ) -> None:
        script = frame_type == protocol.SCRIPT
        enqueued = perf_counter()
        try:
            session = connection.session
            assert session is not None
            if frame_type == protocol.QUERYX:
                envelope, sql = protocol.decode_queryx(payload)
                encode = self._extended_call(session, envelope, sql, enqueued)
            else:
                try:
                    sql = payload.decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise ProtocolError(f"query payload is not UTF-8: {exc}") from exc
                if script:
                    encode = lambda: protocol.encode_result_set(  # noqa: E731
                        session.execute_script(sql)
                    )
                else:
                    encode = self._query_call(session, sql, enqueued)
            body = await self._execute_blocking(connection, record, encode)
            if record.cancelled:
                raise QueryCancelledError(
                    "query was cancelled; it completed anyway and the result "
                    "was discarded"
                )
            if len(body) + protocol.FRAME_OVERHEAD_BYTES > self.max_frame_bytes:
                raise ServerError(
                    f"result payload of {len(body)} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte frame limit; add a LIMIT "
                    "or raise max_frame_bytes on both ends"
                )
            await self._send(
                connection,
                protocol.RESULT_SET if script else protocol.RESULT,
                request_id,
                body,
            )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            await self._send_error(connection, request_id, exc)
        finally:
            connection.inflight.pop(request_id, None)
            connection.pending -= 1

    def _query_call(self, session: Session, sql: str, enqueued: float):
        """The executor-thread callable for one QUERY frame.

        Runs on the executor: measures the queue-wait (dispatch to thread
        start), execution, and encoding phases, stamps them into the
        result's ``trace`` header when the query was traced, feeds the
        latency histogram, and writes the slow-query log line.
        """

        def encode_query() -> bytes:
            started = perf_counter()
            result = session.execute(sql)
            executed = perf_counter()
            body = self._finish_encode(
                result,
                lambda: protocol.encode_result(result),
                enqueued,
                started,
                executed,
            )
            self._observe_query(sql, result, (executed - started) * 1e3)
            return body

        return encode_query

    def _finish_encode(
        self, result, encode, enqueued: float, started: float, executed: float
    ) -> bytes:
        """Encode ``result``, stamping server phase timings into its trace.

        The ``server`` section is written into ``result.trace`` *before*
        encoding (so it rides the header out), then ``encode_ms`` — only
        measurable after encoding — is spliced in via
        :func:`protocol.replace_header`, which rewrites the header block
        and leaves the column blocks byte-identical.
        """
        if result.trace is None:
            return encode()
        server_phase = {
            "queue_wait_ms": round((started - enqueued) * 1e3, 4),
            "execute_ms": round((executed - started) * 1e3, 4),
        }
        if self.shard_id is not None:
            server_phase["shard_id"] = self.shard_id
        result.trace["server"] = server_phase
        body = encode()
        server_phase["encode_ms"] = round((perf_counter() - executed) * 1e3, 4)
        return protocol.replace_header(body, {"trace": result.trace})

    def _observe_query(self, sql: str, result, execute_ms: float) -> None:
        self._query_ms.observe(execute_ms)
        if self.slow_query_ms is not None and execute_ms >= self.slow_query_ms:
            self._slow_queries.inc()
            trace_id = (result.trace or {}).get("trace_id", "-")
            shard = "" if self.shard_id is None else f" shard={self.shard_id}"
            text = sql if len(sql) <= 200 else sql[:197] + "..."
            print(
                f"mosaic slow query{shard}: {execute_ms:.1f}ms "
                f"trace={trace_id} sql={text!r}",
                file=sys.stderr,
                flush=True,
            )

    def _extended_call(
        self, session: Session, envelope: dict, sql: str, enqueued: float
    ):
        """The executor-thread callable for one QUERYX frame."""
        mode = envelope.get("mode")
        if mode == "partial":

            def encode_partial() -> bytes:
                # Partial (scatter) calls trace under the same sampler so a
                # traced fleet query can stitch shard traces; the trace is
                # created here — not inherited — because run_in_executor
                # does not copy the event loop's context.
                started = perf_counter()
                trace = maybe_trace()
                if trace is None:
                    result, recipe = self.engine.execute_partial(sql, session)
                else:
                    with trace.activate():
                        result, recipe = self.engine.execute_partial(sql, session)
                    trace.finish()
                    result.trace = trace.to_dict()
                executed = perf_counter()
                body = self._finish_encode(
                    result,
                    lambda: protocol.encode_result(
                        result, extra_header={"partial": recipe}
                    ),
                    enqueued,
                    started,
                    executed,
                )
                self._observe_query(sql, result, (executed - started) * 1e3)
                return body

            return encode_partial
        if mode == "insert":
            indices = envelope.get("indices")
            if not isinstance(indices, list) or not all(
                isinstance(index, int) and not isinstance(index, bool) and index >= 0
                for index in indices
            ):
                raise ProtocolError(
                    'QUERYX insert envelope needs "indices": a list of ints >= 0'
                )

            def encode_insert() -> bytes:
                statement = self.engine.parse_sql(sql)
                if not isinstance(statement, Insert):
                    raise ProtocolError(
                        "QUERYX insert mode requires an INSERT statement, got "
                        f"{type(statement).__name__}"
                    )
                rows = statement.rows
                out_of_range = [index for index in indices if index >= len(rows)]
                if out_of_range:
                    raise ProtocolError(
                        f"QUERYX insert index {out_of_range[0]} out of range "
                        f"for {len(rows)} rows"
                    )
                # Re-slice the *parsed* statement: row values never
                # re-serialize (no float round-trips), and the shard
                # applies exactly the indices the router assigned it.
                sliced = dataclasses.replace(
                    statement, rows=tuple(rows[index] for index in indices)
                )
                return protocol.encode_result(session.execute_statement(sliced))

            return encode_insert
        raise ProtocolError(f"unknown QUERYX mode {mode!r}")

    async def _execute_blocking(
        self, connection: _Connection, record: _Pending, encode
    ) -> bytes:
        """Run one statement on the executor, serialized per connection.

        ``encode`` produces the already-encoded response payload: both
        execution and columnar serialization happen on the executor
        thread, so a large result never stalls the event loop.  The
        per-connection lock is held until the executor thread actually
        finishes — even past a timeout — so a zombie query can never
        interleave with its successor on the same session.
        """
        assert self._executor is not None

        def call() -> bytes:
            if record.cancelled:
                raise QueryCancelledError("query cancelled before execution started")
            return encode()

        await connection.execute_lock.acquire()
        if record.cancelled:
            connection.execute_lock.release()
            raise QueryCancelledError("query cancelled while queued")
        loop = asyncio.get_running_loop()
        try:
            future = loop.run_in_executor(self._executor, call)
        except BaseException:
            connection.execute_lock.release()
            raise

        def release(done_future):
            connection.execute_lock.release()
            if not done_future.cancelled():
                done_future.exception()  # mark retrieved for abandoned futures

        future.add_done_callback(release)
        if self.query_timeout is None:
            return await asyncio.shield(future)
        try:
            return await asyncio.wait_for(asyncio.shield(future), self.query_timeout)
        except asyncio.TimeoutError:
            # The thread cannot be killed: flag the record so the eventual
            # result is discarded, and answer the client now.
            record.cancelled = True
            raise QueryTimeoutError(
                f"query exceeded the server's {self.query_timeout}s execution limit"
            ) from None

    # ------------------------------------------------------------------ #
    # Responses
    # ------------------------------------------------------------------ #

    async def _send(
        self,
        connection: _Connection,
        frame_type: int,
        request_id: int,
        payload: bytes = b"",
    ) -> None:
        if connection.writer.is_closing():
            return
        # build_frame returns one bytes object and write() is synchronous,
        # so frames never interleave even across concurrent query tasks;
        # drain() applies transport backpressure per connection.
        connection.writer.write(protocol.build_frame(frame_type, request_id, payload))
        try:
            await connection.writer.drain()
        except ConnectionError:
            pass

    async def _send_error(
        self, connection: _Connection, request_id: int, exc: BaseException
    ) -> None:
        self._errors_total.inc()
        await self._send(
            connection, protocol.ERROR, request_id, protocol.encode_error(exc)
        )

    async def _refuse(self, connection: _Connection, exc: MosaicError) -> None:
        await self._send_error(connection, 0, exc)
        connection.close()

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Server counters plus the engine's cache statistics.

        ``metrics`` is the flat registry snapshot (engine + server
        families merged) — the same numbers the Prometheus endpoint
        renders, exposed to wire clients via :meth:`Client.metrics`.
        """
        return {
            "server": {
                "connections": len(self._connections),
                "max_connections": self.max_connections,
                "active_queries": sum(
                    1 for task in self._query_tasks if not task.done()
                ),
                "queries_total": int(self._queries_total.value()),
                "errors_total": int(self._errors_total.value()),
                "slow_queries_total": int(self._slow_queries.value()),
                "executor_workers": self.executor_workers,
                "query_timeout": self.query_timeout,
                "shard_id": self.shard_id,
            },
            "engine": self.engine.cache_stats(),
            "metrics": {
                **self.engine.metrics.snapshot(),
                **self.metrics.snapshot(),
            },
        }

    def render_metrics(self) -> str:
        """Prometheus text exposition for this server: the engine's
        registry (caches, pool, OPEN adaptive) plus the server's own
        (requests, errors, latency histogram)."""
        return self.engine.metrics.render_prometheus() + self.metrics.render_prometheus()


async def serve(engine: Engine | Any, host: str = "127.0.0.1", port: int = 7744, **kwargs) -> MosaicServer:
    """Start a :class:`MosaicServer` and return it (convenience wrapper)."""
    server = MosaicServer(engine, host, port, **kwargs)
    await server.start()
    return server
