"""A writer-preferring readers-writer lock for the shared :class:`Engine`.

The engine's concurrency contract (see ``ARCHITECTURE.md``, "Engine /
Session split") is coarse and simple: any number of SELECTs may run
concurrently (read side), while DDL / INSERT / UPDATE WEIGHTS statements
run exclusively (write side).  Writer preference — a waiting writer blocks
*new* readers — keeps a steady stream of cheap cached SELECTs from
starving catalog mutations forever.

The lock is **not reentrant** on either side: engine entry points acquire
it exactly once and every internal helper runs lock-free under the
caller's hold.  Acquiring the write side while holding the read side (or
nesting two write acquisitions on one thread) deadlocks, by design — the
engine never does either.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class ReadWriteLock:
    """Multiple concurrent readers xor one exclusive writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #

    def acquire_read(self) -> None:
        with self._cond:
            # Writer preference: queue behind any waiting writer so a
            # SELECT storm cannot starve DDL.
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._active_readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadWriteLock(readers={self._active_readers}, "
            f"writer={self._writer_active}, waiting={self._writers_waiting})"
        )
