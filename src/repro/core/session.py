"""Session-level defaults for a :class:`~repro.core.database.MosaicDB`."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.visibility import Visibility
from repro.engine.open_world import OpenQueryConfig


@dataclass
class SessionConfig:
    """Tunable defaults for one database session.

    ``default_visibility`` applies when a population query omits the
    visibility keyword.  The paper leaves the default open; SEMI-OPEN is
    the conservative open-world choice (no false positives), so it is ours.

    ``combine_samples`` enables the Sec. 7 "Multiple Samples" extension:
    union all schema-compatible samples of a population before reweighting
    instead of picking the single largest.

    The ``*_cache_size`` fields bound the compiled-pipeline caches (see
    ``ARCHITECTURE.md``): parsed statements and logical plans per SQL text,
    debiased SEMI-OPEN weight vectors per (population, sample), and fitted
    OPEN generators per (population, sample).  Set a size to 0 to disable
    that cache (every query recomputes from scratch).
    """

    seed: int = 0
    default_visibility: Visibility = Visibility.SEMI_OPEN
    combine_samples: bool = False
    open_config: OpenQueryConfig = field(default_factory=OpenQueryConfig)
    statement_cache_size: int = 256
    plan_cache_size: int = 256
    reweight_cache_size: int = 64
    generator_cache_size: int = 32
