"""Per-connection state: :class:`SessionConfig` defaults and :class:`Session`.

A :class:`Session` is the cheap, per-client half of the Engine / Session
split (see ``ARCHITECTURE.md``): it carries only the client's tunable
defaults (:class:`SessionConfig`) and a private deterministic RNG, and
delegates every statement to the shared thread-safe
:class:`~repro.core.engine.Engine`.  Sessions are cheap to create
(``engine.connect()`` / ``MosaicDB.connect()``) and many may execute
concurrently; one session object is *not* itself a concurrency unit —
issue concurrent statements from distinct sessions, one per thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.core.visibility import Visibility
from repro.engine.open_world import OpenQueryConfig
from repro.errors import SessionClosedError
from repro.observability.trace import maybe_trace

if TYPE_CHECKING:
    from repro.catalog.metadata import Marginal
    from repro.catalog.sample import SampleRelation
    from repro.core.engine import Engine
    from repro.core.result import QueryResult
    from repro.mechanisms.base import SamplingMechanism
    from repro.relational.relation import Relation


@dataclass
class SessionConfig:
    """Tunable defaults for one database session.

    ``default_visibility`` applies when a population query omits the
    visibility keyword.  The paper leaves the default open; SEMI-OPEN is
    the conservative open-world choice (no false positives), so it is ours.

    ``combine_samples`` enables the Sec. 7 "Multiple Samples" extension:
    union all schema-compatible samples of a population before reweighting
    instead of picking the single largest.

    ``seed`` seeds the facade's root session RNG.  Sessions opened with
    ``connect()`` ignore it: their RNGs are spawned deterministically from
    the engine's root ``np.random.SeedSequence`` instead.

    The ``*_cache_size`` fields bound the engine-level compiled-pipeline
    caches (see ``ARCHITECTURE.md``): parsed statements and logical plans
    per SQL text, debiased SEMI-OPEN weight vectors per (population,
    sample), and fitted OPEN generators per (population, sample, factory).
    They take effect when the *engine* is constructed (``MosaicDB()``
    reads them from its root config); the caches are shared by every
    session of that engine.  Set a size to 0 to disable that cache.
    """

    seed: int = 0
    default_visibility: Visibility = Visibility.SEMI_OPEN
    combine_samples: bool = False
    open_config: OpenQueryConfig = field(default_factory=OpenQueryConfig)
    statement_cache_size: int = 256
    plan_cache_size: int = 256
    reweight_cache_size: int = 64
    generator_cache_size: int = 32


class Session:
    """One client's connection to a shared :class:`Engine`.

    Holds the per-connection defaults and a deterministic private RNG; all
    catalog state and caches live on the engine.  Created via
    :meth:`Engine.connect` (RNG spawned from the engine's root
    ``SeedSequence``) or :meth:`Engine.root_session` (RNG seeded directly,
    the facade's backward-compatible path).
    """

    def __init__(
        self,
        engine: "Engine",
        config: SessionConfig,
        rng: np.random.Generator,
        spawn_index: int | None = None,
    ):
        self.engine = engine
        self.config = config
        self.rng = rng
        #: Connection ordinal for sessions opened via :meth:`Engine.connect`
        #: (``None`` for root sessions).  Determines the RNG stream: session
        #: ``k`` draws from child ``k`` of the engine's root SeedSequence,
        #: so the index is what a network client needs to reproduce this
        #: session's OPEN answers in-process.
        self.spawn_index = spawn_index
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close this session; further statements raise ``SessionClosedError``.

        Idempotent.  Sessions hold no engine-side resources (the catalog
        and caches are the engine's), so closing is purely a deterministic
        teardown marker — the server relies on it to fence queries racing a
        disconnecting client.
        """
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("session is closed")

    # ------------------------------------------------------------------ #
    # SQL entry points
    # ------------------------------------------------------------------ #

    def execute(self, sql: str) -> "QueryResult":
        """Parse and run one statement; DDL returns an empty status result.

        This is the tracing root: when the deterministic sampler elects
        this query (``MOSAIC_TRACE_SAMPLE``), a
        :class:`~repro.observability.QueryTrace` is activated around the
        whole parse→bind→compile→execute pipeline and its serialized form
        rides out on ``result.trace``.  Unsampled queries take the
        original untraced path (one env read + one counter bump).
        """
        self._check_open()
        trace = maybe_trace()
        if trace is None:
            return self.engine.execute(sql, self)
        with trace.activate():
            result = self.engine.execute(sql, self)
        trace.finish()
        if result.trace is None:
            # EXPLAIN ANALYZE builds its own trace payload; keep it.
            result.trace = trace.to_dict()
        return result

    def execute_script(self, sql: str) -> list["QueryResult"]:
        """Run a ``;``-separated script, returning one result per statement."""
        self._check_open()
        return self.engine.execute_script(sql, self)

    def query(self, sql: str) -> "QueryResult":
        """Alias of :meth:`execute` for read-only callers."""
        return self.execute(sql)

    def execute_statement(self, statement, sql_text: str | None = None) -> "QueryResult":
        """Run an already-parsed (programmatic) statement AST."""
        self._check_open()
        return self.engine.execute_statement(statement, self, sql_text=sql_text)

    # ------------------------------------------------------------------ #
    # Programmatic API (delegated; engine handles locking)
    # ------------------------------------------------------------------ #

    @property
    def catalog(self):
        return self.engine.catalog

    def ingest_relation(self, name: str, relation: "Relation") -> None:
        self.engine.ingest_relation(name, relation)

    def ingest_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> None:
        self.engine.ingest_rows(name, rows)

    def draw_sample(
        self,
        name: str,
        population_name: str,
        population_data: "Relation",
        mechanism: "SamplingMechanism",
    ) -> "SampleRelation":
        """Draw a concrete sample using this session's RNG."""
        return self.engine.draw_sample(
            name, population_name, population_data, mechanism, rng=self.rng
        )

    def register_marginal(
        self, metadata_name: str, population_name: str, marginal: "Marginal"
    ) -> None:
        self.engine.register_marginal(metadata_name, population_name, marginal)

    def set_open_generator(self, factory) -> None:
        """Replace this session's OPEN generator factory.

        Fitted generators are cached per (population, sample, factory), so
        no global invalidation is needed: the new factory maps to fresh
        cache keys, and other sessions' models stay warm.
        """
        self.config.open_config.generator_factory = factory

    # ------------------------------------------------------------------ #
    # Engine observability passthroughs
    # ------------------------------------------------------------------ #

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Engine-wide cache counters (shared across sessions)."""
        return self.engine.cache_stats()

    def clear_caches(self) -> None:
        self.engine.clear_caches()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(default_visibility={self.config.default_visibility}, "
            f"engine={self.engine!r})"
        )
