"""Session-level defaults for a :class:`~repro.core.database.MosaicDB`."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.visibility import Visibility
from repro.engine.open_world import OpenQueryConfig


@dataclass
class SessionConfig:
    """Tunable defaults for one database session.

    ``default_visibility`` applies when a population query omits the
    visibility keyword.  The paper leaves the default open; SEMI-OPEN is
    the conservative open-world choice (no false positives), so it is ours.

    ``combine_samples`` enables the Sec. 7 "Multiple Samples" extension:
    union all schema-compatible samples of a population before reweighting
    instead of picking the single largest.
    """

    seed: int = 0
    default_visibility: Visibility = Visibility.SEMI_OPEN
    combine_samples: bool = False
    open_config: OpenQueryConfig = field(default_factory=OpenQueryConfig)
