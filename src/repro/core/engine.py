"""The shared :class:`Engine`: catalog + caches behind a readers-writer lock.

The engine is the process-wide half of the Engine / Session split (see
``ARCHITECTURE.md``).  It owns everything shared between connections:

- the :class:`~repro.catalog.catalog.Catalog` of populations, samples,
  auxiliary tables and metadata,
- the four pipeline caches (parsed statements, logical plans, SEMI-OPEN
  reweights, fitted OPEN generators),
- the :class:`~repro.core.locks.ReadWriteLock` that serializes catalog
  mutation against concurrent reads.

Per-connection state — default visibility, OPEN configuration, the
session RNG — lives in :class:`~repro.core.session.Session`; every
statement entry point here takes the calling session as an argument.

Locking contract
----------------
SELECT statements run under the **read** lock: any number execute
concurrently, and the catalog objects they read (sample tuples/weights,
population metadata, uids and versions) cannot change underneath them.
DDL, INSERT, and UPDATE WEIGHTS run under the **write** lock, fully
exclusive.  The caches are internally thread-safe, so read-side execution
may populate them without upgrading the lock.  All lock acquisition
happens in :meth:`_execute_statement`; every ``_run_*`` helper below runs
lock-free under the caller's hold and must never re-enter ``execute``.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.catalog.catalog import Catalog
from repro.catalog.metadata import Marginal
from repro.catalog.population import PopulationRelation
from repro.catalog.sample import SampleRelation
from repro.core.caches import LRUCache, VersionedLRUCache
from repro.core.locks import ReadWriteLock
from repro.core.result import QueryResult
from repro.core.visibility import Visibility
from repro.core.workers import ExecutionConfig, ParallelExecution
from repro.engine.closed import closed_source, evaluate_closed
from repro.engine.compiler import (
    compile_select,
    execute_plan,
    execute_plan_partial,
    partial_aggregate_form,
)
from repro.engine.executor import execute_select
from repro.engine.open_world import evaluate_open, uses_batched_execution
from repro.engine.plan import LogicalPlan
from repro.engine.planner import PlannedSource, choose_sample
from repro.engine.semi_open import evaluate_semi_open, reweighted_sample
from repro.errors import (
    CatalogError,
    PartialUnsupportedError,
    SessionClosedError,
    SqlCompileError,
    VisibilityError,
)
from repro.mechanisms import StratifiedMechanism, UniformMechanism
from repro.mechanisms.base import SamplingMechanism
from repro.observability import MetricsRegistry, QueryTrace, current_trace
from repro.relational.relation import Relation, dictionary_stats
from repro.relational.schema import Field, Schema
from repro.sql.ast_nodes import (
    CreateMetadata,
    CreatePopulation,
    CreateSample,
    CreateTable,
    Drop,
    ExplainAnalyze,
    Insert,
    MechanismSpec,
    SelectQuery,
    Statement,
    UpdateWeights,
)
from repro.sql.binder import bind_expression, require_column
from repro.sql.parser import parse_script, parse_statement
from repro.storage.store import DurableStore

if TYPE_CHECKING:  # circular at runtime: session imports engine for typing only
    from repro.core.session import Session, SessionConfig


class Engine:
    """The shared, thread-safe core a set of sessions executes against."""

    def __init__(
        self,
        seed: int = 0,
        statement_cache_size: int = 256,
        plan_cache_size: int = 256,
        reweight_cache_size: int = 64,
        generator_cache_size: int = 32,
        execution: ExecutionConfig | None = None,
        data_dir: str | os.PathLike | None = None,
        wal_sync: bool = False,
    ):
        self.catalog = Catalog()
        self._lock = ReadWriteLock()
        # Deterministic session spawning: session k (in connect order) draws
        # its RNG from child k of this root SeedSequence, so a fixed engine
        # seed plus a fixed connection order reproduces every session's
        # random stream exactly (np.random.SeedSequence spawn semantics).
        self._seed_sequence = np.random.SeedSequence(seed)
        self._spawned_sessions = itertools.count()
        # Children are cached so connect(spawn_index=k) can deterministically
        # (re)produce child k regardless of connect order — the fleet router
        # uses this to replay one logical client's RNG stream on every shard.
        self._seed_children: list[np.random.SeedSequence] = []
        self._spawn_mutex = threading.Lock()
        # Pipeline caches (see ARCHITECTURE.md).  Statement/plan caches key
        # on immutable inputs (SQL text, relation kind, schema fingerprint,
        # weightedness) and never need invalidation; model caches key on
        # catalog uids (+ generator factory) and validate per-entry version
        # stamps.  All four are internally thread-safe.
        self._statement_cache: LRUCache = LRUCache(statement_cache_size)
        self._plan_cache: LRUCache = LRUCache(plan_cache_size)
        self._reweight_cache: VersionedLRUCache = VersionedLRUCache(reweight_cache_size)
        self._open_generators: VersionedLRUCache = VersionedLRUCache(
            generator_cache_size
        )
        # Unified metrics registry (ARCHITECTURE.md §9).  Counters use
        # lock-free per-thread shards, so concurrent SELECTs under the
        # *read* lock can never lose increments (the race the old plain
        # ``self._x += 1`` telemetry ints had); cache stats surface as
        # fn-backed gauges evaluated at scrape time — zero hot-path cost.
        self.metrics = MetricsRegistry()
        self._open_adaptive_runs = self.metrics.counter(
            "mosaic_open_adaptive_runs_total",
            "OPEN queries that took the adaptive streaming path",
        )
        self._open_adaptive_early_stops = self.metrics.counter(
            "mosaic_open_adaptive_early_stops_total",
            "Adaptive OPEN runs that met the CI tolerance before the cap",
        )
        for cache_name, cache in (
            ("statements", self._statement_cache),
            ("plans", self._plan_cache),
            ("reweights", self._reweight_cache),
            ("generators", self._open_generators),
        ):
            for stat in ("size", "hits", "misses"):
                self.metrics.gauge(
                    f"mosaic_cache_{stat}",
                    f"Pipeline cache {stat} (per cache)",
                    labels={"cache": cache_name},
                    fn=lambda c=cache, s=stat: c.stats()[s],
                )
        self.metrics.gauge(
            "mosaic_catalog_version",
            "DDL counter (bumps on every catalog mutation)",
            fn=lambda: self.catalog.version,
        )
        # The OPEN-repetition pool: one engine-owned executor shared by
        # every concurrent OPEN query (created lazily, drained by
        # shutdown()).  Sharing bounds the process to one set of worker
        # threads under concurrent OPEN load instead of a pool per query.
        self._open_pool: ThreadPoolExecutor | None = None
        self._open_pool_mutex = threading.Lock()
        # Morsel-driven multi-process execution (ARCHITECTURE.md §7): the
        # context owns the worker pool and the shared-memory segment store.
        # With processes=0 (the default unless MOSAIC_WORKERS is set) no
        # processes ever start, but large scans still take the morsel
        # path, so answers are bit-identical across worker counts.
        self._execution = ParallelExecution(execution, registry=self.metrics)
        self._closed = False
        # Durable storage (ARCHITECTURE.md §10): with a data_dir the engine
        # restores the catalog + fitted models from the last checkpoint and
        # replays the WAL tail before serving its first statement.
        # TEMPORARY tables are transient by contract: their names live here
        # and are excluded from both the WAL and checkpoints.
        self._transient_tables: set[str] = set()
        self._durable: DurableStore | None = None
        if data_dir is not None:
            self._durable = DurableStore(data_dir, wal_sync=wal_sync)
            self._durable.open(self)
            self.metrics.gauge(
                "mosaic_wal_bytes",
                "Bytes of write-ahead log not yet absorbed by a checkpoint",
                fn=self._durable.wal_size,
            )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def execution(self) -> ParallelExecution:
        """The engine's parallel execution context (pool + segment store)."""
        return self._execution

    def shutdown(self) -> None:
        """Shut the engine down: drain the OPEN-repetition pool, then fence.

        Idempotent.  In-flight statements complete: the fence is raised
        under the engine's *write* lock, so every statement already past
        its entry check finishes (and submits all its repetition rounds)
        before the flag flips, and the pool shutdown then waits for those
        rounds.  Statements issued afterwards raise
        :class:`SessionClosedError`.  The catalog stays readable for
        post-mortem inspection — shutdown is about deterministic thread
        teardown, not data destruction.
        """
        with self._lock.write_locked():
            with self._open_pool_mutex:
                pool, self._open_pool = self._open_pool, None
                self._closed = True
        if pool is not None:
            pool.shutdown(wait=True)
        # After the fence: no statement can reach the worker pool or lease
        # a segment, so stopping the workers and unlinking every shared
        # segment here is race-free (and idempotent).
        self._execution.shutdown()
        # Final durable flush: one last checkpoint persists every model
        # fitted this run and leaves an empty WAL, so the next boot is a
        # pure O(1) mmap restore with nothing to replay.
        if self._durable is not None and not self._durable.closed:
            try:
                self._durable.checkpoint(self)
            finally:
                self._durable.close()

    def _open_repetition_pool(self) -> ThreadPoolExecutor:
        """The shared executor OPEN repetitions fan out across (lazy)."""
        with self._open_pool_mutex:
            if self._closed:
                raise SessionClosedError("engine has been shut down")
            if self._open_pool is None:
                self._open_pool = ThreadPoolExecutor(
                    max_workers=max(4, os.cpu_count() or 1),
                    thread_name_prefix="mosaic-open",
                )
            return self._open_pool

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #

    def connect(
        self,
        config: "SessionConfig | None" = None,
        spawn_index: int | None = None,
    ) -> "Session":
        """Open a new session over this engine.

        Each session gets an independent deterministic RNG stream: child
        ``k`` of the engine's root :class:`~numpy.random.SeedSequence`,
        where ``k`` counts connections in order.  ``config.seed`` is
        ignored for spawned sessions (set an explicit
        ``np.random.default_rng`` on the session to override).

        An explicit ``spawn_index`` pins the session to child ``k``
        directly, without advancing the connection counter.  Child ``k`` is
        the *same* SeedSequence either way (children are cached), so an
        engine that sees connections ``spawn_index=0..n`` replays exactly
        the streams an engine with ``n`` plain connects produced — the
        fleet router relies on this to make every shard's session-``k``
        RNG identical to the single-engine reference.  Mixing both schemes
        on one engine can alias streams (a plain connect may land on an
        index already pinned explicitly).
        """
        from repro.core.session import Session, SessionConfig

        if self._closed:
            raise SessionClosedError("engine has been shut down")
        with self._spawn_mutex:
            index = next(self._spawned_sessions) if spawn_index is None else spawn_index
            if index < 0:
                raise ValueError(f"spawn_index must be >= 0, got {index}")
            child = self._seed_child(index)
        return Session(
            engine=self,
            config=config if config is not None else SessionConfig(),
            rng=np.random.default_rng(child),
            spawn_index=index,
        )

    def _seed_child(self, index: int) -> np.random.SeedSequence:
        """Child ``index`` of the root SeedSequence (caller holds the mutex).

        Successive ``spawn(1)`` calls yield children ``0, 1, 2, ...`` (the
        root's ``n_children_spawned`` advances), so spawning forward and
        caching gives random access to the deterministic child sequence.
        """
        while len(self._seed_children) <= index:
            child = self._seed_sequence.spawn(1)[0]
            assert child.spawn_key[-1] == len(self._seed_children)
            self._seed_children.append(child)
        return self._seed_children[index]

    def root_session(self, config: "SessionConfig") -> "Session":
        """The facade's default session: RNG seeded exactly like the
        pre-split ``MosaicDB`` (``np.random.default_rng(config.seed)``),
        preserving bit-for-bit reproducibility of existing seeds."""
        from repro.core.session import Session

        return Session(
            engine=self,
            config=config,
            rng=np.random.default_rng(config.seed),
        )

    # ------------------------------------------------------------------ #
    # SQL entry points
    # ------------------------------------------------------------------ #

    def parse_sql(self, sql: str) -> Statement:
        """Parse one statement through the shared statement cache.

        Public so protocol layers (the server's QUERYX dispatch, the fleet
        router's statement classification) can reuse cached parses instead
        of re-tokenising every request.
        """
        statement = self._statement_cache.get(sql)
        if statement is None:
            statement = parse_statement(sql)
            self._statement_cache.put(sql, statement)
        return statement

    def execute(self, sql: str, session: "Session") -> QueryResult:
        """Parse and run one statement; DDL returns an empty status result."""
        trace = current_trace()
        if trace is None:
            return self._execute_statement(self.parse_sql(sql), session, sql_text=sql)
        with trace.span("parse") as span:
            statement = self.parse_sql(sql)
            span["statement"] = type(statement).__name__
        return self._execute_statement(statement, session, sql_text=sql)

    def execute_script(self, sql: str, session: "Session") -> list[QueryResult]:
        """Run a ``;``-separated script, returning one result per statement."""
        # Scripts cache like single statements: the parsed list under a
        # ("script", text) key, and each statement's plan under a synthetic
        # per-position text (NUL never occurs in real SQL, so these keys
        # cannot collide with execute()'s).
        key = ("script", sql)
        statements = self._statement_cache.get(key)
        if statements is None:
            statements = parse_script(sql)
            self._statement_cache.put(key, statements)
        return [
            self._execute_statement(
                statement, session, sql_text=f"{sql}\x00{position}"
            )
            for position, statement in enumerate(statements)
        ]

    def execute_statement(
        self, statement: Statement, session: "Session", sql_text: str | None = None
    ) -> QueryResult:
        """Run an already-parsed (programmatic) statement AST.

        Without ``sql_text`` the plan cache is bypassed — a programmatic
        AST has no stable text to key on.
        """
        return self._execute_statement(statement, session, sql_text=sql_text)

    def execute_partial(
        self, sql: str, session: "Session"
    ) -> tuple[QueryResult, dict]:
        """Run ``sql`` as one shard's fragment of a scattered aggregate.

        The fleet router slices a relation across shards and sends every
        shard the *same* SELECT with this entry point; each shard returns
        its partial-aggregate relation plus the JSON merge recipe (computed
        from the plan alone, so identical on every shard), and the router
        re-reduces with :func:`~repro.relational.kernels.merge_partial_aggregates`.

        Only shard-locally computable paths are supported: auxiliary
        tables, samples queried directly (CLOSED, or SEMI-OPEN with stored
        weights — each shard holds its rows' weights), and population
        CLOSED (sample tuples + view predicate).  Population SEMI-OPEN
        reweights against *global* marginals and population OPEN generates
        from a globally fitted model — neither decomposes over a sliced
        relation, so both raise :class:`PartialUnsupportedError` directing
        the operator to replicate the relation instead.
        """
        statement = self.parse_sql(sql)
        if not isinstance(statement, SelectQuery):
            raise PartialUnsupportedError(
                "only SELECT statements can run as cross-shard partials"
            )
        with self._lock.read_locked():
            self._check_open()
            return self._run_partial_select(statement, session, sql)

    def _run_partial_select(
        self, query: SelectQuery, session: "Session", sql_text: str
    ) -> tuple[QueryResult, dict]:
        kind = self.catalog.kind_of(query.table)
        weights = None
        notes: list[str] = []
        sample_name = None
        if kind == "auxiliary":
            if query.visibility not in (None, Visibility.CLOSED):
                raise VisibilityError(
                    "visibility keywords only apply to populations and samples; "
                    f"{query.table!r} is an auxiliary table"
                )
            visibility = Visibility.CLOSED
            relation = self.catalog.auxiliary(query.table)
        elif kind == "sample":
            sample = self.catalog.sample(query.table)
            visibility = query.visibility or Visibility.CLOSED
            if visibility is Visibility.OPEN:
                raise VisibilityError(
                    "OPEN queries target populations, not samples; query the "
                    f"population {sample.population!r} instead"
                )
            if visibility is Visibility.SEMI_OPEN:
                weights = sample.weights
                notes.append("sample queried directly with its stored weights")
            else:
                notes.append("sample queried directly, unweighted")
            relation = sample.relation
            sample_name = sample.name
        else:
            population = self.catalog.population(query.table)
            visibility = query.visibility or session.config.default_visibility
            if visibility is not Visibility.CLOSED:
                raise PartialUnsupportedError(
                    f"{visibility} population queries are not shard-decomposable "
                    "(weights/generators are fitted against global marginals); "
                    f"replicate {query.table!r} across shards instead of slicing it"
                )
            source = choose_sample(
                self.catalog,
                population,
                combine_samples=session.config.combine_samples,
            )
            relation, src_notes = closed_source(source)
            notes.extend(src_notes)
            sample_name = source.sample.name
        plan, plan_note = self._compiled_plan(
            query, sql_text, kind, relation.schema, weighted=weights is not None
        )
        form = partial_aggregate_form(plan)
        if form is None:
            raise PartialUnsupportedError(
                "query is not a decomposable aggregate (need optional WHERE "
                "filters, one COUNT/SUM/AVG/MIN/MAX aggregate, optional "
                f"ORDER BY/LIMIT); replicate {query.table!r} to run it whole"
            )
        partial = execute_plan_partial(form, relation, weights)
        notes.append(plan_note)
        result = QueryResult(
            partial,
            visibility=str(visibility),
            sample_name=sample_name,
            notes=tuple(notes),
        )
        return result, form.recipe

    # ------------------------------------------------------------------ #
    # Statement dispatch (the only place the RW lock is taken)
    # ------------------------------------------------------------------ #

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("engine has been shut down")

    def _execute_statement(
        self, statement: Statement, session: "Session", sql_text: str | None = None
    ) -> QueryResult:
        # The closed check runs *under* the statement's lock: shutdown()
        # raises the fence under the write lock, so a statement either
        # observes the fence here or runs to completion before the OPEN
        # pool drains — never a torn teardown mid-statement.
        if isinstance(statement, SelectQuery):
            with self._lock.read_locked():
                self._check_open()
                return self._run_select(statement, session, sql_text)
        if isinstance(statement, ExplainAnalyze):
            # EXPLAIN ANALYZE executes the inner SELECT, so it is a read.
            with self._lock.read_locked():
                self._check_open()
                return self._run_explain_analyze(statement, session)
        with self._lock.write_locked():
            self._check_open()
            result = self._run_write_statement(statement)
            # Applied first, logged second: a failed statement must never
            # reach the WAL (replay would re-raise on every boot).
            self._log_statement(statement)
            return result

    def _run_write_statement(self, statement: Statement) -> QueryResult:
        if isinstance(statement, CreateTable):
            return self._run_create_table(statement)
        if isinstance(statement, Insert):
            return self._run_insert(statement)
        if isinstance(statement, CreatePopulation):
            return self._run_create_population(statement)
        if isinstance(statement, CreateSample):
            return self._run_create_sample(statement)
        if isinstance(statement, CreateMetadata):
            return self._run_create_metadata(statement)
        if isinstance(statement, UpdateWeights):
            return self._run_update_weights(statement)
        if isinstance(statement, Drop):
            # No cache clearing: dropped objects' uids never recur, and the
            # schema fingerprint in the plan-cache key distinguishes any
            # same-named successor with a different shape.
            self.catalog.drop(statement.kind, statement.name)
            return _status(f"dropped {statement.kind.lower()} {statement.name}")
        raise SqlCompileError(f"unsupported statement type {type(statement).__name__}")

    # ------------------------------------------------------------------ #
    # DDL (write lock held)
    # ------------------------------------------------------------------ #

    def _run_create_table(self, statement: CreateTable) -> QueryResult:
        if not statement.columns:
            raise SqlCompileError(
                f"CREATE TABLE {statement.name} needs column definitions"
            )
        schema = Schema(Field(c.name, c.dtype) for c in statement.columns)
        self.catalog.create_auxiliary(statement.name, Relation.empty(schema))
        return _status(f"created table {statement.name}")

    def _run_create_population(self, statement: CreatePopulation) -> QueryResult:
        if statement.is_global:
            if not statement.columns:
                raise SqlCompileError(
                    "a GLOBAL POPULATION needs explicit column definitions "
                    "(the paper's example elides them 'for space')"
                )
            schema = Schema(Field(c.name, c.dtype) for c in statement.columns)
            population = PopulationRelation(statement.name, schema, is_global=True)
        else:
            if statement.source is None:
                raise SqlCompileError(
                    f"population {statement.name!r} must be GLOBAL or defined "
                    "AS (SELECT ... FROM <global population> ...)"
                )
            gp = self.catalog.population(statement.source.table)
            schema = self._projected_schema(statement.source, gp.schema)
            predicate = (
                None
                if statement.source.where is None
                else bind_expression(statement.source.where, gp.schema)
            )
            population = PopulationRelation(
                statement.name,
                schema,
                is_global=False,
                source_population=gp.name,
                defining_predicate=predicate,
            )
        self.catalog.create_population(population)
        return _status(f"created population {statement.name}")

    def _run_create_sample(self, statement: CreateSample) -> QueryResult:
        source = statement.source
        population = self.catalog.population(source.table)
        schema = self._projected_schema(source, population.schema)
        predicate = (
            None
            if source.where is None
            else bind_expression(source.where, population.schema)
        )
        mechanism = self._build_mechanism(statement.mechanism, population.schema)
        sample = SampleRelation(
            name=statement.name,
            relation=Relation.empty(schema),
            population=population.name,
            defining_predicate=predicate,
            mechanism=mechanism,
        )
        self.catalog.create_sample(sample)
        return _status(
            f"created sample {statement.name} over population {population.name} "
            "(ingest tuples with INSERT INTO or MosaicDB.ingest_relation)"
        )

    @staticmethod
    def _build_mechanism(
        spec: MechanismSpec | None, schema: Schema
    ) -> SamplingMechanism | None:
        if spec is None:
            return None
        if spec.kind == "UNIFORM":
            return UniformMechanism(spec.percent)
        assert spec.kind == "STRATIFIED"
        attribute = require_column(spec.stratify_on, schema)
        return StratifiedMechanism(attribute, spec.percent)

    @staticmethod
    def _projected_schema(query: SelectQuery, base: Schema) -> Schema:
        fields: list[Field] = []
        for item in query.items:
            if item.is_star:
                fields.extend(base.fields)
            elif item.is_aggregate:
                raise SqlCompileError(
                    "aggregates are not allowed in population/sample definitions"
                )
            else:
                name = getattr(item.expr, "name", None)
                if name is None:
                    raise SqlCompileError(
                        "population/sample definitions must project plain columns"
                    )
                column = require_column(name, base)
                fields.append(Field(item.alias or column, base.dtype(column)))
        return Schema(fields)

    def _run_create_metadata(self, statement: CreateMetadata) -> QueryResult:
        relation = self.catalog.auxiliary(statement.query.table)
        result = execute_select(statement.query, relation)
        attributes, count_column = self._metadata_columns(
            statement.query, result.schema
        )
        marginal = Marginal.from_relation(
            attributes, result, count_column, name=statement.name
        )
        population_name = self.catalog.resolve_metadata_population(
            statement.name, statement.for_population
        )
        # register_metadata bumps the population's metadata_version, which
        # invalidates exactly the reweights/generators fitted against it.
        self.catalog.register_metadata(statement.name, population_name, marginal)
        return _status(
            f"registered metadata {statement.name} on population {population_name} "
            f"({marginal.num_cells} cells over {marginal.attributes})"
        )

    @staticmethod
    def _metadata_columns(query: SelectQuery, schema: Schema) -> tuple[list[str], str]:
        names = list(schema.names)
        if len(names) < 2 or len(names) > 3:
            raise SqlCompileError(
                "CREATE METADATA queries must produce 1 or 2 attribute columns "
                f"plus one count column, got columns {names}"
            )
        return names[:-1], names[-1]

    def _run_insert(self, statement: Insert) -> QueryResult:
        kind = self.catalog.kind_of(statement.table)
        if kind == "auxiliary":
            relation = self.catalog.auxiliary(statement.table)
            appended = Relation.from_rows(relation.schema, statement.rows)
            self.catalog.replace_auxiliary(statement.table, relation.concat(appended))
            return _status(
                f"inserted {len(statement.rows)} row(s) into {statement.table}"
            )
        if kind == "sample":
            sample = self.catalog.sample(statement.table)
            appended = Relation.from_rows(sample.relation.schema, statement.rows)
            self._append_to_sample(sample, appended)
            return _status(
                f"ingested {len(statement.rows)} row(s) into sample {statement.table}"
            )
        raise CatalogError(
            f"cannot INSERT into {kind} relation {statement.table!r}; populations "
            "never store tuples"
        )

    @staticmethod
    def _append_to_sample(sample: SampleRelation, appended: Relation) -> None:
        new_relation = sample.relation.concat(appended)
        new_weights = np.concatenate([sample.weights, np.ones(appended.num_rows)])
        # replace_data validates before swapping and bumps sample.version,
        # which invalidates exactly this sample's cached reweights/generators.
        sample.replace_data(new_relation, new_weights)

    # ------------------------------------------------------------------ #
    # Durability (ARCHITECTURE.md §10; all helpers run under the write
    # lock, except _apply_wal_record which runs during the exclusive boot)
    # ------------------------------------------------------------------ #

    def _log_statement(self, statement: Statement) -> None:
        """WAL one just-applied write statement.

        TEMPORARY tables are transient by contract: their DDL and DML are
        never logged (nor checkpointed), so a restart simply forgets them.
        """
        if isinstance(statement, CreateTable):
            if statement.temporary:
                self._transient_tables.add(statement.name)
                return
            self._transient_tables.discard(statement.name)
        elif isinstance(statement, Insert):
            if statement.table in self._transient_tables:
                return
        elif isinstance(statement, Drop) and statement.kind.upper() == "TABLE":
            if statement.name in self._transient_tables:
                self._transient_tables.discard(statement.name)
                return
        self._log_write({"op": "statement", "statement": statement})

    def _log_write(self, record: dict) -> None:
        """Append one replayable record; auto-checkpoint on a large log."""
        if self._durable is None:
            return
        self._durable.log_record(record)
        if self._durable.wal_size() > self._durable.wal_limit_bytes:
            self._durable.checkpoint(self)

    def _apply_wal_record(self, record: dict) -> None:
        """Replay one WAL record at boot.

        Mirrors the four logging sites: SQL write statements re-run through
        :meth:`_run_write_statement` (which never logs — logging lives in
        the statement entry point), programmatic ingests and drawn samples
        replay their materialised relations, marginals re-register.
        """
        op = record["op"]
        if op == "statement":
            self._run_write_statement(record["statement"])
        elif op == "ingest":
            self._ingest_relation_locked(record["name"], record["relation"])
        elif op == "sample":
            self.catalog.create_sample(
                SampleRelation(
                    name=record["name"],
                    relation=record["relation"],
                    population=record["population"],
                    mechanism=record["mechanism"],
                    initial_weights=record["weights"],
                )
            )
        elif op == "marginal":
            self.catalog.register_metadata(
                record["metadata"], record["population"], record["marginal"]
            )
        else:
            raise CatalogError(f"unknown WAL record op {op!r}")

    def checkpoint(self) -> dict:
        """Durably persist the catalog and fitted models, truncate the WAL.

        Returns a small summary (checkpoint name, table/model counts).
        Queries block only for the write-out itself; afterwards the next
        boot restores this state via mmap in O(1) and replays nothing.
        """
        if self._durable is None:
            raise CatalogError("engine has no data_dir; durable storage is disabled")
        with self._lock.write_locked():
            self._check_open()
            return self._durable.checkpoint(self)

    def commit(self) -> dict:
        """Alias of :meth:`checkpoint` — the worldbase-style named-resource
        idiom: mutate the catalog, then ``commit()`` to make it durable."""
        return self.checkpoint()

    def rollback(self) -> dict:
        """Discard every mutation since the last :meth:`checkpoint`.

        The WAL tail is dropped and the catalog (plus model caches) is
        rebuilt from the live checkpoint — an empty catalog when no
        checkpoint exists yet.
        """
        if self._durable is None:
            raise CatalogError("engine has no data_dir; durable storage is disabled")
        with self._lock.write_locked():
            self._check_open()
            return self._durable.rollback(self)

    def _run_update_weights(self, statement: UpdateWeights) -> QueryResult:
        sample = self.catalog.sample(statement.sample)
        weighted = sample.weighted_relation()
        expr = bind_expression(statement.expr, weighted.schema, allow_barewords=False)
        values = np.asarray(expr.evaluate(weighted), dtype=np.float64)
        if statement.where is None:
            new_weights = values
        else:
            predicate = bind_expression(statement.where, weighted.schema)
            mask = np.asarray(predicate.evaluate(weighted), dtype=bool)
            # Build the candidate vector without touching the stored array:
            # if set_weights rejects it (negative/non-finite values), the
            # sample keeps its previous weights instead of ending up
            # half-updated.
            new_weights = np.where(mask, values, sample.weights)
        sample.set_weights(new_weights)
        return _status(f"updated weights of sample {statement.sample}")

    # ------------------------------------------------------------------ #
    # SELECT routing (read lock held)
    # ------------------------------------------------------------------ #

    def _run_select(
        self, query: SelectQuery, session: "Session", sql_text: str | None = None
    ) -> QueryResult:
        kind = self.catalog.kind_of(query.table)
        if kind == "auxiliary":
            if query.visibility not in (None, Visibility.CLOSED):
                raise VisibilityError(
                    "visibility keywords only apply to populations and samples; "
                    f"{query.table!r} is an auxiliary table"
                )
            auxiliary = self.catalog.auxiliary(query.table)
            plan, plan_note = self._compiled_plan(
                query, sql_text, kind, auxiliary.schema, weighted=False
            )
            trace = current_trace()
            with (
                trace.span("execute", visibility=str(Visibility.CLOSED), table=query.table)
                if trace is not None
                else nullcontext({})
            ) as span:
                relation = execute_plan(
                    plan,
                    auxiliary,
                    parallel=self._execution,
                    share_key=(
                        "aux",
                        query.table,
                        self.catalog.auxiliary_version(query.table),
                    ),
                )
                span["rows"] = relation.num_rows
            return QueryResult(
                relation, visibility=str(Visibility.CLOSED), notes=(plan_note,)
            )
        if kind == "sample":
            return self._select_from_sample(query, sql_text)
        return self._select_from_population(query, session, sql_text)

    def _run_explain_analyze(
        self, statement: ExplainAnalyze, session: "Session"
    ) -> QueryResult:
        """Execute the inner SELECT under a forced trace and render it.

        The query runs exactly as a bare SELECT would — same plan-cache
        key, same execution path — so the reported provenance ("plan:
        cache hit", "OPEN: generator cache hit", ...) is what the next
        plain run of the query will experience.  ``explain=True`` also
        switches on the per-plan-node row/timing recording that sampled
        traces skip.
        """
        trace = current_trace()
        if trace is not None:
            trace.explain = True
        else:
            trace = QueryTrace(explain=True)
        with trace.activate():
            inner = self._run_select(statement.query, session, statement.sql)
        trace.finish()
        trace_dict = trace.to_dict()

        steps: list[str] = []
        details: list[str] = []
        timings: list[float | None] = []

        steps.append("trace")
        details.append(f"id {trace.trace_id}")
        timings.append(trace_dict["total_ms"])
        for span in trace.spans:
            extras = {
                k: v for k, v in span.items() if k not in ("name", "start_ms", "ms")
            }
            steps.append(span["name"])
            details.append(", ".join(f"{k}={v}" for k, v in sorted(extras.items())))
            timings.append(span["ms"])
        for node in trace.meta.get("plan_nodes", ()):
            steps.append(f"node: {node['node']}")
            details.append(f"rows={node['rows']}")
            timings.append(node["ms"])
        for key, value in trace.meta.items():
            if key == "plan_nodes":
                continue
            steps.append(f"meta: {key}")
            details.append(
                ", ".join(f"{k}={v}" for k, v in sorted(value.items()))
                if isinstance(value, dict)
                else str(value)
            )
            timings.append(None)
        for note in inner.notes:
            steps.append("note")
            details.append(note)
            timings.append(None)

        relation = Relation.from_dict(
            {
                "step": steps,
                "detail": details,
                "ms": [float("nan") if t is None else float(t) for t in timings],
            }
        )
        return QueryResult(
            relation,
            visibility=inner.visibility,
            sample_name=inner.sample_name,
            notes=(*inner.notes, f"EXPLAIN ANALYZE: trace {trace.trace_id}"),
            repetitions_used=inner.repetitions_used,
            trace=trace_dict,
        )

    def _select_from_sample(
        self, query: SelectQuery, sql_text: str | None
    ) -> QueryResult:
        sample = self.catalog.sample(query.table)
        visibility = query.visibility or Visibility.CLOSED
        if visibility is Visibility.OPEN:
            raise VisibilityError(
                "OPEN queries target populations, not samples; query the "
                f"population {sample.population!r} instead"
            )
        weights = sample.weights if visibility is Visibility.SEMI_OPEN else None
        plan, plan_note = self._compiled_plan(
            query,
            sql_text,
            "sample",
            sample.relation.schema,
            weighted=weights is not None,
        )
        trace = current_trace()
        with (
            trace.span("execute", visibility=str(visibility), table=query.table)
            if trace is not None
            else nullcontext({})
        ) as span:
            relation = execute_plan(
                plan,
                sample.relation,
                weights,
                parallel=self._execution,
                share_key=("sample", sample.uid, sample.version, weights is not None),
            )
            span["rows"] = relation.num_rows
        return QueryResult(
            relation,
            visibility=str(visibility),
            sample_name=sample.name,
            notes=(
                "sample queried directly with its stored weights"
                if weights is not None
                else "sample queried directly, unweighted",
                plan_note,
            ),
        )

    def _select_from_population(
        self, query: SelectQuery, session: "Session", sql_text: str | None
    ) -> QueryResult:
        population = self.catalog.population(query.table)
        visibility = query.visibility or session.config.default_visibility
        source = choose_sample(
            self.catalog, population, combine_samples=session.config.combine_samples
        )
        weighted = visibility is Visibility.SEMI_OPEN or (
            visibility is Visibility.OPEN
            and bool(query.has_aggregates or query.group_by)
        )
        plan, plan_note = self._compiled_plan(
            query, sql_text, "population", source.sample.relation.schema, weighted
        )

        trace = current_trace()
        repetitions_used = None
        with (
            trace.span("execute", visibility=str(visibility), table=query.table)
            if trace is not None
            else nullcontext({})
        ) as span:
            if visibility is Visibility.CLOSED:
                relation, notes = evaluate_closed(
                    query,
                    source,
                    plan,
                    parallel=self._execution,
                    share_key=self._source_share_key("closed", source),
                )
            elif visibility is Visibility.SEMI_OPEN:
                relation, notes = evaluate_semi_open(
                    query,
                    source,
                    self.catalog,
                    plan,
                    self._cached_reweight(source),
                    parallel=self._execution,
                    share_key=self._source_share_key("semiopen", source),
                )
            else:
                relation, notes, meta = self._evaluate_open(
                    query, source, session, plan
                )
                repetitions_used = meta.get("repetitions_used")
                if meta.get("adaptive"):
                    self._open_adaptive_runs.inc()
                    if meta.get("early_stop"):
                        self._open_adaptive_early_stops.inc()
                if trace is not None:
                    trace.annotate("open", _open_trace_meta(meta))
            span["rows"] = relation.num_rows
        notes.append(plan_note)

        return QueryResult(
            relation,
            visibility=str(visibility),
            sample_name=source.sample.name,
            notes=tuple(notes),
            repetitions_used=repetitions_used,
        )

    def _source_share_key(
        self, path: str, source: PlannedSource
    ) -> tuple | None:
        """Stable shared-memory identity for a planned source's input data.

        The derived relation handed to ``execute_plan`` (view-filtered
        CLOSED tuples, reweighted SEMI-OPEN tuples) is a fresh object per
        query, so identity-keyed segment leases never hit.  These keys name
        the *content* instead: the CLOSED input changes only with the
        sample's data version; the SEMI-OPEN input additionally changes
        with the metadata the reweight was fitted against — exactly the
        reweight cache's version stamp.  Synthetic sample unions have no
        stable identity and fall back to id-keying (``None``).
        """
        identity = source.cache_identity()
        if identity is None:
            return None
        if path == "closed":
            return ("closed", *identity, source.sample.version)
        return ("semiopen", *identity, *source.version_stamp(self.catalog))

    def _compiled_plan(
        self,
        query: SelectQuery,
        sql_text: str | None,
        kind: str,
        schema: Schema,
        weighted: bool,
    ) -> tuple[LogicalPlan, str]:
        """The logical plan for ``query`` over ``schema``, LRU-cached.

        The cache key is ``(sql_text, kind, schema fingerprint, weighted)``
        — everything a compiled plan depends on — so entries never go stale:
        a same-named relation recreated with a different schema simply maps
        to a different key.  Statements without SQL text (programmatic ASTs)
        are compiled fresh each time.
        """
        trace = current_trace()
        if trace is not None:
            with trace.span("plan") as span:
                plan, note = self._compiled_plan_impl(
                    query, sql_text, kind, schema, weighted
                )
                span["provenance"] = note
            return plan, note
        return self._compiled_plan_impl(query, sql_text, kind, schema, weighted)

    def _compiled_plan_impl(
        self,
        query: SelectQuery,
        sql_text: str | None,
        kind: str,
        schema: Schema,
        weighted: bool,
    ) -> tuple[LogicalPlan, str]:
        if sql_text is None:
            return (
                compile_select(query, schema, weighted=weighted),
                "plan: compiled (programmatic statement, not cached)",
            )
        key = (sql_text, kind, schema, weighted)
        plan = self._plan_cache.get(key)
        if plan is not None:
            return (
                plan,
                f"plan: cache hit, parse/bind/compile skipped ({plan.describe()})",
            )
        plan = compile_select(query, schema, weighted=weighted)
        self._plan_cache.put(key, plan)
        return plan, f"plan: compiled and cached ({plan.describe()})"

    def _cached_reweight(self, source: PlannedSource):
        """SEMI-OPEN debiased weights for ``source``, version-stamp cached."""
        key = source.cache_identity()
        if key is None:
            relation, weights, notes = reweighted_sample(source, self.catalog)
            notes.append("reweight cache: skipped (synthetic sample union)")
            return relation, weights, notes
        stamp = source.version_stamp(self.catalog)
        entry = self._reweight_cache.get(key, stamp)
        if entry is not None:
            relation, weights, notes = entry
            return relation, weights, [
                *notes,
                f"SEMI-OPEN: reweight cache hit (sample {source.sample.name!r} "
                f"v{source.sample.version})",
            ]
        relation, weights, notes = reweighted_sample(source, self.catalog)
        self._reweight_cache.put(key, stamp, (relation, weights, list(notes)))
        return relation, weights, notes

    def _evaluate_open(
        self,
        query: SelectQuery,
        source: PlannedSource,
        session: "Session",
        plan: LogicalPlan | None = None,
    ):
        open_config = session.config.open_config
        # Read the factory exactly once: a concurrent set_open_generator on
        # this session must not slip a different factory between the cache
        # key and the construction below.
        factory = open_config.generator_factory
        marginals, size, fit_relation, scope_note = self._open_fit_inputs(source)
        identity = source.cache_identity()
        key = None
        stamp = None
        generator = None
        if identity is not None:
            # The factory is part of the *key* (not the stamp): sessions with
            # different generator factories each keep their own fitted model
            # warm instead of thrashing a shared slot.
            key = (*identity, factory)
            stamp = source.version_stamp(self.catalog)
            generator = self._open_generators.get(key, stamp)
        trace = current_trace()
        cache_note = None
        if generator is None:
            generator = factory() if callable(factory) else factory
            with (
                trace.span("open.fit", rows=fit_relation.num_rows)
                if trace is not None
                else nullcontext({})
            ) as span:
                generator.fit(
                    fit_relation,
                    marginals,
                    categorical_columns=open_config.categorical_columns,
                )
                span["generator"] = getattr(generator, "name", type(generator).__name__)
            if key is not None:
                self._open_generators.put(key, stamp, generator)
        else:
            cache_note = (
                f"OPEN: generator cache hit (sample {source.sample.name!r} "
                f"v{source.sample.version})"
            )
        if trace is not None:
            trace.annotate(
                "generator",
                {
                    "name": getattr(generator, "name", type(generator).__name__),
                    "cache_hit": cache_note is not None,
                },
            )
        relation, notes, meta = evaluate_open(
            query,
            source,
            generator,
            open_config,
            population_size=size,
            rng=session.rng,
            plan=plan,
            # Repetitions of the per-repetition fallback loop fan out on
            # the engine-owned pool (drained by shutdown()); the batched
            # single-pass path and the serial loop never spin it up.
            executor=(
                self._open_repetition_pool()
                if open_config.resolved_workers() > 1
                and not uses_batched_execution(generator, open_config, query)
                else None
            ),
            parallel=self._execution,
        )
        if cache_note is not None:
            notes.insert(0, cache_note)
        notes.insert(0, scope_note)
        return relation, notes, meta

    def _open_fit_inputs(self, source: PlannedSource):
        """Marginals, population size, and fitting tuples for OPEN queries."""
        population = source.population
        gp = self.catalog.global_population
        if population.has_metadata:
            marginals = population.marginal_list()
            size = population.estimated_size()
            relation = source.sample.relation
            predicate = population.defining_predicate
            if predicate is not None:
                bound = bind_expression(predicate, relation.schema)
                relation = relation.filter(bound.evaluate(relation))
            scope = (
                f"OPEN: generator fit on sample {source.sample.name!r} against "
                f"population {population.name!r} metadata"
            )
            if relation.num_rows == 0:
                raise VisibilityError(
                    f"sample {source.sample.name!r} has no tuples inside "
                    f"population {population.name!r}; cannot fit a generator"
                )
            return marginals, float(size), relation, scope
        if gp is not None and gp.has_metadata:
            scope = (
                f"OPEN: generator fit on sample {source.sample.name!r} against "
                f"global population {gp.name!r} metadata"
            )
            return (
                gp.marginal_list(),
                float(gp.estimated_size()),
                source.sample.relation,
                scope,
            )
        raise VisibilityError(
            f"population {population.name!r} has no marginal metadata (nor does "
            "the global population); OPEN queries need marginals to train a "
            "generator (Sec. 5.2)"
        )

    # ------------------------------------------------------------------ #
    # Cache maintenance and observability (no RW lock needed: the caches
    # are internally synchronized and catalog.version is a single read)
    # ------------------------------------------------------------------ #

    def invalidate_model_caches(self) -> None:
        """Drop every fitted artifact (reweights and OPEN generators).

        Routine DML/DDL never needs this: version-stamped cache entries
        invalidate themselves per key (see ARCHITECTURE.md).
        """
        self._open_generators.clear()
        self._reweight_cache.clear()

    def clear_caches(self) -> None:
        """Empty all pipeline caches (plans, statements, reweights, models).

        Useful for cold-path benchmarking and tests; never required for
        correctness.
        """
        self._statement_cache.clear()
        self._plan_cache.clear()
        self.invalidate_model_caches()

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/size counters for every pipeline cache.

        Shared across all sessions of this engine.  ``catalog_version`` is
        the DDL counter: comparing two snapshots tells an operator whether
        the schema landscape changed between them (fine-grained
        invalidation itself runs on per-object versions).
        """
        stats = {
            "statements": self._statement_cache.stats(),
            "plans": self._plan_cache.stats(),
            "reweights": self._reweight_cache.stats(),
            "generators": self._open_generators.stats(),
            # Process-wide (not per-engine): how often the storage layer
            # served a memoized/propagated dictionary encoding vs. built one.
            "dictionaries": dictionary_stats(),
            # Morsel/worker-pool counters (parallel vs. local batches,
            # shared-segment reuse, crash restarts) — see workers.py.
            "execution": self._execution.stats(),
            "open_adaptive": {
                "runs": int(self._open_adaptive_runs.value()),
                "early_stops": int(self._open_adaptive_early_stops.value()),
            },
            "catalog": {"catalog_version": self.catalog.version},
        }
        if self._durable is not None:
            # Durable-store counters (restored tables/models, WAL records,
            # checkpoints) — what the restart smoke asserts "warm" from.
            stats["storage"] = self._durable.stats_snapshot()
        return stats

    # ------------------------------------------------------------------ #
    # Programmatic API (used by sessions, experiments and examples)
    # ------------------------------------------------------------------ #

    def ingest_relation(self, name: str, relation: Relation) -> None:
        """Append tuples to a sample or auxiliary table by name."""
        with self._lock.write_locked():
            self._check_open()
            self._ingest_relation_locked(name, relation)
            if name not in self._transient_tables:
                self._log_write({"op": "ingest", "name": name, "relation": relation})

    def _ingest_relation_locked(self, name: str, relation: Relation) -> None:
        """The ingest body, shared by :meth:`ingest_relation` and WAL replay."""
        kind = self.catalog.kind_of(name)
        if kind == "auxiliary":
            existing = self.catalog.auxiliary(name)
            merged = (
                relation if existing.num_rows == 0 else existing.concat(relation)
            )
            self.catalog.replace_auxiliary(name, merged)
            return
        if kind == "sample":
            sample = self.catalog.sample(name)
            if sample.num_rows == 0:
                projected = relation.project(list(sample.relation.column_names))
                sample.replace_data(projected, np.ones(projected.num_rows))
            else:
                self._append_to_sample(
                    sample, relation.project(list(sample.relation.column_names))
                )
            return
        raise CatalogError(f"cannot ingest into {kind} relation {name!r}")

    def ingest_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> None:
        with self._lock.read_locked():
            kind = self.catalog.kind_of(name)
            schema = (
                self.catalog.auxiliary(name).schema
                if kind == "auxiliary"
                else self.catalog.sample(name).relation.schema
            )
        # Row coercion happens outside the lock; ingest_relation re-resolves
        # the name under the write lock (a concurrent schema change between
        # the two acquisitions surfaces as a SchemaError, not a torn write).
        self.ingest_relation(name, Relation.from_rows(schema, rows))

    def draw_sample(
        self,
        name: str,
        population_name: str,
        population_data: Relation,
        mechanism: SamplingMechanism,
        rng: np.random.Generator,
    ) -> SampleRelation:
        """Draw a concrete sample from materialised population data.

        Experiment-harness helper: real Mosaic deployments never hold
        population tuples, but reproductions do, and need samples whose
        bias is known exactly.
        """
        with self._lock.write_locked():
            self._check_open()
            population = self.catalog.population(population_name)
            indices = mechanism.draw(population_data, rng)
            sample = SampleRelation(
                name=name,
                relation=population_data.take(indices),
                population=population.name,
                mechanism=mechanism,
            )
            self.catalog.create_sample(sample)
            # The draw itself consumed RNG state, so replay logs the
            # materialised tuples + weights rather than re-drawing.
            self._log_write(
                {
                    "op": "sample",
                    "name": sample.name,
                    "population": sample.population,
                    "relation": sample.relation,
                    "weights": sample._weights,
                    "mechanism": mechanism,
                }
            )
            return sample

    def register_marginal(
        self, metadata_name: str, population_name: str, marginal: Marginal
    ) -> None:
        """Attach a precomputed marginal to a population."""
        with self._lock.write_locked():
            self._check_open()
            self.catalog.register_metadata(metadata_name, population_name, marginal)
            self._log_write(
                {
                    "op": "marginal",
                    "metadata": metadata_name,
                    "population": population_name,
                    "marginal": marginal,
                }
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine({self.catalog!r})"


def _open_trace_meta(meta: dict) -> dict:
    """Condense :func:`evaluate_open` metadata into the trace annotation
    (repetition counts plus a human-readable stop reason)."""
    used = int(meta.get("repetitions_used", 0))
    if meta.get("adaptive"):
        stop_reason = (
            "tolerance reached before cap"
            if meta.get("early_stop")
            else "repetition cap reached"
        )
    elif used == 0:
        stop_reason = "direct inference (no generation)"
    else:
        stop_reason = "fixed repetitions"
    return {
        "repetitions_used": used,
        "repetitions_cap": int(meta.get("repetitions_cap", used)),
        "early_stop": bool(meta.get("early_stop", False)),
        "stop_reason": stop_reason,
    }


def _status(message: str) -> QueryResult:
    relation = Relation.from_dict({"status": [message]})
    return QueryResult(relation, notes=(message,))
