"""Query results returned by :class:`~repro.core.database.MosaicDB`."""

from __future__ import annotations

from typing import Any, Iterator

from repro.relational.relation import Relation


class QueryResult:
    """A materialised query answer.

    Wraps the result :class:`~repro.relational.relation.Relation` with the
    metadata users care about: which visibility level produced it and which
    sample (if any) backed the population.  Iterating yields row tuples.
    """

    def __init__(
        self,
        relation: Relation,
        visibility: str | None = None,
        sample_name: str | None = None,
        notes: tuple[str, ...] = (),
        repetitions_used: int | None = None,
        trace: dict | None = None,
    ):
        self._relation = relation
        self.visibility = visibility
        self.sample_name = sample_name
        self.notes = notes
        #: OPEN only: how many generated repetitions the answer consumed
        #: (0 for direct inference, the adaptive stopping point on the
        #: streaming path, the fixed ``R`` otherwise); ``None`` for
        #: CLOSED / SEMI-OPEN results.
        self.repetitions_used = repetitions_used
        #: Serialized :class:`~repro.observability.QueryTrace` when this
        #: query was sampled for tracing (or ran under EXPLAIN ANALYZE);
        #: crosses the wire as the append-only ``trace`` header field.
        self.trace = trace

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def columns(self) -> tuple[str, ...]:
        return self._relation.column_names

    @property
    def num_rows(self) -> int:
        return self._relation.num_rows

    def __len__(self) -> int:
        return self._relation.num_rows

    def __iter__(self) -> Iterator[tuple]:
        return self._relation.rows()

    def rows(self) -> list[tuple]:
        return list(self._relation.rows())

    def to_pylist(self) -> list[dict[str, Any]]:
        return self._relation.to_pylist()

    def has_note(self, substring: str) -> bool:
        """Whether any engine note contains ``substring``.

        Notes carry the execution trail — reweighting decisions, plan
        compilation vs. plan-cache hits, reweight/generator cache hits — so
        this is how callers observe pipeline behaviour (e.g.
        ``result.has_note("plan: cache hit")``).
        """
        return any(substring in note for note in self.notes)

    def scalar(self) -> Any:
        """The single value of a 1x1 result (e.g. ``SELECT COUNT(*) ...``)."""
        if self.num_rows != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() requires a 1x1 result, got {self.num_rows}x{len(self.columns)}"
            )
        return next(iter(self))[0]

    def column(self, name: str):
        return self._relation.column(name)

    def __repr__(self) -> str:
        return (
            f"QueryResult(rows={self.num_rows}, columns={list(self.columns)}, "
            f"visibility={self.visibility})"
        )

    def pretty(self, max_rows: int = 25) -> str:
        """Fixed-width textual rendering (for examples and the CLI)."""
        names = list(self.columns)
        rows = [
            [_fmt(v) for v in row]
            for _, row in zip(range(max_rows), self._relation.rows())
        ]
        widths = [len(n) for n in names]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = [" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows]
        lines = [header, rule, *body]
        if self.num_rows > max_rows:
            lines.append(f"... ({self.num_rows - max_rows} more rows)")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}".rstrip("0").rstrip(".") if value == value else "nan"
    return str(value)
