"""Query visibility levels (paper Sec. 3.3).

The visibility of a query controls how freely Mosaic may use the samples
underlying a population:

- ``CLOSED`` — answer directly over the sample, no debiasing.  This is the
  closed world assumption: tuples not in the database do not exist.
- ``SEMI_OPEN`` — the engine may *reweight* sample tuples (inverse
  inclusion probability when the mechanism is known, IPF against marginals
  otherwise).  Open world, but no new tuples: zero false positives, up to
  ``n`` false negatives where ``n`` is the number of population tuples
  missing from the sample.
- ``OPEN`` — the engine may additionally *generate* missing tuples with a
  generative model: at most ``n`` false negatives but possibly nonzero
  false positives.
"""

from __future__ import annotations

import enum

from repro.errors import VisibilityError


class Visibility(enum.Enum):
    """How much freedom query evaluation has over the underlying samples."""

    CLOSED = "CLOSED"
    SEMI_OPEN = "SEMI-OPEN"
    OPEN = "OPEN"

    @classmethod
    def parse(cls, text: str) -> "Visibility":
        """Parse the SQL keyword form (``SEMI-OPEN`` or ``SEMI_OPEN``)."""
        normalized = text.strip().upper().replace("_", "-")
        for member in cls:
            if member.value == normalized:
                return member
        raise VisibilityError(f"unknown visibility level: {text!r}")

    @property
    def assumes_open_world(self) -> bool:
        return self is not Visibility.CLOSED

    @property
    def may_reweight(self) -> bool:
        return self is not Visibility.CLOSED

    @property
    def may_generate(self) -> bool:
        return self is Visibility.OPEN

    def __str__(self) -> str:
        return self.value
