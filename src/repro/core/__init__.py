"""Public facade: the :class:`MosaicDB` database object and query results."""

from repro.core.visibility import Visibility

__all__ = ["Visibility"]
