"""Public facade: ``MosaicDB``, the Engine / Session split, query results.

Import heavyweight members from their modules (or via the lazy
``repro.MosaicDB`` export) — this package init stays import-light.
"""

from repro.core.visibility import Visibility

__all__ = ["Visibility"]
