"""Cache primitives for the compiled query pipeline.

Two small building blocks:

- :class:`LRUCache` — a bounded least-recently-used map, used for the
  parsed-statement cache and the logical-plan cache (whose keys already
  embed everything the value depends on: SQL text, relation kind, schema
  fingerprint, weightedness).
- :class:`VersionedLRUCache` — an LRU whose entries carry a *version stamp*.
  A lookup presents the stamp it expects (derived from the monotonically
  increasing versions on :class:`~repro.catalog.sample.SampleRelation`,
  population metadata, and session config); a stored entry with any other
  stamp is stale and treated as a miss.  This is what lets an INSERT into
  one sample invalidate exactly that sample's reweights/generators while
  every other cached artifact survives — the per-key replacement for the
  old clear-everything ``_invalidate_model_caches()``.

Both caches are **internally thread-safe**: every operation holds a
private mutex, so concurrent sessions can share them without holding the
engine's readers-writer lock (SELECTs populate the plan and model caches
while holding only the *read* side — see ``ARCHITECTURE.md``).  The mutex
guards the cache structure only; cached values are published as-built and
must themselves be immutable or internally synchronized.

A ``capacity`` of zero (or less) disables a cache: every lookup misses and
nothing is stored.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable


class LRUCache:
    """A bounded, thread-safe least-recently-used cache with hit statistics."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._mutex = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def get(self, key: Hashable) -> Any | None:
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        if self.capacity <= 0:
            return
        with self._mutex:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        with self._mutex:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.stats()})"


class VersionedLRUCache(LRUCache):
    """An LRU whose entries are only valid under a matching version stamp.

    ``stamp`` is any hashable value encoding the versions of everything the
    cached artifact was derived from.  A stale entry (stored under an older
    stamp) is dropped on lookup, so at most one artifact per key is ever
    retained.
    """

    def get(self, key: Hashable, stamp: Hashable = None) -> Any | None:  # type: ignore[override]
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_stamp, value = entry
            if stored_stamp != stamp:
                del self._entries[key]  # stale: superseded by a newer version
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, stamp: Hashable, value: Any = None) -> None:  # type: ignore[override]
        super().put(key, (stamp, value))

    def snapshot(self) -> list[tuple[Hashable, Hashable, Any]]:
        """Every live ``(key, stamp, value)`` entry, LRU order (oldest first).

        The durable-storage layer uses this to persist fitted artifacts at
        checkpoint time; values are published-as-built and immutable, so
        handing them out does not race concurrent lookups.
        """
        with self._mutex:
            return [(key, stamp, value) for key, (stamp, value) in self._entries.items()]
