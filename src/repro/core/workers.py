"""Morsel-driven multi-process execution: worker pool + parallel context.

The GIL serializes every kernel a thread pool runs (``BENCH_concurrency``:
0.9x at 8 threads), so scan-heavy aggregation scales out with *processes*.
This module provides:

- :class:`ExecutionConfig` — how many workers (``MOSAIC_WORKERS`` /
  ``ExecutionConfig(processes=N)``), the morsel threshold
  (``MOSAIC_MORSEL_ROWS``), timeouts, retry budget.
- :class:`WorkerPool` — a persistent pool of worker processes connected by
  pipes.  Workers receive ``(plan, segment descriptor, morsel)`` tasks,
  attach the shared segment (O(1), zero row serialization — see
  :mod:`repro.relational.shm`), execute the plan fragment, and ship back
  the small partial-aggregate arrays.  Plans and segment descriptors are
  sent to each worker once and cached by key; task frames are tiny and at
  most :data:`_MAX_INFLIGHT` of them are queued into a worker's pipe at a
  time, with results drained between sends — the parent never blocks
  writing a pipe whose worker is itself blocked writing a large result,
  so a batch cannot deadlock on full socket buffers.  Crashed workers are
  respawned and their tasks retried (``max_task_retries`` times per task)
  before the batch fails with :class:`~repro.errors.WorkerCrashError` —
  a query never hangs on a dead worker, and after a failed batch the next
  query respawns a fresh pool.
- :class:`ParallelExecution` — the engine-facing context.  It owns the
  pool and the :class:`~repro.relational.shm.SharedRelationStore`, decides
  pool vs. in-process execution, and shards batched OPEN runs across
  repetitions.

Determinism contract
--------------------
The morsel decomposition is a pure function of ``(num_rows, morsel_rows)``
and partials merge in morsel-index order, so a context with ``processes=0``
running the morsel loop in-process produces byte-identical results to any
worker count — worker scheduling can never reorder a float reduction.  The
pool is therefore purely a throughput lever; correctness never depends on
it, which is also why every pool-side refusal (busy, closed, spawn
failure) silently degrades to the identical local loop.

Answers *are* a function of ``morsel_rows``, however: above the threshold
float SUM/AVG accumulate per-morsel and merge pairwise, which can differ
in the last ulp from the single-pass kernels used at or below it.  Bit
identity is guaranteed across worker counts at a **fixed** ``morsel_rows``;
changing ``MOSAIC_MORSEL_ROWS`` (or comparing against a pre-morsel
release) is a numerics-affecting configuration change, the same way a
different reduction tree would be in any parallel engine.
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time
import weakref
from collections import OrderedDict, deque
from contextlib import nullcontext
from dataclasses import dataclass
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Sequence

import numpy as np

from repro.engine.compiler import (
    composite_layout,
    execute_plan_morsel,
    execute_plan_open_shard,
)
from repro.errors import MosaicError, WorkerCrashError, error_from_wire, error_to_wire
from repro.observability import MetricsRegistry
from repro.observability.trace import current_trace
from repro.relational.kernels import merge_composite_partials
from repro.relational.shm import (
    AttachedRelation,
    SharedRelationStore,
    attach_relation,
)

#: Default morsel size: relations at or below this row count use the
#: classic single-pass kernels; larger scans split into ranges of this
#: many rows.  65536 rows x 8 bytes is a comfortable per-task unit (a few
#: hundred microseconds of kernel time) while keeping task counts low.
DEFAULT_MORSEL_ROWS = 65536

#: Extra-array names inside shared segments.
WEIGHTS_EXTRA = "__weights__"
REP_EXTRA = "__rep__"

#: Per-worker cap on cached (segment, window) attachments (LRU).  Windows
#: are morsel-sized, so entries are small; the cap just bounds how many
#: distinct relations x morsels a worker keeps mapped.
_ATTACH_CACHE_SIZE = 32

#: Per-worker cap on cached segment descriptors (LRU).  A descriptor is
#: sent **once per segment** — it carries the TEXT vocab tuples, which can
#: be large — and tasks reference it by segment name.  The parent mirrors
#: each worker's cache exactly (same inserts, same touches, same
#: evictions, in pipe order), so both sides always agree on which
#: descriptors a worker holds.
_REL_CACHE_SIZE = 16

#: Cap on task frames queued into one worker's pipe at a time.  Task
#: messages are tiny (the descriptor ships separately), so this many
#: always fit in the OS pipe buffer: the parent's sends never block on a
#: worker that is itself blocked writing a large partial, which rules out
#: the send/send deadlock a fire-hose dispatch could produce.  Two keeps
#: a worker busy (one computing, one buffered) without batching latency.
_MAX_INFLIGHT = 2


@dataclass
class ExecutionConfig:
    """Multi-process execution knobs (engine-level).

    ``processes=None`` reads ``MOSAIC_WORKERS`` (unset/0 disables the
    pool); ``morsel_rows=None`` reads ``MOSAIC_MORSEL_ROWS`` (default
    ``DEFAULT_MORSEL_ROWS``).  ``start_method=None`` picks ``fork`` only
    from a single-threaded parent (workers inherit the loaded
    interpreter; ~ms spawn) — the pool spawns lazily on the first
    qualifying query, by which point the engine's OPEN thread pool or the
    TCP server's threads may exist, and forking a multithreaded process
    can deadlock the child on locks held mid-fork (deprecated outright on
    CPython 3.12+).  Threaded parents get ``forkserver`` (or ``spawn``);
    ``fork`` stays available as an explicit opt-in via the field or
    ``MOSAIC_WORKER_START_METHOD``.  ``max_task_retries`` is the per-task
    crash-retry budget (0 fails fast, for deterministic crash tests).
    """

    processes: int | None = None
    morsel_rows: int | None = None
    max_shared_segments: int = 16
    worker_timeout: float = 120.0
    start_method: str | None = None
    max_task_retries: int = 1

    def resolved_processes(self) -> int:
        if self.processes is not None:
            return max(0, int(self.processes))
        env = os.environ.get("MOSAIC_WORKERS", "").strip()
        if env:
            try:
                return max(0, int(env))
            except ValueError:
                return 0
        return 0

    def resolved_morsel_rows(self) -> int:
        if self.morsel_rows is not None:
            return max(1, int(self.morsel_rows))
        env = os.environ.get("MOSAIC_MORSEL_ROWS", "").strip()
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                pass
        return DEFAULT_MORSEL_ROWS

    def resolved_start_method(self) -> str:
        method = self.start_method or os.environ.get(
            "MOSAIC_WORKER_START_METHOD", ""
        ).strip()
        available = get_all_start_methods()
        if method and method in available:
            return method
        if "fork" in available and threading.active_count() == 1:
            return "fork"
        if "forkserver" in available:
            return "forkserver"
        return "spawn"


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


def _attach_cached(
    attachments: "OrderedDict[tuple, AttachedRelation]", descriptor, start: int, stop: int
) -> AttachedRelation:
    """This worker's attachment for one ``[start, stop)`` window (LRU-cached).

    Attaching *windows* rather than whole relations keeps the per-attach
    TEXT ``vocab[codes]`` gather proportional to the rows this worker
    actually processes; the morsel decomposition is deterministic, so the
    same windows recur across executions of a cached relation and hit the
    cache.  Keys include the segment name, which is unique per segment
    lifetime (uuid suffix), so stale reuse is impossible.
    """
    key = (descriptor.segment, start, stop)
    attached = attachments.get(key)
    if attached is not None:
        attachments.move_to_end(key)
        return attached
    attached = attach_relation(descriptor, window=(start, stop))
    attachments[key] = attached
    while len(attachments) > _ATTACH_CACHE_SIZE:
        _, stale = attachments.popitem(last=False)
        stale.close()
    return attached


def _run_worker_task(plan, descriptor, payload: dict, attachments) -> dict:
    """Execute one plan fragment over an attached shared-relation window."""
    start, stop = payload["start"], payload["stop"]
    attached = _attach_cached(attachments, descriptor, start, stop)
    window = attached.relation  # rows [start, stop) of the shared relation
    if payload["op"] == "morsel":
        weights = attached.extras.get(WEIGHTS_EXTRA) if payload["weighted"] else None
        return execute_plan_morsel(
            plan,
            window,
            0,
            window.num_rows,
            weights,
            payload["domain"],
            payload["cells"],
            row_offset=start,  # representative row ids stay global
        )
    assert payload["op"] == "open"
    rep_ids = attached.extras[REP_EXTRA]
    local_rep_ids = (rep_ids - payload["rep_base"]).astype(np.int64, copy=False)
    return execute_plan_open_shard(
        plan,
        window,
        local_rep_ids,
        payload["rep_count"],
        payload["weight"],
        payload["domain"],
        payload["domain_total"],
        start,
    )


def _worker_main(conn) -> None:
    """Worker process loop: receive plans and tasks, ship partials back.

    Errors inside a task cross the pipe as stable wire codes (the same
    transport the TCP server uses) and are re-raised in the parent; only a
    genuine process death breaks the connection.
    """
    try:  # the parent handles interrupts; workers exit via "stop"/EOF
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    plans: dict[int, object] = {}
    rels: "OrderedDict[str, object]" = OrderedDict()  # mirrored by the parent
    attachments: "OrderedDict[tuple, AttachedRelation]" = OrderedDict()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "stop":
                break
            if op == "plan":
                plans[message[1]] = message[2]
                continue
            if op == "rel":
                rels[message[1]] = message[2]
                while len(rels) > _REL_CACHE_SIZE:
                    rels.popitem(last=False)
                continue
            seq, plan_key, payload = message[1], message[2], message[3]
            try:
                descriptor = rels[payload["rel"]]
                rels.move_to_end(payload["rel"])
                result = _run_worker_task(
                    plans[plan_key], descriptor, payload, attachments
                )
                conn.send(("done", seq, result))
            except BaseException as exc:  # ship *every* failure back
                conn.send(("error", seq, error_to_wire(exc)))
    finally:
        for attached in attachments.values():
            attached.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


class _PoolUnavailableError(MosaicError):
    """Internal: the pool cannot accept a batch (it stopped under a racing
    shutdown or crash).  Never crosses the wire; callers degrade to the
    bit-identical local loop.  Distinct from task errors, which propagate
    as their real types."""


def _register_crashes(
    crashes: dict[int, int], tasks: dict[int, dict], budget: int
) -> list[int]:
    """Count one crash against every task in ``tasks``; return the seqs
    whose per-task crash count now exceeds the retry ``budget`` (each task
    may be re-run up to ``budget`` times after its first crash)."""
    exhausted = []
    for seq in tasks:
        crashes[seq] = crashes.get(seq, 0) + 1
        if crashes[seq] > budget:
            exhausted.append(seq)
    return exhausted


class _Worker:
    __slots__ = ("process", "conn", "plans", "rels", "outstanding", "queue", "inflight")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.plans: set[int] = set()  # plan keys this worker already holds
        # Exact mirror of the worker's descriptor LRU (insert/touch/evict
        # happen in pipe order on both sides, so they never disagree).
        self.rels: "OrderedDict[str, None]" = OrderedDict()
        self.outstanding: dict[int, dict] = {}  # seq -> payload, unfinished
        self.queue: "deque[int]" = deque()  # assigned but not yet sent
        self.inflight = 0  # task frames in the pipe or being computed


class WorkerPool:
    """A fixed-size pool of persistent worker processes.

    One batch runs at a time (callers serialize); within a batch tasks are
    assigned round-robin by sequence number so the assignment is
    deterministic (results merge by sequence, so assignment only affects
    load balance, never output).  Dispatch is flow-controlled: each worker
    holds at most :data:`_MAX_INFLIGHT` small task frames at a time and
    the parent drains results between sends, so it never blocks writing
    to a worker that is blocked writing a large partial back.  Crash
    recovery: a dead worker's unfinished tasks move to a fresh process,
    at most ``max_task_retries`` times per task; beyond that the pool
    terminates and the batch raises :class:`WorkerCrashError`.
    """

    def __init__(
        self,
        processes: int,
        *,
        batch_timeout: float = 120.0,
        start_method: str = "fork",
        max_task_retries: int = 1,
    ):
        self._processes = max(1, processes)
        self._timeout = batch_timeout
        self._retries = max(0, max_task_retries)
        self._ctx = get_context(start_method)
        self._workers: list[_Worker] = []
        self._plan_keys: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._plan_counter = itertools.count()
        self._lock = threading.Lock()
        self._stopped = False
        self.restarts = 0

    def __len__(self) -> int:
        return self._processes

    @property
    def stopped(self) -> bool:
        """True once the pool terminated (crash, timeout, or stop())."""
        return self._stopped

    @property
    def worker_pids(self) -> list[int]:
        return [w.process.pid for w in self._workers if w.process.pid is not None]

    def start(self) -> None:
        with self._lock:
            if self._stopped:
                raise MosaicError("worker pool already stopped")
            while len(self._workers) < self._processes:
                self._workers.append(self._spawn())

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name="mosaic-worker",
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the child end: worker death must read
        # as EOF on parent_conn, not a silent hang.
        child_conn.close()
        return _Worker(process, parent_conn)

    def run_batch(self, plan, payloads: Sequence[dict]) -> list[dict]:
        """Execute ``payloads`` (one fragment each) and return results in order."""
        with self._lock:
            if self._stopped or not self._workers:
                raise _PoolUnavailableError("worker pool is not running")
            return self._run_batch_locked(plan, payloads)

    def _plan_key(self, plan) -> int:
        key = self._plan_keys.get(plan)
        if key is None:
            key = next(self._plan_counter)
            self._plan_keys[plan] = key
        return key

    def _run_batch_locked(self, plan, payloads: Sequence[dict]) -> list[dict]:
        plan_key = self._plan_key(plan)
        results: list = [None] * len(payloads)
        for seq, payload in enumerate(payloads):
            worker = self._workers[seq % len(self._workers)]
            worker.outstanding[seq] = payload
            worker.queue.append(seq)
        for worker in self._workers:
            self._pump(worker, plan_key, plan)

        deadline = time.monotonic() + self._timeout
        crashes: dict[int, int] = {}  # seq -> workers that died holding it
        pending = len(payloads)
        while pending:
            active = {w.conn: w for w in self._workers if w.outstanding}
            ready = connection.wait(list(active), timeout=0.1)
            if not ready:
                if time.monotonic() > deadline:
                    self._terminate_locked()
                    raise WorkerCrashError(
                        f"parallel batch stalled for {self._timeout:.0f}s; "
                        "worker pool terminated"
                    )
                continue
            for conn in ready:
                worker = active[conn]
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    self._recover(worker, crashes, plan_key, plan)
                    continue
                kind, seq, value = message
                if seq in worker.outstanding:
                    del worker.outstanding[seq]
                    worker.inflight -= 1
                    results[seq] = (kind, value)
                    pending -= 1
                self._pump(worker, plan_key, plan)

        for kind, value in results:
            if kind == "error":
                raise error_from_wire(*value)
        return [value for _, value in results]

    def _pump(self, worker: _Worker, plan_key: int, plan) -> None:
        """Top ``worker`` up to the in-flight cap (the batch's send side).

        Called once at batch start and again after every result, so sends
        interleave with receives: at most :data:`_MAX_INFLIGHT` tiny task
        frames sit in the pipe while a worker computes.  Plans and segment
        descriptors (the only large messages) go to a worker at most once
        each, and only to a worker that is draining its pipe — at batch
        start or between tasks — never queued behind an unread backlog.
        """
        try:
            while worker.queue and worker.inflight < _MAX_INFLIGHT:
                seq = worker.queue.popleft()
                payload = worker.outstanding[seq]
                if plan_key not in worker.plans:
                    worker.conn.send(("plan", plan_key, plan))
                    worker.plans.add(plan_key)
                descriptor = payload["rel"]
                segment = descriptor.segment
                if segment in worker.rels:
                    worker.rels.move_to_end(segment)
                else:
                    worker.conn.send(("rel", segment, descriptor))
                    worker.rels[segment] = None
                    while len(worker.rels) > _REL_CACHE_SIZE:
                        worker.rels.popitem(last=False)
                worker.conn.send(("task", seq, plan_key, {**payload, "rel": segment}))
                worker.inflight += 1
        except (OSError, ValueError):
            # Worker already dead: the gather loop observes EOF and retries.
            pass

    def _recover(
        self, worker: _Worker, crashes: dict[int, int], plan_key: int, plan
    ) -> None:
        """Respawn a dead worker and retry its tasks, within budget."""
        tasks = dict(worker.outstanding)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        self.restarts += 1
        if _register_crashes(crashes, tasks, self._retries):
            self._terminate_locked()
            raise WorkerCrashError(
                f"worker process died executing parallel task(s) {sorted(tasks)} "
                "and the retry budget is exhausted"
            )
        fresh = self._spawn()
        fresh.outstanding = tasks
        fresh.queue = deque(sorted(tasks))
        self._workers[self._workers.index(worker)] = fresh
        self._pump(fresh, plan_key, plan)

    def _terminate_locked(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self._workers:
            worker.process.join(timeout=2.0)
        self._workers.clear()
        self._stopped = True

    def stop(self) -> None:
        """Graceful, idempotent teardown: stop messages, join, terminate."""
        with self._lock:
            if self._stopped and not self._workers:
                return
            for worker in self._workers:
                try:
                    worker.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            for worker in self._workers:
                worker.process.join(timeout=2.0)
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass
                if worker.process.is_alive():  # pragma: no cover - stuck worker
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
            self._workers.clear()
            self._stopped = True


class ParallelExecution:
    """Engine-facing parallel context: pool + segment store + routing.

    Passed as ``execute_plan(..., parallel=...)``.  Exposes
    ``morsel_rows`` (the partition threshold), :meth:`map_morsels` (pool
    or identical in-process loop), and :meth:`run_open_shards` (batched
    OPEN repetition sharding).  Thread-safe: one pool batch runs at a
    time; a second concurrent query finding the pool busy runs its
    (bit-identical) morsel loop in-process instead of queueing.
    """

    def __init__(
        self,
        config: ExecutionConfig | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.config = config or ExecutionConfig()
        self._processes = self.config.resolved_processes()
        self.morsel_rows = self.config.resolved_morsel_rows()
        self._store = SharedRelationStore(self.config.max_shared_segments)
        self._pool: WorkerPool | None = None
        self._pool_lock = threading.Lock()
        self._batch_lock = threading.Lock()
        self._closed = False
        self._restarts_base = 0  # restarts accumulated by discarded pools
        # Counters live in the engine's metrics registry (or a private one
        # when constructed standalone) so the Prometheus endpoint and
        # cache_stats() read the same numbers.
        registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: registry.counter(f"mosaic_pool_{name}_total", help=help_text)
            for name, help_text in (
                ("parallel_batches", "Morsel batches executed on the worker pool"),
                ("local_batches", "Morsel batches executed in-process"),
                ("tasks_dispatched", "Individual tasks shipped to pool workers"),
                ("plan_fallbacks", "Size-qualified plans that could not be morsel-decomposed"),
                ("pool_busy", "Batches that found the pool busy and ran locally"),
            )
        }
        self._worker_crashes = registry.counter(
            "mosaic_pool_worker_crashes_total",
            help="Pool batches terminated by a worker crash or stall",
        )
        # Engines dropped without shutdown() must not leak /dev/shm
        # segments: the finalizer releases the store when this context is
        # collected (the pool's daemon processes die with the parent).
        weakref.finalize(self, SharedRelationStore.close_all, self._store)

    # -- engine integration ------------------------------------------- #

    @property
    def processes(self) -> int:
        return self._processes

    def note_fallback(self) -> None:
        """A size-qualified plan could not be morsel-decomposed."""
        self._counters["plan_fallbacks"].inc()

    def map_morsels(
        self,
        plan,
        relation,
        weights,
        ranges: Sequence[tuple[int, int]],
        domain_sizes: tuple[int, ...],
        total_cells: int,
        share_key: tuple | None = None,
    ) -> list[dict]:
        """Partial aggregates for every morsel, pool-executed when possible.

        The in-process loop below runs the *same* fragment executor over
        the same ranges, so both paths return identical partial lists.
        ``share_key`` is the optional stable segment identity forwarded to
        :meth:`SharedRelationStore.lease` so repeated queries over an
        unchanged relation reuse the live shared segment even when the
        relation object itself was re-derived (see shm.py).
        """
        if not self._closed and self._processes >= 1 and len(ranges) >= 2:
            partials = self._pool_morsels(
                plan, relation, weights, ranges, domain_sizes, total_cells, share_key
            )
            if partials is not None:
                return partials
        self._counters["local_batches"].inc()
        return [
            execute_plan_morsel(
                plan, relation, start, stop, weights, domain_sizes, total_cells
            )
            for start, stop in ranges
        ]

    def _pool_morsels(
        self, plan, relation, weights, ranges, domain_sizes, total_cells, share_key=None
    ) -> list[dict] | None:
        if not self._batch_lock.acquire(blocking=False):
            self._counters["pool_busy"].inc()
            return None
        trace = current_trace()
        try:
            pool = self._ensure_pool()
            if pool is None:
                return None
            extras = {} if weights is None else {WEIGHTS_EXTRA: weights}
            with (
                trace.span("pool.attach", rows=relation.num_rows)
                if trace is not None
                else nullcontext({})
            ):
                try:
                    handle = self._store.lease(relation, extras, key=share_key)
                except MosaicError:
                    return None
            try:
                payloads = [
                    {
                        "op": "morsel",
                        "rel": handle.descriptor,
                        "start": start,
                        "stop": stop,
                        "weighted": weights is not None,
                        "domain": domain_sizes,
                        "cells": total_cells,
                    }
                    for start, stop in ranges
                ]
                with (
                    trace.span(
                        "pool.gather", tasks=len(payloads), workers=self._processes
                    )
                    if trace is not None
                    else nullcontext({})
                ):
                    partials = self._run_pool_batch(pool, plan, payloads)
            finally:
                handle.release()
            if partials is None:
                return None
            self._counters["parallel_batches"].inc()
            self._counters["tasks_dispatched"].inc(len(payloads))
            return partials
        finally:
            self._batch_lock.release()

    def run_open_shards(
        self,
        plan,
        data,
        rep_ids: np.ndarray,
        repetitions: int,
        weight_value: float,
        layout=None,
    ):
        """Shard a batched OPEN execution across repetitions on the pool.

        Returns ``(aggregate_node, CompositeAggregates)`` bit-identical to
        :func:`~repro.engine.compiler.execute_plan_composite`, or ``None``
        when the pool should not (or cannot) run it — the caller then uses
        the one-pass in-process composite, which produces the same answer.

        ``layout`` is an optional precomputed
        :func:`~repro.engine.compiler.composite_layout` result — the
        adaptive streaming path resolves it once on its first chunk and
        passes it for every later chunk (the generator's fitted vocabulary
        is stable, so the domain never changes mid-stream).
        """
        if (
            self._closed
            or self._processes < 1
            or repetitions < 2
            or data.num_rows <= self.morsel_rows
        ):
            return None
        if layout is None:
            layout = composite_layout(plan, data)
        if layout is None:
            self.note_fallback()
            return None
        aggregate, domain_sizes, domain_total = layout
        if not self._batch_lock.acquire(blocking=False):
            self._counters["pool_busy"].inc()
            return None
        trace = current_trace()
        try:
            pool = self._ensure_pool()
            if pool is None:
                return None
            rep_ids = np.ascontiguousarray(rep_ids, dtype=np.int64)
            with (
                trace.span("pool.attach", rows=data.num_rows, repetitions=repetitions)
                if trace is not None
                else nullcontext({})
            ):
                try:
                    handle = self._store.lease(data, {REP_EXTRA: rep_ids})
                except MosaicError:
                    return None
            try:
                payloads = []
                shards = min(self._processes, repetitions)
                for chunk in np.array_split(np.arange(repetitions), shards):
                    rep_base, rep_stop = int(chunk[0]), int(chunk[-1]) + 1
                    payloads.append(
                        {
                            "op": "open",
                            "rel": handle.descriptor,
                            # rep_ids ascend (batch rows are rep-major), so
                            # shard row ranges come from binary search.
                            "start": int(np.searchsorted(rep_ids, rep_base, "left")),
                            "stop": int(np.searchsorted(rep_ids, rep_stop, "left")),
                            "rep_base": rep_base,
                            "rep_count": rep_stop - rep_base,
                            "weight": float(weight_value),
                            "domain": domain_sizes,
                            "domain_total": domain_total,
                        }
                    )
                with (
                    trace.span(
                        "pool.gather", tasks=len(payloads), workers=self._processes
                    )
                    if trace is not None
                    else nullcontext({})
                ):
                    partials = self._run_pool_batch(pool, plan, payloads)
            finally:
                handle.release()
            if partials is None:
                return None
            self._counters["parallel_batches"].inc()
            self._counters["tasks_dispatched"].inc(len(payloads))
            return aggregate, merge_composite_partials(
                partials, repetitions, domain_total
            )
        finally:
            self._batch_lock.release()

    def _run_pool_batch(
        self, pool: WorkerPool, plan, payloads: Sequence[dict]
    ) -> list[dict] | None:
        """``pool.run_batch`` with failed-pool hygiene.

        A batch that terminates the pool (crash budget exhausted, stall
        timeout) must not leave the dead pool wired into the engine —
        otherwise every later large-scan query would raise instead of
        degrading.  The crash itself still surfaces to the caller; the
        discarded reference lets the *next* query respawn a fresh pool.
        A plain refusal (pool stopped under a racing shutdown) returns
        ``None``: the caller falls back to the bit-identical local loop.
        Real task errors (a predicate raising over the data, say)
        propagate as their own types and leave the pool alone — the local
        loop would raise them identically.
        """
        try:
            return pool.run_batch(plan, payloads)
        except WorkerCrashError as exc:
            self._worker_crashes.inc()
            trace = current_trace()
            if trace is not None:
                # Stamp the failing query's trace id into the error so the
                # crash report and the trace can be correlated.  The id
                # rides error_to_wire's scalar-attribute shipping across
                # the server boundary for free.
                exc.trace_id = trace.trace_id
                if exc.args:
                    exc.args = (f"{exc.args[0]} [trace {trace.trace_id}]",)
            self._discard_pool(pool)
            raise
        except _PoolUnavailableError:
            self._discard_pool(pool)
            return None

    def _discard_pool(self, pool: WorkerPool) -> None:
        """Forget a terminated pool so the next query can respawn one."""
        with self._pool_lock:
            if self._pool is pool:
                self._restarts_base += pool.restarts
                self._pool = None
        pool.stop()

    # -- lifecycle ----------------------------------------------------- #

    def _ensure_pool(self) -> WorkerPool | None:
        with self._pool_lock:
            if self._closed:
                return None
            if self._pool is not None and self._pool.stopped:
                # A failed batch terminated this pool; respawn a fresh one.
                self._restarts_base += self._pool.restarts
                self._pool = None
            if self._pool is None:
                pool = WorkerPool(
                    self._processes,
                    batch_timeout=self.config.worker_timeout,
                    start_method=self.config.resolved_start_method(),
                    max_task_retries=self.config.max_task_retries,
                )
                try:
                    pool.start()
                except Exception:  # pragma: no cover - spawn failure
                    pool.stop()
                    self._processes = 0
                    return None
                self._pool = pool
                weakref.finalize(self, WorkerPool.stop, pool)
            return self._pool

    def shutdown(self) -> None:
        """Stop workers and unlink every shared segment (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.stop()
        self._store.close_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> list[int]:
        pool = self._pool
        return pool.worker_pids if pool is not None else []

    def stats(self) -> dict[str, int]:
        """Flat counters for observability (``Engine.cache_stats``)."""
        store = self._store.stats()
        pool = self._pool
        return {
            "workers": self._processes,
            "worker_restarts": self._restarts_base
            + (pool.restarts if pool is not None else 0),
            **{name: int(c.value()) for name, c in self._counters.items()},
            "worker_crashes": int(self._worker_crashes.value()),
            "segments_shared": store["shares"],
            "segment_reuses": store["reuses"],
            "segment_evictions": store["evictions"],
            # Durable page files served to workers without any shm copy
            # (the zero-copy path for mmap-backed relations; see
            # repro.storage.pages and shm.MappedSegmentHandle).
            "segment_mmap_leases": store["mmap_leases"],
            "live_segments": store["live_segments"],
        }
