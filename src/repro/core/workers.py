"""Morsel-driven multi-process execution: worker pool + parallel context.

The GIL serializes every kernel a thread pool runs (``BENCH_concurrency``:
0.9x at 8 threads), so scan-heavy aggregation scales out with *processes*.
This module provides:

- :class:`ExecutionConfig` — how many workers (``MOSAIC_WORKERS`` /
  ``ExecutionConfig(processes=N)``), the morsel threshold
  (``MOSAIC_MORSEL_ROWS``), timeouts, retry budget.
- :class:`WorkerPool` — a persistent pool of worker processes connected by
  pipes.  Workers receive ``(plan, segment descriptor, morsel)`` tasks,
  attach the shared segment (O(1), zero row serialization — see
  :mod:`repro.relational.shm`), execute the plan fragment, and ship back
  the small partial-aggregate arrays.  Plans are sent to each worker once
  and cached by id; crashed workers are respawned and their tasks retried
  once before the batch fails with :class:`~repro.errors.WorkerCrashError`
  — a query never hangs on a dead worker.
- :class:`ParallelExecution` — the engine-facing context.  It owns the
  pool and the :class:`~repro.relational.shm.SharedRelationStore`, decides
  pool vs. in-process execution, and shards batched OPEN runs across
  repetitions.

Determinism contract
--------------------
The morsel decomposition is a pure function of ``(num_rows, morsel_rows)``
and partials merge in morsel-index order, so a context with ``processes=0``
running the morsel loop in-process produces byte-identical results to any
worker count — worker scheduling can never reorder a float reduction.  The
pool is therefore purely a throughput lever; correctness never depends on
it, which is also why every pool-side refusal (busy, closed, spawn
failure) silently degrades to the identical local loop.
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Sequence

import numpy as np

from repro.engine.compiler import (
    composite_layout,
    execute_plan_morsel,
    execute_plan_open_shard,
)
from repro.errors import MosaicError, WorkerCrashError, error_from_wire, error_to_wire
from repro.relational.kernels import merge_composite_partials
from repro.relational.shm import (
    AttachedRelation,
    SharedRelationStore,
    attach_relation,
)

#: Default morsel size: relations at or below this row count use the
#: classic single-pass kernels; larger scans split into ranges of this
#: many rows.  65536 rows x 8 bytes is a comfortable per-task unit (a few
#: hundred microseconds of kernel time) while keeping task counts low.
DEFAULT_MORSEL_ROWS = 65536

#: Extra-array names inside shared segments.
WEIGHTS_EXTRA = "__weights__"
REP_EXTRA = "__rep__"

#: Per-worker cap on cached (segment, window) attachments (LRU).  Windows
#: are morsel-sized, so entries are small; the cap just bounds how many
#: distinct relations x morsels a worker keeps mapped.
_ATTACH_CACHE_SIZE = 32


@dataclass
class ExecutionConfig:
    """Multi-process execution knobs (engine-level).

    ``processes=None`` reads ``MOSAIC_WORKERS`` (unset/0 disables the
    pool); ``morsel_rows=None`` reads ``MOSAIC_MORSEL_ROWS`` (default
    ``DEFAULT_MORSEL_ROWS``).  ``start_method=None`` prefers ``fork``
    (workers inherit the loaded interpreter; ~ms spawn) and falls back to
    ``spawn``; override via ``MOSAIC_WORKER_START_METHOD``.
    ``max_task_retries`` is the per-task crash-retry budget (0 fails fast,
    for deterministic crash tests).
    """

    processes: int | None = None
    morsel_rows: int | None = None
    max_shared_segments: int = 16
    worker_timeout: float = 120.0
    start_method: str | None = None
    max_task_retries: int = 1

    def resolved_processes(self) -> int:
        if self.processes is not None:
            return max(0, int(self.processes))
        env = os.environ.get("MOSAIC_WORKERS", "").strip()
        if env:
            try:
                return max(0, int(env))
            except ValueError:
                return 0
        return 0

    def resolved_morsel_rows(self) -> int:
        if self.morsel_rows is not None:
            return max(1, int(self.morsel_rows))
        env = os.environ.get("MOSAIC_MORSEL_ROWS", "").strip()
        if env:
            try:
                return max(1, int(env))
            except ValueError:
                pass
        return DEFAULT_MORSEL_ROWS

    def resolved_start_method(self) -> str:
        method = self.start_method or os.environ.get(
            "MOSAIC_WORKER_START_METHOD", ""
        ).strip()
        available = get_all_start_methods()
        if method and method in available:
            return method
        return "fork" if "fork" in available else "spawn"


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


def _attach_cached(
    attachments: "OrderedDict[tuple, AttachedRelation]", descriptor, start: int, stop: int
) -> AttachedRelation:
    """This worker's attachment for one ``[start, stop)`` window (LRU-cached).

    Attaching *windows* rather than whole relations keeps the per-attach
    TEXT ``vocab[codes]`` gather proportional to the rows this worker
    actually processes; the morsel decomposition is deterministic, so the
    same windows recur across executions of a cached relation and hit the
    cache.  Keys include the segment name, which is unique per segment
    lifetime (uuid suffix), so stale reuse is impossible.
    """
    key = (descriptor.segment, start, stop)
    attached = attachments.get(key)
    if attached is not None:
        attachments.move_to_end(key)
        return attached
    attached = attach_relation(descriptor, window=(start, stop))
    attachments[key] = attached
    while len(attachments) > _ATTACH_CACHE_SIZE:
        _, stale = attachments.popitem(last=False)
        stale.close()
    return attached


def _run_worker_task(plan, payload: dict, attachments) -> dict:
    """Execute one plan fragment over an attached shared-relation window."""
    start, stop = payload["start"], payload["stop"]
    attached = _attach_cached(attachments, payload["rel"], start, stop)
    window = attached.relation  # rows [start, stop) of the shared relation
    if payload["op"] == "morsel":
        weights = attached.extras.get(WEIGHTS_EXTRA) if payload["weighted"] else None
        return execute_plan_morsel(
            plan,
            window,
            0,
            window.num_rows,
            weights,
            payload["domain"],
            payload["cells"],
            row_offset=start,  # representative row ids stay global
        )
    assert payload["op"] == "open"
    rep_ids = attached.extras[REP_EXTRA]
    local_rep_ids = (rep_ids - payload["rep_base"]).astype(np.int64, copy=False)
    return execute_plan_open_shard(
        plan,
        window,
        local_rep_ids,
        payload["rep_count"],
        payload["weight"],
        payload["domain"],
        payload["domain_total"],
        start,
    )


def _worker_main(conn) -> None:
    """Worker process loop: receive plans and tasks, ship partials back.

    Errors inside a task cross the pipe as stable wire codes (the same
    transport the TCP server uses) and are re-raised in the parent; only a
    genuine process death breaks the connection.
    """
    try:  # the parent handles interrupts; workers exit via "stop"/EOF
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    plans: dict[int, object] = {}
    attachments: "OrderedDict[tuple, AttachedRelation]" = OrderedDict()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "stop":
                break
            if op == "plan":
                plans[message[1]] = message[2]
                continue
            seq, plan_key, payload = message[1], message[2], message[3]
            try:
                result = _run_worker_task(plans[plan_key], payload, attachments)
                conn.send(("done", seq, result))
            except BaseException as exc:  # ship *every* failure back
                conn.send(("error", seq, error_to_wire(exc)))
    finally:
        for attached in attachments.values():
            attached.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


class _Worker:
    __slots__ = ("process", "conn", "plans", "outstanding")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.plans: set[int] = set()  # plan keys this worker already holds
        self.outstanding: dict[int, dict] = {}  # seq -> payload, current batch


class WorkerPool:
    """A fixed-size pool of persistent worker processes.

    One batch runs at a time (callers serialize); within a batch tasks are
    assigned round-robin by sequence number so the assignment is
    deterministic (results merge by sequence, so assignment only affects
    load balance, never output).  Crash recovery: a dead worker's
    unfinished tasks move to a fresh process, at most
    ``max_task_retries`` times per task; beyond that the pool terminates
    and the batch raises :class:`WorkerCrashError`.
    """

    def __init__(
        self,
        processes: int,
        *,
        batch_timeout: float = 120.0,
        start_method: str = "fork",
        max_task_retries: int = 1,
    ):
        self._processes = max(1, processes)
        self._timeout = batch_timeout
        self._retries = max(0, max_task_retries)
        self._ctx = get_context(start_method)
        self._workers: list[_Worker] = []
        self._plan_keys: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._plan_counter = itertools.count()
        self._lock = threading.Lock()
        self._stopped = False
        self.restarts = 0

    def __len__(self) -> int:
        return self._processes

    @property
    def worker_pids(self) -> list[int]:
        return [w.process.pid for w in self._workers if w.process.pid is not None]

    def start(self) -> None:
        with self._lock:
            if self._stopped:
                raise MosaicError("worker pool already stopped")
            while len(self._workers) < self._processes:
                self._workers.append(self._spawn())

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name="mosaic-worker",
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the child end: worker death must read
        # as EOF on parent_conn, not a silent hang.
        child_conn.close()
        return _Worker(process, parent_conn)

    def run_batch(self, plan, payloads: Sequence[dict]) -> list[dict]:
        """Execute ``payloads`` (one fragment each) and return results in order."""
        with self._lock:
            if self._stopped or not self._workers:
                raise MosaicError("worker pool is not running")
            return self._run_batch_locked(plan, payloads)

    def _plan_key(self, plan) -> int:
        key = self._plan_keys.get(plan)
        if key is None:
            key = next(self._plan_counter)
            self._plan_keys[plan] = key
        return key

    def _run_batch_locked(self, plan, payloads: Sequence[dict]) -> list[dict]:
        plan_key = self._plan_key(plan)
        results: list = [None] * len(payloads)
        for seq, payload in enumerate(payloads):
            self._workers[seq % len(self._workers)].outstanding[seq] = payload
        for worker in self._workers:
            if worker.outstanding:
                self._send_tasks(worker, plan_key, plan)

        deadline = time.monotonic() + self._timeout
        retried: set[int] = set()
        pending = len(payloads)
        while pending:
            active = {w.conn: w for w in self._workers if w.outstanding}
            ready = connection.wait(list(active), timeout=0.1)
            if not ready:
                if time.monotonic() > deadline:
                    self._terminate_locked()
                    raise WorkerCrashError(
                        f"parallel batch stalled for {self._timeout:.0f}s; "
                        "worker pool terminated"
                    )
                continue
            for conn in ready:
                worker = active[conn]
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    self._recover(worker, retried, plan_key, plan)
                    continue
                kind, seq, value = message
                if seq in worker.outstanding:
                    del worker.outstanding[seq]
                    results[seq] = (kind, value)
                    pending -= 1

        for kind, value in results:
            if kind == "error":
                raise error_from_wire(*value)
        return [value for _, value in results]

    def _send_tasks(self, worker: _Worker, plan_key: int, plan) -> None:
        try:
            if plan_key not in worker.plans:
                worker.conn.send(("plan", plan_key, plan))
                worker.plans.add(plan_key)
            for seq in sorted(worker.outstanding):
                worker.conn.send(("task", seq, plan_key, worker.outstanding[seq]))
        except (OSError, ValueError):
            # Worker already dead: the gather loop observes EOF and retries.
            pass

    def _recover(self, worker: _Worker, retried: set[int], plan_key: int, plan) -> None:
        """Respawn a dead worker and retry its tasks, within budget."""
        tasks = dict(worker.outstanding)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        self.restarts += 1
        exhausted = [
            seq for seq in tasks if self._retries < 1 or seq in retried
        ]
        if exhausted:
            self._terminate_locked()
            raise WorkerCrashError(
                f"worker process died executing parallel task(s) {sorted(tasks)} "
                "and the retry budget is exhausted"
            )
        retried.update(tasks)
        fresh = self._spawn()
        fresh.outstanding = tasks
        self._workers[self._workers.index(worker)] = fresh
        self._send_tasks(fresh, plan_key, plan)

    def _terminate_locked(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self._workers:
            worker.process.join(timeout=2.0)
        self._workers.clear()
        self._stopped = True

    def stop(self) -> None:
        """Graceful, idempotent teardown: stop messages, join, terminate."""
        with self._lock:
            if self._stopped and not self._workers:
                return
            for worker in self._workers:
                try:
                    worker.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            for worker in self._workers:
                worker.process.join(timeout=2.0)
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover
                    pass
                if worker.process.is_alive():  # pragma: no cover - stuck worker
                    worker.process.terminate()
                    worker.process.join(timeout=2.0)
            self._workers.clear()
            self._stopped = True


class ParallelExecution:
    """Engine-facing parallel context: pool + segment store + routing.

    Passed as ``execute_plan(..., parallel=...)``.  Exposes
    ``morsel_rows`` (the partition threshold), :meth:`map_morsels` (pool
    or identical in-process loop), and :meth:`run_open_shards` (batched
    OPEN repetition sharding).  Thread-safe: one pool batch runs at a
    time; a second concurrent query finding the pool busy runs its
    (bit-identical) morsel loop in-process instead of queueing.
    """

    def __init__(self, config: ExecutionConfig | None = None):
        self.config = config or ExecutionConfig()
        self._processes = self.config.resolved_processes()
        self.morsel_rows = self.config.resolved_morsel_rows()
        self._store = SharedRelationStore(self.config.max_shared_segments)
        self._pool: WorkerPool | None = None
        self._pool_lock = threading.Lock()
        self._batch_lock = threading.Lock()
        self._closed = False
        self._counters = {
            "parallel_batches": 0,
            "local_batches": 0,
            "tasks_dispatched": 0,
            "plan_fallbacks": 0,
            "pool_busy": 0,
        }
        # Engines dropped without shutdown() must not leak /dev/shm
        # segments: the finalizer releases the store when this context is
        # collected (the pool's daemon processes die with the parent).
        weakref.finalize(self, SharedRelationStore.close_all, self._store)

    # -- engine integration ------------------------------------------- #

    @property
    def processes(self) -> int:
        return self._processes

    def note_fallback(self) -> None:
        """A size-qualified plan could not be morsel-decomposed."""
        self._counters["plan_fallbacks"] += 1

    def map_morsels(
        self,
        plan,
        relation,
        weights,
        ranges: Sequence[tuple[int, int]],
        domain_sizes: tuple[int, ...],
        total_cells: int,
    ) -> list[dict]:
        """Partial aggregates for every morsel, pool-executed when possible.

        The in-process loop below runs the *same* fragment executor over
        the same ranges, so both paths return identical partial lists.
        """
        if not self._closed and self._processes >= 1 and len(ranges) >= 2:
            partials = self._pool_morsels(
                plan, relation, weights, ranges, domain_sizes, total_cells
            )
            if partials is not None:
                return partials
        self._counters["local_batches"] += 1
        return [
            execute_plan_morsel(
                plan, relation, start, stop, weights, domain_sizes, total_cells
            )
            for start, stop in ranges
        ]

    def _pool_morsels(
        self, plan, relation, weights, ranges, domain_sizes, total_cells
    ) -> list[dict] | None:
        if not self._batch_lock.acquire(blocking=False):
            self._counters["pool_busy"] += 1
            return None
        try:
            pool = self._ensure_pool()
            if pool is None:
                return None
            extras = {} if weights is None else {WEIGHTS_EXTRA: weights}
            try:
                handle = self._store.lease(relation, extras)
            except MosaicError:
                return None
            try:
                payloads = [
                    {
                        "op": "morsel",
                        "rel": handle.descriptor,
                        "start": start,
                        "stop": stop,
                        "weighted": weights is not None,
                        "domain": domain_sizes,
                        "cells": total_cells,
                    }
                    for start, stop in ranges
                ]
                partials = pool.run_batch(plan, payloads)
            finally:
                handle.release()
            self._counters["parallel_batches"] += 1
            self._counters["tasks_dispatched"] += len(payloads)
            return partials
        finally:
            self._batch_lock.release()

    def run_open_shards(
        self, plan, data, rep_ids: np.ndarray, repetitions: int, weight_value: float
    ):
        """Shard a batched OPEN execution across repetitions on the pool.

        Returns ``(aggregate_node, CompositeAggregates)`` bit-identical to
        :func:`~repro.engine.compiler.execute_plan_composite`, or ``None``
        when the pool should not (or cannot) run it — the caller then uses
        the one-pass in-process composite, which produces the same answer.
        """
        if (
            self._closed
            or self._processes < 1
            or repetitions < 2
            or data.num_rows <= self.morsel_rows
        ):
            return None
        layout = composite_layout(plan, data)
        if layout is None:
            self.note_fallback()
            return None
        aggregate, domain_sizes, domain_total = layout
        if not self._batch_lock.acquire(blocking=False):
            self._counters["pool_busy"] += 1
            return None
        try:
            pool = self._ensure_pool()
            if pool is None:
                return None
            rep_ids = np.ascontiguousarray(rep_ids, dtype=np.int64)
            try:
                handle = self._store.lease(data, {REP_EXTRA: rep_ids})
            except MosaicError:
                return None
            try:
                payloads = []
                shards = min(self._processes, repetitions)
                for chunk in np.array_split(np.arange(repetitions), shards):
                    rep_base, rep_stop = int(chunk[0]), int(chunk[-1]) + 1
                    payloads.append(
                        {
                            "op": "open",
                            "rel": handle.descriptor,
                            # rep_ids ascend (batch rows are rep-major), so
                            # shard row ranges come from binary search.
                            "start": int(np.searchsorted(rep_ids, rep_base, "left")),
                            "stop": int(np.searchsorted(rep_ids, rep_stop, "left")),
                            "rep_base": rep_base,
                            "rep_count": rep_stop - rep_base,
                            "weight": float(weight_value),
                            "domain": domain_sizes,
                            "domain_total": domain_total,
                        }
                    )
                partials = pool.run_batch(plan, payloads)
            finally:
                handle.release()
            self._counters["parallel_batches"] += 1
            self._counters["tasks_dispatched"] += len(payloads)
            return aggregate, merge_composite_partials(
                partials, repetitions, domain_total
            )
        finally:
            self._batch_lock.release()

    # -- lifecycle ----------------------------------------------------- #

    def _ensure_pool(self) -> WorkerPool | None:
        with self._pool_lock:
            if self._closed:
                return None
            if self._pool is None:
                pool = WorkerPool(
                    self._processes,
                    batch_timeout=self.config.worker_timeout,
                    start_method=self.config.resolved_start_method(),
                    max_task_retries=self.config.max_task_retries,
                )
                try:
                    pool.start()
                except Exception:  # pragma: no cover - spawn failure
                    pool.stop()
                    self._processes = 0
                    return None
                self._pool = pool
                weakref.finalize(self, WorkerPool.stop, pool)
            return self._pool

    def shutdown(self) -> None:
        """Stop workers and unlink every shared segment (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._closed = True
        if pool is not None:
            pool.stop()
        self._store.close_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def worker_pids(self) -> list[int]:
        pool = self._pool
        return pool.worker_pids if pool is not None else []

    def stats(self) -> dict[str, int]:
        """Flat counters for observability (``Engine.cache_stats``)."""
        store = self._store.stats()
        pool = self._pool
        return {
            "workers": self._processes,
            "worker_restarts": pool.restarts if pool is not None else 0,
            **self._counters,
            "segments_shared": store["shares"],
            "segment_reuses": store["reuses"],
            "segment_evictions": store["evictions"],
            "live_segments": store["live_segments"],
        }
