"""``MosaicDB``: the public facade tying the whole system together.

Typical SQL session (the paper's Sec. 2 motivating example)::

    db = MosaicDB(seed=0)
    db.execute("CREATE TEMPORARY TABLE Eurostat (country TEXT, email TEXT, n INT)")
    db.execute("INSERT INTO Eurostat VALUES ('UK', 'Yahoo', 20000), ...")
    db.execute("CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT)")
    db.execute("CREATE METADATA EuropeMigrants_M1 AS (SELECT country, n FROM Eurostat)")
    db.execute("CREATE SAMPLE YahooMigrants AS (SELECT * FROM EuropeMigrants "
               "WHERE email = 'Yahoo')")
    db.ingest_rows("YahooMigrants", [...])
    result = db.execute("SELECT SEMI-OPEN country, email, COUNT(*) "
                        "FROM EuropeMigrants GROUP BY country, email")

Since the Engine / Session split (see ``ARCHITECTURE.md``), ``MosaicDB``
is a thin facade: it builds one shared thread-safe
:class:`~repro.core.engine.Engine` plus a root
:class:`~repro.core.session.Session` and delegates every call.  Concurrent
clients open their own sessions over the same engine::

    conn = db.connect()                 # cheap; independent RNG + defaults
    conn.execute("SELECT CLOSED COUNT(*) FROM YahooMigrants")

Programmatic helpers (:meth:`draw_sample`, :meth:`register_marginal`,
:meth:`ingest_relation`) cover what experiments need beyond the SQL
surface.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.catalog.metadata import Marginal
from repro.core.engine import Engine
from repro.core.result import QueryResult
from repro.core.workers import ExecutionConfig
from repro.core.session import Session, SessionConfig
from repro.core.visibility import Visibility
from repro.engine.open_world import OpenQueryConfig
from repro.mechanisms.base import SamplingMechanism
from repro.relational.relation import Relation


class MosaicDB:
    """An in-memory Mosaic database instance.

    Owns a shared :class:`Engine` and a root :class:`Session`; every
    method delegates to one of the two.  The facade itself is exactly as
    thread-safe as its root session — for concurrent clients, hand each
    thread its own session from :meth:`connect`.
    """

    def __init__(
        self,
        seed: int = 0,
        default_visibility: Visibility = Visibility.SEMI_OPEN,
        open_config: OpenQueryConfig | None = None,
        combine_samples: bool = False,
        execution: ExecutionConfig | None = None,
        data_dir: str | None = None,
    ):
        config = SessionConfig(
            seed=seed,
            default_visibility=default_visibility,
            combine_samples=combine_samples,
        )
        if open_config is not None:
            config.open_config = open_config
        self.engine = Engine(
            seed=seed,
            statement_cache_size=config.statement_cache_size,
            plan_cache_size=config.plan_cache_size,
            reweight_cache_size=config.reweight_cache_size,
            generator_cache_size=config.generator_cache_size,
            execution=execution,
            data_dir=data_dir,
        )
        self.session = self.engine.root_session(config)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut the shared engine down (idempotent).

        Drains the OPEN-repetition thread pool and fences further
        statements with :class:`~repro.errors.SessionClosedError` — the
        deterministic teardown the network server builds on.
        """
        self.session.close()
        self.engine.shutdown()

    shutdown = close

    def __enter__(self) -> "MosaicDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #

    def connect(
        self,
        default_visibility: Visibility | None = None,
        open_config: OpenQueryConfig | None = None,
        combine_samples: bool | None = None,
    ) -> Session:
        """Open a new session over this database's shared engine.

        Each session sees the same catalog and caches but keeps its own
        defaults and an independent deterministic RNG (child ``k`` of the
        engine's root ``SeedSequence``, ``k`` = connection order).
        Omitted arguments inherit the facade's current defaults.
        """
        import dataclasses

        root = self.session.config
        config = SessionConfig(
            seed=root.seed,
            default_visibility=(
                root.default_visibility
                if default_visibility is None
                else default_visibility
            ),
            combine_samples=(
                root.combine_samples if combine_samples is None else combine_samples
            ),
        )
        # Inherited OPEN config is *copied*: set_open_generator (or any
        # repetitions/max_workers tweak) on one session must not leak into
        # the root or sibling sessions.
        config.open_config = (
            dataclasses.replace(root.open_config)
            if open_config is None
            else open_config
        )
        return self.engine.connect(config)

    # ------------------------------------------------------------------ #
    # Backward-compatible delegation
    # ------------------------------------------------------------------ #

    @property
    def catalog(self):
        return self.engine.catalog

    @property
    def config(self) -> SessionConfig:
        return self.session.config

    @property
    def rng(self) -> np.random.Generator:
        return self.session.rng

    def execute(self, sql: str) -> QueryResult:
        """Parse and run one statement; DDL returns an empty status result."""
        return self.session.execute(sql)

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Run a ``;``-separated script, returning one result per statement."""
        return self.session.execute_script(sql)

    def query(self, sql: str) -> QueryResult:
        """Alias of :meth:`execute` for read-only callers."""
        return self.session.execute(sql)

    def execute_statement(self, statement, sql_text: str | None = None) -> QueryResult:
        """Run an already-parsed (programmatic) statement AST."""
        return self.session.execute_statement(statement, sql_text=sql_text)

    def checkpoint(self) -> dict:
        """Durably persist catalog + fitted models (needs ``data_dir``)."""
        return self.engine.checkpoint()

    def commit(self) -> dict:
        """Alias of :meth:`checkpoint` (worldbase-style commit idiom)."""
        return self.engine.commit()

    def rollback(self) -> dict:
        """Discard every mutation since the last checkpoint (needs ``data_dir``)."""
        return self.engine.rollback()

    def clear_caches(self) -> None:
        """Empty all pipeline caches (plans, statements, reweights, models)."""
        self.engine.clear_caches()

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Hit/miss/size counters for every engine cache (all sessions)."""
        return self.engine.cache_stats()

    def ingest_relation(self, name: str, relation: Relation) -> None:
        """Append tuples to a sample or auxiliary table by name."""
        self.engine.ingest_relation(name, relation)

    def ingest_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> None:
        self.engine.ingest_rows(name, rows)

    def draw_sample(
        self,
        name: str,
        population_name: str,
        population_data: Relation,
        mechanism: SamplingMechanism,
    ):
        """Draw a concrete sample from materialised population data.

        Experiment-harness helper: real Mosaic deployments never hold
        population tuples, but reproductions do, and need samples whose
        bias is known exactly.
        """
        return self.session.draw_sample(
            name, population_name, population_data, mechanism
        )

    def register_marginal(
        self, metadata_name: str, population_name: str, marginal: Marginal
    ) -> None:
        """Attach a precomputed marginal to a population."""
        self.engine.register_marginal(metadata_name, population_name, marginal)

    def set_open_generator(self, factory) -> None:
        """Replace the OPEN generator factory (e.g. swap in BayesNetGenerator)."""
        self.session.set_open_generator(factory)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MosaicDB({self.engine.catalog!r})"
