"""``MosaicDB``: the public facade tying the whole system together.

Typical SQL session (the paper's Sec. 2 motivating example)::

    db = MosaicDB(seed=0)
    db.execute("CREATE TEMPORARY TABLE Eurostat (country TEXT, email TEXT, n INT)")
    db.execute("INSERT INTO Eurostat VALUES ('UK', 'Yahoo', 20000), ...")
    db.execute("CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT)")
    db.execute("CREATE METADATA EuropeMigrants_M1 AS (SELECT country, n FROM Eurostat)")
    db.execute("CREATE SAMPLE YahooMigrants AS (SELECT * FROM EuropeMigrants "
               "WHERE email = 'Yahoo')")
    db.ingest_rows("YahooMigrants", [...])
    result = db.execute("SELECT SEMI-OPEN country, email, COUNT(*) "
                        "FROM EuropeMigrants GROUP BY country, email")

Programmatic helpers (:meth:`draw_sample`, :meth:`register_marginal`,
:meth:`ingest_relation`) cover what experiments need beyond the SQL
surface.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.catalog.catalog import Catalog
from repro.catalog.metadata import Marginal
from repro.catalog.population import PopulationRelation
from repro.catalog.sample import SampleRelation
from repro.core.result import QueryResult
from repro.core.session import SessionConfig
from repro.core.visibility import Visibility
from repro.engine.closed import evaluate_closed
from repro.engine.executor import execute_select
from repro.engine.open_world import OpenGenerator, OpenQueryConfig, evaluate_open
from repro.engine.planner import PlannedSource, choose_sample
from repro.engine.semi_open import evaluate_semi_open
from repro.errors import (
    CatalogError,
    SqlCompileError,
    VisibilityError,
)
from repro.mechanisms import StratifiedMechanism, UniformMechanism
from repro.mechanisms.base import SamplingMechanism
from repro.relational.dtypes import DType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema
from repro.sql.ast_nodes import (
    CreateMetadata,
    CreatePopulation,
    CreateSample,
    CreateTable,
    Drop,
    Insert,
    MechanismSpec,
    SelectQuery,
    Statement,
    UpdateWeights,
)
from repro.sql.binder import bind_expression, require_column
from repro.sql.parser import parse_script, parse_statement


class MosaicDB:
    """An in-memory Mosaic database instance."""

    def __init__(
        self,
        seed: int = 0,
        default_visibility: Visibility = Visibility.SEMI_OPEN,
        open_config: OpenQueryConfig | None = None,
        combine_samples: bool = False,
    ):
        self.config = SessionConfig(
            seed=seed,
            default_visibility=default_visibility,
            combine_samples=combine_samples,
        )
        if open_config is not None:
            self.config.open_config = open_config
        self.catalog = Catalog()
        self.rng = np.random.default_rng(seed)
        self._open_generators: dict[tuple[str, str], OpenGenerator] = {}

    # ------------------------------------------------------------------ #
    # SQL entry points
    # ------------------------------------------------------------------ #

    def execute(self, sql: str) -> QueryResult:
        """Parse and run one statement; DDL returns an empty status result."""
        return self._run(parse_statement(sql))

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Run a ``;``-separated script, returning one result per statement."""
        return [self._run(statement) for statement in parse_script(sql)]

    def query(self, sql: str) -> QueryResult:
        """Alias of :meth:`execute` for read-only callers."""
        return self.execute(sql)

    # ------------------------------------------------------------------ #
    # Statement dispatch
    # ------------------------------------------------------------------ #

    def _run(self, statement: Statement) -> QueryResult:
        if isinstance(statement, SelectQuery):
            return self._run_select(statement)
        if isinstance(statement, CreateTable):
            return self._run_create_table(statement)
        if isinstance(statement, Insert):
            return self._run_insert(statement)
        if isinstance(statement, CreatePopulation):
            return self._run_create_population(statement)
        if isinstance(statement, CreateSample):
            return self._run_create_sample(statement)
        if isinstance(statement, CreateMetadata):
            return self._run_create_metadata(statement)
        if isinstance(statement, UpdateWeights):
            return self._run_update_weights(statement)
        if isinstance(statement, Drop):
            self._invalidate_model_caches()
            self.catalog.drop(statement.kind, statement.name)
            return _status(f"dropped {statement.kind.lower()} {statement.name}")
        raise SqlCompileError(f"unsupported statement type {type(statement).__name__}")

    # ------------------------------------------------------------------ #
    # DDL
    # ------------------------------------------------------------------ #

    def _run_create_table(self, statement: CreateTable) -> QueryResult:
        if not statement.columns:
            raise SqlCompileError(
                f"CREATE TABLE {statement.name} needs column definitions"
            )
        schema = Schema(Field(c.name, c.dtype) for c in statement.columns)
        self.catalog.create_auxiliary(statement.name, Relation.empty(schema))
        return _status(f"created table {statement.name}")

    def _run_create_population(self, statement: CreatePopulation) -> QueryResult:
        if statement.is_global:
            if not statement.columns:
                raise SqlCompileError(
                    "a GLOBAL POPULATION needs explicit column definitions "
                    "(the paper's example elides them 'for space')"
                )
            schema = Schema(Field(c.name, c.dtype) for c in statement.columns)
            population = PopulationRelation(statement.name, schema, is_global=True)
        else:
            if statement.source is None:
                raise SqlCompileError(
                    f"population {statement.name!r} must be GLOBAL or defined "
                    "AS (SELECT ... FROM <global population> ...)"
                )
            gp = self.catalog.population(statement.source.table)
            schema = self._projected_schema(statement.source, gp.schema)
            predicate = (
                None
                if statement.source.where is None
                else bind_expression(statement.source.where, gp.schema)
            )
            population = PopulationRelation(
                statement.name,
                schema,
                is_global=False,
                source_population=gp.name,
                defining_predicate=predicate,
            )
        self.catalog.create_population(population)
        return _status(f"created population {statement.name}")

    def _run_create_sample(self, statement: CreateSample) -> QueryResult:
        source = statement.source
        population = self.catalog.population(source.table)
        schema = self._projected_schema(source, population.schema)
        predicate = (
            None
            if source.where is None
            else bind_expression(source.where, population.schema)
        )
        mechanism = self._build_mechanism(statement.mechanism, population.schema)
        sample = SampleRelation(
            name=statement.name,
            relation=Relation.empty(schema),
            population=population.name,
            defining_predicate=predicate,
            mechanism=mechanism,
        )
        self.catalog.create_sample(sample)
        return _status(
            f"created sample {statement.name} over population {population.name} "
            "(ingest tuples with INSERT INTO or MosaicDB.ingest_relation)"
        )

    @staticmethod
    def _build_mechanism(
        spec: MechanismSpec | None, schema: Schema
    ) -> SamplingMechanism | None:
        if spec is None:
            return None
        if spec.kind == "UNIFORM":
            return UniformMechanism(spec.percent)
        assert spec.kind == "STRATIFIED"
        attribute = require_column(spec.stratify_on, schema)
        return StratifiedMechanism(attribute, spec.percent)

    @staticmethod
    def _projected_schema(query: SelectQuery, base: Schema) -> Schema:
        fields: list[Field] = []
        for item in query.items:
            if item.is_star:
                fields.extend(base.fields)
            elif item.is_aggregate:
                raise SqlCompileError(
                    "aggregates are not allowed in population/sample definitions"
                )
            else:
                name = getattr(item.expr, "name", None)
                if name is None:
                    raise SqlCompileError(
                        "population/sample definitions must project plain columns"
                    )
                column = require_column(name, base)
                fields.append(Field(item.alias or column, base.dtype(column)))
        return Schema(fields)

    def _run_create_metadata(self, statement: CreateMetadata) -> QueryResult:
        relation = self.catalog.auxiliary(statement.query.table)
        result = execute_select(statement.query, relation)
        attributes, count_column = self._metadata_columns(statement.query, result.schema)
        marginal = Marginal.from_relation(
            attributes, result, count_column, name=statement.name
        )
        population_name = self.catalog.resolve_metadata_population(
            statement.name, statement.for_population
        )
        self.catalog.register_metadata(statement.name, population_name, marginal)
        self._invalidate_model_caches()
        return _status(
            f"registered metadata {statement.name} on population {population_name} "
            f"({marginal.num_cells} cells over {marginal.attributes})"
        )

    @staticmethod
    def _metadata_columns(query: SelectQuery, schema: Schema) -> tuple[list[str], str]:
        names = list(schema.names)
        if len(names) < 2 or len(names) > 3:
            raise SqlCompileError(
                "CREATE METADATA queries must produce 1 or 2 attribute columns "
                f"plus one count column, got columns {names}"
            )
        return names[:-1], names[-1]

    def _run_insert(self, statement: Insert) -> QueryResult:
        kind = self.catalog.kind_of(statement.table)
        if kind == "auxiliary":
            relation = self.catalog.auxiliary(statement.table)
            appended = Relation.from_rows(relation.schema, statement.rows)
            self.catalog.replace_auxiliary(statement.table, relation.concat(appended))
            return _status(f"inserted {len(statement.rows)} row(s) into {statement.table}")
        if kind == "sample":
            sample = self.catalog.sample(statement.table)
            appended = Relation.from_rows(sample.relation.schema, statement.rows)
            self._append_to_sample(sample, appended)
            return _status(
                f"ingested {len(statement.rows)} row(s) into sample {statement.table}"
            )
        raise CatalogError(
            f"cannot INSERT into {kind} relation {statement.table!r}; populations "
            "never store tuples"
        )

    def _append_to_sample(self, sample: SampleRelation, appended: Relation) -> None:
        new_relation = sample.relation.concat(appended)
        new_weights = np.concatenate(
            [sample.weights, np.ones(appended.num_rows)]
        )
        sample.relation = new_relation
        sample.set_weights(new_weights)
        self._invalidate_model_caches()

    def _run_update_weights(self, statement: UpdateWeights) -> QueryResult:
        sample = self.catalog.sample(statement.sample)
        weighted = sample.weighted_relation()
        expr = bind_expression(statement.expr, weighted.schema, allow_barewords=False)
        values = np.asarray(expr.evaluate(weighted), dtype=np.float64)
        weights = sample.weights
        if statement.where is None:
            weights = values
        else:
            predicate = bind_expression(statement.where, weighted.schema)
            mask = np.asarray(predicate.evaluate(weighted), dtype=bool)
            weights[mask] = values[mask]
        sample.set_weights(weights)
        self._invalidate_model_caches()
        return _status(f"updated weights of sample {statement.sample}")

    # ------------------------------------------------------------------ #
    # SELECT routing
    # ------------------------------------------------------------------ #

    def _run_select(self, query: SelectQuery) -> QueryResult:
        kind = self.catalog.kind_of(query.table)
        if kind == "auxiliary":
            if query.visibility not in (None, Visibility.CLOSED):
                raise VisibilityError(
                    "visibility keywords only apply to populations and samples; "
                    f"{query.table!r} is an auxiliary table"
                )
            relation = execute_select(query, self.catalog.auxiliary(query.table))
            return QueryResult(relation, visibility=str(Visibility.CLOSED))
        if kind == "sample":
            return self._select_from_sample(query)
        return self._select_from_population(query)

    def _select_from_sample(self, query: SelectQuery) -> QueryResult:
        sample = self.catalog.sample(query.table)
        visibility = query.visibility or Visibility.CLOSED
        if visibility is Visibility.OPEN:
            raise VisibilityError(
                "OPEN queries target populations, not samples; query the "
                f"population {sample.population!r} instead"
            )
        weights = sample.weights if visibility is Visibility.SEMI_OPEN else None
        relation = execute_select(query, sample.relation, weights=weights)
        return QueryResult(
            relation,
            visibility=str(visibility),
            sample_name=sample.name,
            notes=(
                "sample queried directly with its stored weights"
                if weights is not None
                else "sample queried directly, unweighted",
            ),
        )

    def _select_from_population(self, query: SelectQuery) -> QueryResult:
        population = self.catalog.population(query.table)
        visibility = query.visibility or self.config.default_visibility
        source = choose_sample(
            self.catalog, population, combine_samples=self.config.combine_samples
        )

        if visibility is Visibility.CLOSED:
            relation, notes = evaluate_closed(query, source)
        elif visibility is Visibility.SEMI_OPEN:
            relation, notes = evaluate_semi_open(query, source, self.catalog)
        else:
            relation, notes = self._evaluate_open(query, source)

        return QueryResult(
            relation,
            visibility=str(visibility),
            sample_name=source.sample.name,
            notes=tuple(notes),
        )

    def _evaluate_open(self, query: SelectQuery, source: PlannedSource):
        population = source.population
        marginals, size, fit_relation, scope_note = self._open_fit_inputs(source)
        key = (population.name, source.sample.name)
        generator = self._open_generators.get(key)
        if generator is None:
            factory = self.config.open_config.generator_factory
            generator = factory() if callable(factory) else factory
            generator.fit(
                fit_relation,
                marginals,
                categorical_columns=self.config.open_config.categorical_columns,
            )
            self._open_generators[key] = generator
        relation, notes = evaluate_open(
            query,
            source,
            generator,
            self.config.open_config,
            population_size=size,
            rng=self.rng,
        )
        notes.insert(0, scope_note)
        return relation, notes

    def _open_fit_inputs(self, source: PlannedSource):
        """Marginals, population size, and fitting tuples for OPEN queries."""
        population = source.population
        gp = self.catalog.global_population
        if population.has_metadata:
            marginals = population.marginal_list()
            size = population.estimated_size()
            relation = source.sample.relation
            predicate = population.defining_predicate
            if predicate is not None:
                bound = bind_expression(predicate, relation.schema)
                relation = relation.filter(bound.evaluate(relation))
            scope = (
                f"OPEN: generator fit on sample {source.sample.name!r} against "
                f"population {population.name!r} metadata"
            )
            if relation.num_rows == 0:
                raise VisibilityError(
                    f"sample {source.sample.name!r} has no tuples inside "
                    f"population {population.name!r}; cannot fit a generator"
                )
            return marginals, float(size), relation, scope
        if gp is not None and gp.has_metadata:
            scope = (
                f"OPEN: generator fit on sample {source.sample.name!r} against "
                f"global population {gp.name!r} metadata"
            )
            return gp.marginal_list(), float(gp.estimated_size()), source.sample.relation, scope
        raise VisibilityError(
            f"population {population.name!r} has no marginal metadata (nor does "
            "the global population); OPEN queries need marginals to train a "
            "generator (Sec. 5.2)"
        )

    def _invalidate_model_caches(self) -> None:
        self._open_generators.clear()

    # ------------------------------------------------------------------ #
    # Programmatic API (used by experiments and examples)
    # ------------------------------------------------------------------ #

    def ingest_relation(self, name: str, relation: Relation) -> None:
        """Append tuples to a sample or auxiliary table by name."""
        kind = self.catalog.kind_of(name)
        if kind == "auxiliary":
            existing = self.catalog.auxiliary(name)
            merged = relation if existing.num_rows == 0 else existing.concat(relation)
            self.catalog.replace_auxiliary(name, merged)
            return
        if kind == "sample":
            sample = self.catalog.sample(name)
            if sample.num_rows == 0:
                sample.relation = relation.project(list(sample.relation.column_names))
                sample.set_weights(np.ones(relation.num_rows))
                self._invalidate_model_caches()
            else:
                self._append_to_sample(
                    sample, relation.project(list(sample.relation.column_names))
                )
            return
        raise CatalogError(f"cannot ingest into {kind} relation {name!r}")

    def ingest_rows(self, name: str, rows: Iterable[Sequence[Any]]) -> None:
        kind = self.catalog.kind_of(name)
        schema = (
            self.catalog.auxiliary(name).schema
            if kind == "auxiliary"
            else self.catalog.sample(name).relation.schema
        )
        self.ingest_relation(name, Relation.from_rows(schema, rows))

    def draw_sample(
        self,
        name: str,
        population_name: str,
        population_data: Relation,
        mechanism: SamplingMechanism,
    ) -> SampleRelation:
        """Draw a concrete sample from materialised population data.

        Experiment-harness helper: real Mosaic deployments never hold
        population tuples, but reproductions do, and need samples whose
        bias is known exactly.
        """
        population = self.catalog.population(population_name)
        indices = mechanism.draw(population_data, self.rng)
        sample = SampleRelation(
            name=name,
            relation=population_data.take(indices),
            population=population.name,
            mechanism=mechanism,
        )
        self.catalog.create_sample(sample)
        self._invalidate_model_caches()
        return sample

    def register_marginal(
        self, metadata_name: str, population_name: str, marginal: Marginal
    ) -> None:
        """Attach a precomputed marginal to a population."""
        self.catalog.register_metadata(metadata_name, population_name, marginal)
        self._invalidate_model_caches()

    def set_open_generator(self, factory) -> None:
        """Replace the OPEN generator factory (e.g. swap in BayesNetGenerator)."""
        self.config.open_config.generator_factory = factory
        self._invalidate_model_caches()


def _status(message: str) -> QueryResult:
    relation = Relation.from_dict({"status": [message]})
    return QueryResult(relation, notes=(message,))
