"""Reproduction of *Mosaic: A Sample-Based Database System for Open World
Query Processing* (Orr et al., CIDR 2020).

The public API is the :class:`~repro.core.database.MosaicDB` facade plus the
building blocks it is assembled from:

- ``repro.relational`` — a columnar relational engine on numpy.
- ``repro.sql`` — the Mosaic SQL dialect (populations, samples, metadata,
  and ``SELECT {CLOSED | SEMI-OPEN | OPEN}`` visibility).
- ``repro.reweight`` — inverse-probability weighting and Iterative
  Proportional Fitting (SEMI-OPEN evaluation).
- ``repro.generative`` — the marginal-constrained sliced-Wasserstein
  generator, M-SWG (OPEN evaluation).
- ``repro.bayesnet`` — a Themis-style Bayesian-network population model.
- ``repro.workloads`` / ``repro.experiments`` — the paper's datasets,
  queries, and figure/table reproductions.

Quickstart::

    from repro import MosaicDB
    db = MosaicDB(seed=0)
    db.execute("CREATE GLOBAL POPULATION Pop (x FLOAT, y FLOAT)")
    ...
"""

from repro.errors import MosaicError

__version__ = "1.0.0"

__all__ = [
    "MosaicDB",
    "Engine",
    "Session",
    "QueryResult",
    "Visibility",
    "MosaicError",
    "MosaicServer",
    "Client",
    "__version__",
]

_LAZY_EXPORTS = {
    "MosaicDB": ("repro.core.database", "MosaicDB"),
    "Engine": ("repro.core.engine", "Engine"),
    "Session": ("repro.core.session", "Session"),
    "QueryResult": ("repro.core.result", "QueryResult"),
    "Visibility": ("repro.core.visibility", "Visibility"),
    "MosaicServer": ("repro.server.server", "MosaicServer"),
    "Client": ("repro.client.client", "Client"),
}


def __getattr__(name: str):
    """Lazily resolve the heavyweight facade exports.

    Keeps ``import repro`` cheap and lets subpackages be imported
    independently (e.g. ``repro.relational`` without the SQL front end).
    """
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value
