"""Figure 7: Unif vs IPF vs M-SWG on the flights queries (Table 2).

Left panel: continuous queries 1–4.  Right panel: categorical group-by
queries 5–8.  Methods:

- **Unif** — the biased sample uniformly reweighted to the population
  size (standard AQP with no bias knowledge).
- **IPF** — tuple raking against the four 2-D marginals
  (C,E), (O,E), (I,E), (D,E); Mosaic's SEMI-OPEN technique.
- **M-SWG** — 10 generated samples, uniformly reweighted, groups kept if
  present in all answers, aggregates averaged; Mosaic's OPEN technique.

Expected shape (paper Sec. 5.3): every method ≤ ~25 % on continuous
queries; M-SWG lowest on average but *worst* on query 1 (the predicate
aligned with the sampling bias, where the raw sample is already right);
on categorical queries M-SWG degrades for rare carriers — query 8 (US,
F9) yields large errors or missing groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.ascii_plot import ascii_bars
from repro.experiments.harness import ExperimentResult
from repro.generative.mswg import MSWG, MswgConfig
from repro.metrics.error import average_percent_difference
from repro.relational.relation import Relation
from repro.reweight.ipf import ipf_reweight
from repro.reweight.weights import uniform_weights
from repro.workloads.flights import (
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_biased_flights_sample,
    make_flights_population,
)
from repro.workloads.queries import AggregateQuery, paper_flights_queries


@dataclass
class Figure7Config:
    flights: FlightsConfig = field(default_factory=FlightsConfig)
    # Paper's final flights parameters: lambda=1e-7, p=1000 projections,
    # 5 layers x 50 nodes, batch 500, latent = input width (None).
    mswg: MswgConfig = field(
        default_factory=lambda: MswgConfig(
            hidden_layers=5,
            hidden_units=50,
            latent_dim=None,
            lambda_coverage=1e-7,
            num_projections=1000,
            batch_size=500,
            epochs=80,
            seed=0,
        )
    )
    generated_samples: int = 10
    queries: str = "continuous"  # "continuous" (1-4) or "categorical" (5-8)
    seed: int = 0


def quick_config(queries: str = "continuous") -> Figure7Config:
    return Figure7Config(
        flights=FlightsConfig(rows=30_000),
        mswg=MswgConfig(
            hidden_layers=3,
            hidden_units=48,
            latent_dim=None,
            lambda_coverage=1e-7,
            num_projections=96,
            batch_size=256,
            epochs=40,
            steps_per_epoch=10,
            seed=0,
        ),
        generated_samples=5,
        queries=queries,
    )


def paper_config(queries: str = "continuous") -> Figure7Config:
    return Figure7Config(flights=FlightsConfig.paper_scale(), queries=queries)


def run(config: Figure7Config | None = None) -> ExperimentResult:
    config = config or Figure7Config()
    rng = np.random.default_rng(config.seed)

    population = make_flights_population(config.flights, rng)
    sample, _, _ = make_biased_flights_sample(population, config.flights, rng)
    marginals = flights_marginals(population, config.flights)
    n_population = population.num_rows

    queries = paper_flights_queries()
    if config.queries == "continuous":
        selected = [q for q in queries if q.group_by is None]
    elif config.queries == "categorical":
        selected = [q for q in queries if q.group_by is not None]
    else:
        selected = queries

    # --- Unif: uniform reweighting, no bias knowledge. -------------------
    unif_weights = uniform_weights(sample.num_rows, n_population)

    # --- IPF: rake the bucketed sample against the marginals. ------------
    ipf_result = ipf_reweight(
        bucket_flights(sample, config.flights), marginals, max_iterations=100
    )
    ipf_weights = ipf_result.weights

    # --- M-SWG: generate, uniformly reweight, combine. --------------------
    model = MSWG(config.mswg)
    model.fit(sample, marginals)
    generated = model.generate_many(
        sample.num_rows,
        config.generated_samples,
        rng=np.random.default_rng(config.seed + 1),
    )

    rows = []
    per_method_errors: dict[str, list[float]] = {"Unif": [], "IPF": [], "M-SWG": []}
    for query in selected:
        truth = query.evaluate(population)
        estimates = {
            "Unif": query.evaluate(sample, unif_weights),
            "IPF": query.evaluate(sample, ipf_weights),
            "M-SWG": _mswg_answer(query, generated, n_population),
        }
        row: dict = {"query": query.query_id, "sql": query.to_sql()}
        for method, answer in estimates.items():
            error = average_percent_difference(answer, truth, policy="common")
            row[method] = float("nan") if error is None else error
            if error is not None:
                per_method_errors[method].append(error)
            if query.group_by is not None:
                row[f"{method}_groups"] = f"{len(set(answer) & set(truth))}/{len(truth)}"
        rows.append(row)

    result = ExperimentResult(
        experiment_id=f"figure7_{config.queries}",
        title=(
            "Avg % difference on flights queries "
            f"({'1-4 continuous' if config.queries == 'continuous' else '5-8 categorical'})"
        ),
        rows=rows,
        params={
            "rows": config.flights.rows,
            "sample_rows": sample.num_rows,
            "generated_samples": config.generated_samples,
            "epochs": config.mswg.epochs,
            "projections": config.mswg.num_projections,
            "ipf_converged": ipf_result.converged,
        },
    )
    for method, errors in per_method_errors.items():
        if errors:
            result.params[f"mean_{method}"] = round(float(np.mean(errors)), 3)
    labels = [f"q{row['query']} {m}" for row in rows for m in ("Unif", "IPF", "M-SWG")]
    values = [
        0.0 if np.isnan(row[m]) else row[m]
        for row in rows
        for m in ("Unif", "IPF", "M-SWG")
    ]
    result.add_section("per-query errors", ascii_bars(labels, values))
    return result


def _mswg_answer(
    query: AggregateQuery, generated: list[Relation], n_population: int
) -> dict[tuple, float]:
    """Combine per-generation answers: intersect groups, average values."""
    answers = []
    for relation in generated:
        weights = uniform_weights(relation.num_rows, n_population)
        answers.append(query.evaluate(relation, weights))
    if not answers:
        return {}
    common = set(answers[0])
    for answer in answers[1:]:
        common &= set(answer)
    return {
        key: float(np.mean([answer[key] for answer in answers])) for key in common
    }
