"""CLI: ``python -m repro.experiments <name> [--paper] [--out FILE]``.

``mosaic-experiments list`` shows the available experiments; each maps to
one table or figure of the paper (see DESIGN.md's per-experiment index).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mosaic-experiments",
        description="Regenerate the Mosaic paper's tables and figures.",
    )
    parser.add_argument(
        "name",
        help="experiment name, or 'list' / 'all'",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="run at the paper's full scale (slow) instead of quick scale",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the rendered result to this file",
    )
    args = parser.parse_args(argv)

    if args.name == "list":
        for name in registry.names():
            print(f"{name:22s} {registry.get(name).description}")
        return 0

    scale = "paper" if args.paper else "quick"
    names = registry.names() if args.name == "all" else [args.name]
    outputs = []
    for name in names:
        result = registry.run_experiment(name, scale=scale)
        rendered = result.render()
        print(rendered)
        print()
        outputs.append(rendered)
    if args.out is not None:
        args.out.write_text("\n\n".join(outputs) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
