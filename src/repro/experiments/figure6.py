"""Figure 6: Unif vs M-SWG on random 2-D range (box) queries.

Protocol (Sec. 5.3): train M-SWG on the biased spiral sample + the two
1-D marginals; issue 100 random box-count queries per width coverage
(0.1 → 0.8); answer with (a) the uniformly reweighted biased sample and
(b) uniformly reweighted M-SWG samples (averaged over 10 generations);
report the average percent difference as box plots whose whiskers are the
3rd/97th percentiles.

Expected shape: M-SWG beats Unif everywhere except the narrowest boxes,
where both methods suffer from false negatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.generative.mswg import MSWG, MswgConfig
from repro.metrics.error import percent_difference
from repro.metrics.summary import boxplot_stats
from repro.reweight.weights import uniform_weights
from repro.workloads.queries import random_box_queries
from repro.workloads.spiral import (
    SpiralConfig,
    make_biased_spiral_sample,
    make_spiral_population,
    spiral_marginals,
)


@dataclass
class Figure6Config:
    spiral: SpiralConfig = field(default_factory=SpiralConfig)
    mswg: MswgConfig = field(
        default_factory=lambda: MswgConfig(
            hidden_layers=3,
            hidden_units=100,
            latent_dim=2,
            lambda_coverage=0.04,
            batch_size=500,
            epochs=60,
            seed=0,
        )
    )
    coverages: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
    queries_per_coverage: int = 100
    generated_samples: int = 10
    seed: int = 0


def quick_config() -> Figure6Config:
    return Figure6Config(
        spiral=SpiralConfig(population_size=20_000, sample_size=2_000),
        mswg=MswgConfig(
            hidden_layers=3,
            hidden_units=64,
            latent_dim=2,
            lambda_coverage=0.04,
            batch_size=256,
            epochs=20,
            steps_per_epoch=8,
            seed=0,
        ),
        coverages=(0.1, 0.3, 0.5, 0.8),
        queries_per_coverage=40,
        generated_samples=4,
    )


def paper_config() -> Figure6Config:
    return Figure6Config()


def run(config: Figure6Config | None = None) -> ExperimentResult:
    config = config or Figure6Config()
    rng = np.random.default_rng(config.seed)

    population = make_spiral_population(config.spiral, rng)
    sample, _ = make_biased_spiral_sample(population, config.spiral, rng)
    marginals = spiral_marginals(population, config.spiral)

    model = MSWG(config.mswg)
    model.fit(sample, marginals)
    generation_rng = np.random.default_rng(config.seed + 1)
    generated_samples = model.generate_many(
        sample.num_rows, config.generated_samples, rng=generation_rng
    )

    n_population = population.num_rows
    unif_weights = uniform_weights(sample.num_rows, n_population)
    generated_weights = uniform_weights(sample.num_rows, n_population)

    rows = []
    query_rng = np.random.default_rng(config.seed + 2)
    for coverage in config.coverages:
        boxes = random_box_queries(
            query_rng, population, coverage, config.queries_per_coverage
        )
        unif_errors: list[float] = []
        mswg_errors: list[float] = []
        for box in boxes:
            truth = box.count(population)
            if truth == 0.0:
                continue  # the paper's not-empty filter
            unif_errors.append(
                percent_difference(box.count(sample, unif_weights), truth)
            )
            per_generation = [
                box.count(generated, generated_weights)
                for generated in generated_samples
            ]
            mswg_errors.append(
                percent_difference(float(np.mean(per_generation)), truth)
            )
        for method, errors in (("Unif", unif_errors), ("M-SWG", mswg_errors)):
            stats = boxplot_stats(errors)
            rows.append(
                {
                    "coverage": coverage,
                    "method": method,
                    **{k: v for k, v in stats.as_row().items()},
                }
            )

    result = ExperimentResult(
        experiment_id="figure6",
        title="Average % difference: Unif vs M-SWG on 2-D box counts",
        rows=rows,
        params={
            "population": config.spiral.population_size,
            "sample": config.spiral.sample_size,
            "queries_per_coverage": config.queries_per_coverage,
            "generated_samples": config.generated_samples,
            "epochs": config.mswg.epochs,
        },
    )
    result.add_section(
        "shape check",
        _shape_summary(rows),
    )
    return result


def _shape_summary(rows: list[dict]) -> str:
    """Who wins per coverage — the property the paper's Fig. 6 shows."""
    lines = []
    coverages = sorted({row["coverage"] for row in rows})
    for coverage in coverages:
        unif = next(
            r["mean"] for r in rows if r["coverage"] == coverage and r["method"] == "Unif"
        )
        mswg = next(
            r["mean"] for r in rows if r["coverage"] == coverage and r["method"] == "M-SWG"
        )
        winner = "M-SWG" if mswg < unif else "Unif"
        lines.append(
            f"coverage {coverage:.1f}: Unif {unif:7.2f}%  M-SWG {mswg:7.2f}%  -> {winner}"
        )
    return "\n".join(lines)
