"""Experiment result container and plain-text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """One experiment's output: tabular rows plus free-form sections.

    ``rows`` regenerate the paper's table/series; ``sections`` hold ASCII
    plots and commentary; ``params`` records the exact configuration so
    EXPERIMENTS.md entries are reproducible.
    """

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    sections: list[tuple[str, str]] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)

    def add_section(self, heading: str, body: str) -> None:
        self.sections.append((heading, body))

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.params:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
            lines.append(f"params: {rendered}")
        if self.rows:
            lines.append(render_table(self.rows))
        for heading, body in self.sections:
            lines.append(f"-- {heading} --")
            lines.append(body)
        return "\n".join(lines)


def render_table(rows: Sequence[dict[str, Any]]) -> str:
    """Fixed-width table over the union of row keys (insertion order)."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(columns)
    ]
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = [" | ".join(cell.ljust(w) for cell, w in zip(r, widths)) for r in rendered]
    return "\n".join([header, rule, *body])


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
