"""Per-figure/table experiment drivers (paper Sec. 5.3).

Each experiment module exposes ``run(config) -> ExperimentResult`` plus
``quick_config()`` / ``paper_config()`` presets.  The CLI
(``python -m repro.experiments <name>``) and the pytest benchmarks call
the same drivers, at different scales.

Experiments (see DESIGN.md Sec. 4 for the full index):

==================  ===========================================
name                reproduces
==================  ===========================================
figure5             Fig. 5 — spiral population / biased sample /
                    M-SWG generated sample (ASCII scatter +
                    marginal-fit and shape metrics)
figure6             Fig. 6 — Unif vs M-SWG on random box counts
                    across width coverages
figure7_continuous  Fig. 7 left — queries 1–4, Unif/IPF/M-SWG
figure7_categorical Fig. 7 right — queries 5–8, Unif/IPF/M-SWG
table1              Table 1 — flights attributes & encoded dims
visibility_table    Sec. 3.3 — FN/FP per visibility level
==================  ===========================================
"""

from repro.experiments.harness import ExperimentResult

__all__ = ["ExperimentResult"]
