"""Figure 5: spiral population, biased sample, M-SWG generated sample.

The paper shows (a) the population with the biased sample and (b) the
population with an M-SWG-generated sample; the generated data "more
closely matches the marginals while maintaining the spiral shape".  We
render both panels as ASCII scatters and quantify the claim with two
metrics per dataset:

- **marginal fit** — L1 distance to the population's x/y marginals
  (should improve: generated < sample);
- **shape** — sliced W₁ to the population cloud (should not blow up:
  the spiral structure survives).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.ascii_plot import ascii_scatter
from repro.experiments.harness import ExperimentResult
from repro.generative.losses.wasserstein import wasserstein_1d
from repro.generative.mswg import MSWG, MswgConfig
from repro.metrics.distribution import marginal_fit_error, sliced_wasserstein_metric
from repro.workloads.spiral import (
    SpiralConfig,
    make_biased_spiral_sample,
    make_spiral_population,
    spiral_marginals,
)


@dataclass
class Figure5Config:
    spiral: SpiralConfig = field(default_factory=SpiralConfig)
    # Paper settings: 3 ReLU FC layers x 100 nodes, lambda=0.04, latent=2,
    # batch 500, batch norm, Adam lr 1e-3 with plateau decay.
    mswg: MswgConfig = field(
        default_factory=lambda: MswgConfig(
            hidden_layers=3,
            hidden_units=100,
            latent_dim=2,
            lambda_coverage=0.04,
            batch_size=500,
            epochs=60,
            seed=0,
        )
    )
    generated_rows: int = 10_000
    seed: int = 0


def quick_config() -> Figure5Config:
    """Reduced scale for CI/benchmarks (documented in EXPERIMENTS.md)."""
    return Figure5Config(
        spiral=SpiralConfig(population_size=20_000, sample_size=2_000),
        mswg=MswgConfig(
            hidden_layers=3,
            hidden_units=64,
            latent_dim=2,
            lambda_coverage=0.04,
            batch_size=256,
            epochs=20,
            steps_per_epoch=8,
            seed=0,
        ),
        generated_rows=2_000,
    )


def paper_config() -> Figure5Config:
    return Figure5Config()


def run(config: Figure5Config | None = None) -> ExperimentResult:
    config = config or Figure5Config()
    rng = np.random.default_rng(config.seed)

    population = make_spiral_population(config.spiral, rng)
    sample, _ = make_biased_spiral_sample(population, config.spiral, rng)
    marginals = spiral_marginals(population, config.spiral)

    model = MSWG(config.mswg)
    history = model.fit(sample, marginals)
    generated = model.generate(config.generated_rows, rng=np.random.default_rng(config.seed + 1))

    pop_xy = np.column_stack([population.column("x"), population.column("y")])
    sample_xy = np.column_stack([sample.column("x"), sample.column("y")])
    generated_xy = np.column_stack([generated.column("x"), generated.column("y")])

    metric_rng = np.random.default_rng(config.seed + 2)
    rows = []
    for label, relation, cloud in (
        ("biased sample", sample, sample_xy),
        ("M-SWG generated", generated, generated_xy),
    ):
        rows.append(
            {
                "dataset": label,
                "rows": relation.num_rows,
                # Exact W1 per axis against the population marginal — the
                # paper's "more closely matches the marginals" claim.
                "W1_x": wasserstein_1d(
                    relation.column("x"), population.column("x")
                ),
                "W1_y": wasserstein_1d(
                    relation.column("y"), population.column("y")
                ),
                "marginal_L1_x": marginal_fit_error(
                    _rounded(relation, config.spiral), None, marginals[0]
                ),
                "marginal_L1_y": marginal_fit_error(
                    _rounded(relation, config.spiral), None, marginals[1]
                ),
                # Sliced W1 to the 2-D cloud — "maintaining the spiral shape".
                "sliced_W1_to_population": sliced_wasserstein_metric(
                    cloud, pop_xy, metric_rng
                ),
            }
        )

    result = ExperimentResult(
        experiment_id="figure5",
        title="Spiral population vs biased sample vs M-SWG sample",
        rows=rows,
        params={
            "population": config.spiral.population_size,
            "sample": config.spiral.sample_size,
            "epochs": config.mswg.epochs,
            "lambda": config.mswg.lambda_coverage,
            "final_train_loss": round(history.final_loss, 6),
        },
    )
    result.add_section(
        "Fig 5(a): population (.) with biased sample (#)",
        ascii_scatter(
            population.column("x"), population.column("y"),
            sample.column("x"), sample.column("y"),
        ),
    )
    result.add_section(
        "Fig 5(b): population (.) with M-SWG sample (#)",
        ascii_scatter(
            population.column("x"), population.column("y"),
            generated.column("x"), generated.column("y"),
        ),
    )
    return result


def _rounded(relation, spiral_config: SpiralConfig):
    from repro.relational.relation import Relation

    return Relation.from_dict(
        {
            "x": np.round(relation.column("x"), spiral_config.value_decimals),
            "y": np.round(relation.column("y"), spiral_config.value_decimals),
        }
    )
