"""The Sec. 3.3 visibility trade-off table, verified empirically.

The paper's table:

============  ==============  ==============  ==========
visibility    false negative  false positive  assumption
============  ==============  ==============  ==========
CLOSED        n               0               Closed
SEMI-OPEN     n               0               Open
OPEN          ≤ n             ≥ 0             Open
============  ==============  ==============  ==========

where ``n`` is the number of population tuple-groups absent from the
sample.  We measure FN/FP at the group level on the migrants scenario:
a false negative is a true (country, email) group the answer misses; a
false positive is an answered group that does not exist in the population.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import ExperimentResult
from repro.workloads.migrants import MigrantsConfig, build_migrants_database


@dataclass
class VisibilityTableConfig:
    migrants: MigrantsConfig = field(default_factory=MigrantsConfig)
    open_repetitions: int = 5
    seed: int = 0


def quick_config() -> VisibilityTableConfig:
    return VisibilityTableConfig(
        migrants=MigrantsConfig(
            country_counts={"UK": 4000, "FR": 2000, "DE": 3000, "ES": 1000}
        ),
        open_repetitions=3,
    )


def paper_config() -> VisibilityTableConfig:
    return VisibilityTableConfig()


def run(config: VisibilityTableConfig | None = None) -> ExperimentResult:
    config = config or VisibilityTableConfig()
    db, population = build_migrants_database(
        config.migrants, seed=config.seed, open_repetitions=config.open_repetitions
    )

    true_groups = _group_counts(population)
    sql = (
        "SELECT {visibility} country, email, COUNT(*) AS n "
        "FROM EuropeMigrants GROUP BY country, email"
    )

    rows = []
    fn_by_visibility = {}
    for visibility, assumption in (
        ("CLOSED", "Closed"),
        ("SEMI-OPEN", "Open"),
        ("OPEN", "Open"),
    ):
        answer = db.execute(sql.format(visibility=visibility))
        answered = {
            (r["country"], r["email"]): r["n"] for r in answer.to_pylist()
        }
        false_negatives = len(set(true_groups) - set(answered))
        false_positives = len(set(answered) - set(true_groups))
        fn_by_visibility[visibility] = false_negatives
        rows.append(
            {
                "visibility": visibility,
                "false_negative_groups": false_negatives,
                "false_positive_groups": false_positives,
                "answered_groups": len(answered),
                "true_groups": len(true_groups),
                "assumption": assumption,
            }
        )

    result = ExperimentResult(
        experiment_id="visibility_table",
        title="Sec. 3.3: false negatives / false positives per visibility",
        rows=rows,
        params={
            "population": population.num_rows,
            "open_repetitions": config.open_repetitions,
        },
    )
    closed_fn = fn_by_visibility["CLOSED"]
    open_fn = fn_by_visibility["OPEN"]
    result.add_section(
        "paper property check",
        "\n".join(
            [
                f"CLOSED FN = SEMI-OPEN FN = n = {closed_fn} (no invented tuples)",
                f"OPEN FN = {open_fn} <= n: "
                + ("HOLDS" if open_fn <= closed_fn else "VIOLATED"),
            ]
        ),
    )
    return result


def _group_counts(population) -> dict[tuple, int]:
    from repro.relational.groupby import group_rows

    return {
        key: len(indices)
        for key, indices in group_rows(population, ["country", "email"])
    }
