"""Registry mapping experiment names to their run/config functions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import MosaicError
from repro.experiments import (
    figure5,
    figure6,
    figure7,
    random_queries,
    table1,
    visibility_table,
)
from repro.experiments.harness import ExperimentResult


@dataclass(frozen=True)
class ExperimentEntry:
    name: str
    description: str
    quick: Callable[[], object]
    paper: Callable[[], object]
    run: Callable[[object], ExperimentResult]


_ENTRIES: dict[str, ExperimentEntry] = {}


def _register(entry: ExperimentEntry) -> None:
    _ENTRIES[entry.name] = entry


_register(
    ExperimentEntry(
        name="figure5",
        description="Spiral population / biased sample / M-SWG sample (Fig. 5)",
        quick=figure5.quick_config,
        paper=figure5.paper_config,
        run=figure5.run,
    )
)
_register(
    ExperimentEntry(
        name="figure6",
        description="Unif vs M-SWG on random box counts (Fig. 6)",
        quick=figure6.quick_config,
        paper=figure6.paper_config,
        run=figure6.run,
    )
)
_register(
    ExperimentEntry(
        name="figure7_continuous",
        description="Unif vs IPF vs M-SWG, flights queries 1-4 (Fig. 7 left)",
        quick=lambda: figure7.quick_config("continuous"),
        paper=lambda: figure7.paper_config("continuous"),
        run=figure7.run,
    )
)
_register(
    ExperimentEntry(
        name="figure7_categorical",
        description="Unif vs IPF vs M-SWG, flights queries 5-8 (Fig. 7 right)",
        quick=lambda: figure7.quick_config("categorical"),
        paper=lambda: figure7.paper_config("categorical"),
        run=figure7.run,
    )
)
_register(
    ExperimentEntry(
        name="random_queries",
        description="200 random template queries, Unif vs IPF vs M-SWG (Sec. 5.3 text)",
        quick=random_queries.quick_config,
        paper=random_queries.paper_config,
        run=random_queries.run,
    )
)
_register(
    ExperimentEntry(
        name="table1",
        description="Flights attributes and M-SWG encoded dims (Table 1)",
        quick=table1.quick_config,
        paper=table1.paper_config,
        run=table1.run,
    )
)
_register(
    ExperimentEntry(
        name="visibility_table",
        description="FN/FP per visibility level (Sec. 3.3 table)",
        quick=visibility_table.quick_config,
        paper=visibility_table.paper_config,
        run=visibility_table.run,
    )
)


def names() -> list[str]:
    return sorted(_ENTRIES)


def get(name: str) -> ExperimentEntry:
    entry = _ENTRIES.get(name)
    if entry is None:
        raise MosaicError(
            f"unknown experiment {name!r}; available: {', '.join(names())}"
        )
    return entry


def run_experiment(name: str, scale: str = "quick") -> ExperimentResult:
    """Run one experiment at ``quick`` or ``paper`` scale."""
    entry = get(name)
    if scale == "quick":
        config = entry.quick()
    elif scale == "paper":
        config = entry.paper()
    else:
        raise MosaicError(f"unknown scale {scale!r} (use 'quick' or 'paper')")
    return entry.run(config)
