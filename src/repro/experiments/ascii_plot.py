"""ASCII rendering of scatter plots (the Fig. 5 replacement).

No plotting library is available offline, so figures render as character
grids: population points as ``.``, overlay points (sample / generated) as
``#``, overlap as ``@``.
"""

from __future__ import annotations

import numpy as np


def ascii_scatter(
    base_x: np.ndarray,
    base_y: np.ndarray,
    overlay_x: np.ndarray | None = None,
    overlay_y: np.ndarray | None = None,
    width: int = 64,
    height: int = 28,
) -> str:
    """Render one (optionally two) point clouds on a character grid."""
    xs = [np.asarray(base_x, dtype=np.float64)]
    ys = [np.asarray(base_y, dtype=np.float64)]
    if overlay_x is not None:
        xs.append(np.asarray(overlay_x, dtype=np.float64))
        ys.append(np.asarray(overlay_y, dtype=np.float64))

    all_x = np.concatenate(xs)
    all_y = np.concatenate(ys)
    x_low, x_high = float(all_x.min()), float(all_x.max())
    y_low, y_high = float(all_y.min()), float(all_y.max())
    x_span = max(x_high - x_low, 1e-12)
    y_span = max(y_high - y_low, 1e-12)

    def cells(x: np.ndarray, y: np.ndarray) -> set[tuple[int, int]]:
        columns = np.clip(((x - x_low) / x_span * (width - 1)).astype(int), 0, width - 1)
        rows = np.clip(((y_high - y) / y_span * (height - 1)).astype(int), 0, height - 1)
        return set(zip(rows.tolist(), columns.tolist()))

    base_cells = cells(xs[0], ys[0])
    overlay_cells = cells(xs[1], ys[1]) if overlay_x is not None else set()

    grid = []
    for r in range(height):
        line = []
        for c in range(width):
            in_base = (r, c) in base_cells
            in_overlay = (r, c) in overlay_cells
            if in_base and in_overlay:
                line.append("@")
            elif in_overlay:
                line.append("#")
            elif in_base:
                line.append(".")
            else:
                line.append(" ")
        grid.append("".join(line))
    legend = "legend: . base, # overlay, @ both"
    return "\n".join(grid + [legend])


def ascii_bars(labels: list[str], values: list[float], width: int = 50) -> str:
    """Horizontal bar chart (used for Fig. 7-style per-query errors)."""
    top = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value / top * width))) if value > 0 else ""
        lines.append(f"{label.rjust(label_width)} | {bar} {value:.2f}")
    return "\n".join(lines)
