"""The 200-random-query comparison (paper Sec. 5.3, in-text result).

"on the 200 random queries used for parameter selection, when both the
true answer and M-SWG answer are not-empty ..., all of our M-SWG models
achieve a lower query error than Unif. IPF also achieves a lower error
than Unif."

This driver issues N random template queries (the queries-1-4 shape with
random attributes/comparators/thresholds) over the flights workload and
scores Unif, IPF, and M-SWG with the paper's not-empty filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.generative.mswg import MSWG, MswgConfig
from repro.metrics.error import average_percent_difference
from repro.metrics.summary import boxplot_stats
from repro.reweight.ipf import ipf_reweight
from repro.reweight.weights import uniform_weights
from repro.workloads.flights import (
    FlightsConfig,
    bucket_flights,
    flights_marginals,
    make_biased_flights_sample,
    make_flights_population,
)
from repro.workloads.queries import random_template_queries


@dataclass
class RandomQueriesConfig:
    flights: FlightsConfig = field(default_factory=FlightsConfig)
    mswg: MswgConfig = field(
        default_factory=lambda: MswgConfig(
            hidden_layers=5,
            hidden_units=50,
            latent_dim=None,
            lambda_coverage=1e-7,
            num_projections=1000,
            batch_size=500,
            epochs=80,
            seed=0,
        )
    )
    num_queries: int = 200
    generated_samples: int = 5
    seed: int = 0


def quick_config() -> RandomQueriesConfig:
    return RandomQueriesConfig(
        flights=FlightsConfig(rows=30_000),
        mswg=MswgConfig(
            hidden_layers=3,
            hidden_units=48,
            latent_dim=None,
            lambda_coverage=1e-7,
            num_projections=96,
            batch_size=256,
            epochs=40,
            steps_per_epoch=10,
            seed=0,
        ),
        num_queries=80,
        generated_samples=3,
    )


def paper_config() -> RandomQueriesConfig:
    return RandomQueriesConfig(flights=FlightsConfig.paper_scale())


def run(config: RandomQueriesConfig | None = None) -> ExperimentResult:
    config = config or RandomQueriesConfig()
    rng = np.random.default_rng(config.seed)

    population = make_flights_population(config.flights, rng)
    sample, _, _ = make_biased_flights_sample(population, config.flights, rng)
    marginals = flights_marginals(population, config.flights)
    n_population = population.num_rows

    unif_weights = uniform_weights(sample.num_rows, n_population)
    ipf_weights = ipf_reweight(
        bucket_flights(sample, config.flights), marginals, max_iterations=100
    ).weights

    model = MSWG(config.mswg)
    model.fit(sample, marginals)
    generated = model.generate_many(
        sample.num_rows,
        config.generated_samples,
        rng=np.random.default_rng(config.seed + 1),
    )
    generated_weights = uniform_weights(sample.num_rows, n_population)

    queries = random_template_queries(
        np.random.default_rng(config.seed + 2), config.num_queries
    )
    errors: dict[str, list[float]] = {"Unif": [], "IPF": [], "M-SWG": []}
    answered = 0
    for query in queries:
        truth = query.evaluate(population)
        if not truth:
            continue
        mswg_answers = [query.evaluate(g, generated_weights) for g in generated]
        if not all(mswg_answers) or any(() not in a for a in mswg_answers):
            continue  # the paper's not-empty filter
        answered += 1
        mswg_combined = {
            (): float(np.mean([a[()] for a in mswg_answers]))
        }
        for method, answer in (
            ("Unif", query.evaluate(sample, unif_weights)),
            ("IPF", query.evaluate(sample, ipf_weights)),
            ("M-SWG", mswg_combined),
        ):
            error = average_percent_difference(answer, truth)
            if error is not None and np.isfinite(error):
                errors[method].append(error)

    rows = []
    for method in ("Unif", "IPF", "M-SWG"):
        stats = boxplot_stats(errors[method])
        rows.append({"method": method, **stats.as_row()})

    result = ExperimentResult(
        experiment_id="random_queries",
        title=f"{config.num_queries} random template queries (not-empty filtered)",
        rows=rows,
        params={
            "rows": config.flights.rows,
            "answered": answered,
            "epochs": config.mswg.epochs,
        },
    )
    unif_mean = next(r["mean"] for r in rows if r["method"] == "Unif")
    ipf_mean = next(r["mean"] for r in rows if r["method"] == "IPF")
    mswg_mean = next(r["mean"] for r in rows if r["method"] == "M-SWG")
    result.add_section(
        "paper property check",
        "\n".join(
            [
                f"IPF < Unif: {ipf_mean:.2f} < {unif_mean:.2f} -> "
                + ("HOLDS" if ipf_mean < unif_mean else "VIOLATED"),
                f"M-SWG < Unif: {mswg_mean:.2f} < {unif_mean:.2f} -> "
                + ("HOLDS" if mswg_mean < unif_mean else "VIOLATED"),
            ]
        ),
    )
    return result
