"""Table 1: flights attributes, abbreviations, and M-SWG encoded dims.

Regenerated from the actual encoder: fit the table encoding on the
flights sample (plus marginals) and report each attribute's encoded width.
The paper's values: C=14, O=1, I=1, E=1, D=1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.generative.encoding import TableEncoder
from repro.workloads.flights import (
    FlightsConfig,
    flights_marginals,
    make_biased_flights_sample,
    make_flights_population,
)

ABBREVIATIONS = {
    "carrier": "C",
    "taxi_out": "O",
    "taxi_in": "I",
    "elapsed_time": "E",
    "distance": "D",
}

PAPER_DIMS = {"carrier": 14, "taxi_out": 1, "taxi_in": 1, "elapsed_time": 1, "distance": 1}


@dataclass
class Table1Config:
    flights: FlightsConfig = field(default_factory=lambda: FlightsConfig(rows=20_000))
    seed: int = 0


def quick_config() -> Table1Config:
    return Table1Config(flights=FlightsConfig(rows=10_000))


def paper_config() -> Table1Config:
    return Table1Config(flights=FlightsConfig.paper_scale())


def run(config: Table1Config | None = None) -> ExperimentResult:
    config = config or Table1Config()
    rng = np.random.default_rng(config.seed)
    population = make_flights_population(config.flights, rng)
    sample, _, _ = make_biased_flights_sample(population, config.flights, rng)
    marginals = flights_marginals(population, config.flights)

    encoder = TableEncoder.fit(sample, marginals)
    rows = []
    for column in encoder.columns:
        rows.append(
            {
                "Flights": column.name,
                "Abbrv": ABBREVIATIONS[column.name],
                "M-SWG Dim": column.width,
                "paper": PAPER_DIMS[column.name],
                "match": column.width == PAPER_DIMS[column.name],
            }
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Flights attributes and encoded dimensionality",
        rows=rows,
        params={"rows": config.flights.rows, "total_width": encoder.width},
    )
