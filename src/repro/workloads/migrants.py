"""The Sec. 2 motivating example: European migrants via email samples.

A data scientist estimates migrants per (country, email provider) from a
Yahoo-only sample, debiasing against Eurostat-style reported counts: one
marginal over countries, one over email providers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.metadata import Marginal
from repro.core.database import MosaicDB
from repro.engine.open_world import IPFSynthesizer, OpenQueryConfig
from repro.relational.relation import Relation


@dataclass(frozen=True)
class MigrantsConfig:
    """Ground-truth population structure.

    ``provider_affinity`` skews provider choice per country so the joint
    distribution is not the independent product of the marginals — the
    structure OPEN generation has to (approximately) recover.
    """

    country_counts: dict[str, int] = field(
        default_factory=lambda: {"UK": 20000, "FR": 9000, "DE": 15000, "ES": 6000}
    )
    provider_shares: dict[str, float] = field(
        default_factory=lambda: {"Yahoo": 0.55, "Gmail": 0.30, "AOL": 0.10, "GMX": 0.05}
    )
    provider_affinity: dict[str, str] = field(
        default_factory=lambda: {"DE": "GMX", "FR": "AOL"}
    )
    affinity_boost: float = 3.0


def make_migrants_population(config: MigrantsConfig, rng: np.random.Generator) -> Relation:
    """Materialise the ground-truth population (experiments only)."""
    providers = list(config.provider_shares)
    base = np.asarray([config.provider_shares[p] for p in providers])
    countries: list[str] = []
    emails: list[str] = []
    for country, count in config.country_counts.items():
        shares = base.copy()
        favourite = config.provider_affinity.get(country)
        if favourite is not None:
            shares[providers.index(favourite)] *= config.affinity_boost
        shares = shares / shares.sum()
        draws = rng.choice(len(providers), size=count, p=shares)
        countries.extend([country] * count)
        emails.extend(providers[d] for d in draws)
    return Relation.from_dict({"country": countries, "email": emails})


def migrants_marginals(population: Relation) -> list[Marginal]:
    """The Eurostat-style reports: counts per country and per provider."""
    return [
        Marginal.from_data(population, ["country"], name="EuropeMigrants_M1"),
        Marginal.from_data(population, ["email"], name="EuropeMigrants_M2"),
    ]


def build_migrants_database(
    config: MigrantsConfig | None = None,
    seed: int = 0,
    open_repetitions: int = 5,
) -> tuple[MosaicDB, Relation]:
    """A fully wired migrants database plus the hidden ground truth.

    Declares the global population, registers the marginals, and ingests a
    Yahoo-only sample (the bias of the motivating example).  The OPEN path
    uses the IPF synthesizer, the right generator for a 2-attribute
    categorical domain.  Returns ``(db, population)`` — the population is
    for evaluating answers, never given to the database.
    """
    config = config or MigrantsConfig()
    rng = np.random.default_rng(seed)
    population = make_migrants_population(config, rng)

    total = population.num_rows
    db = MosaicDB(
        seed=seed,
        open_config=OpenQueryConfig(
            generator_factory=IPFSynthesizer,
            repetitions=open_repetitions,
            rows_per_generation=min(total * 2, 100_000),
        ),
    )
    db.execute("CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT)")
    db.execute(
        "CREATE SAMPLE YahooMigrants AS "
        "(SELECT * FROM EuropeMigrants WHERE email = 'Yahoo')"
    )
    for marginal in migrants_marginals(population):
        db.register_marginal(marginal.name, "EuropeMigrants", marginal)

    yahoo_mask = np.asarray(
        [e == "Yahoo" for e in population.column("email")], dtype=bool
    )
    yahoo_rows = population.filter(yahoo_mask)
    keep = rng.choice(yahoo_rows.num_rows, size=yahoo_rows.num_rows // 4, replace=False)
    db.ingest_relation("YahooMigrants", yahoo_rows.take(np.sort(keep)))
    return db, population
