"""Query workloads: Table 2's eight queries, box counts, random templates.

Queries exist in two forms: SQL text (exercising the full front end) and a
structured :class:`AggregateQuery` / :class:`BoxQuery` that experiments
evaluate directly against (weighted) relations — the paper runs hundreds
of random queries per figure, so the structured path avoids re-parsing.
Both paths are cross-checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MosaicError
from repro.relational.relation import Relation

_COMPARATORS = {
    ">": np.greater,
    "<": np.less,
    ">=": np.greater_equal,
    "<=": np.less_equal,
}


@dataclass(frozen=True)
class AggregateQuery:
    """``SELECT [group,] AGG(target) FROM F WHERE filter_attr op threshold
    [AND group IN (...)] [GROUP BY group]``.

    Exactly the shape of the paper's Table 2 queries and of the random
    template workload used for model selection.
    """

    query_id: str
    aggregate: str  # AVG / SUM / COUNT
    target: str | None  # None only for COUNT
    filter_attribute: str
    comparator: str
    threshold: float
    group_by: str | None = None
    group_values: tuple[str, ...] = ()

    def to_sql(self, table: str = "F") -> str:
        target = "*" if self.target is None else self.target
        select = f"{self.aggregate}({target})"
        where = f"{self.filter_attribute} {self.comparator} {self.threshold:g}"
        if self.group_by:
            values = ", ".join(f"'{v}'" for v in self.group_values)
            in_clause = f" AND {self.group_by} IN ({values})" if self.group_values else ""
            return (
                f"SELECT {self.group_by}, {select} FROM {table} "
                f"WHERE {where}{in_clause} GROUP BY {self.group_by}"
            )
        return f"SELECT {select} FROM {table} WHERE {where}"

    def evaluate(
        self, relation: Relation, weights: np.ndarray | None = None
    ) -> dict[tuple, float]:
        """Answer as ``{group_key: value}`` (key ``()`` when ungrouped).

        Groups with zero surviving weight are absent — matching the
        engine's "reweighted-away groups do not exist" semantics.
        """
        mask = _COMPARATORS[self.comparator](
            np.asarray(relation.column(self.filter_attribute), dtype=np.float64),
            self.threshold,
        )
        if self.group_by and self.group_values:
            column = relation.column(self.group_by)
            wanted = set(self.group_values)
            mask = mask & np.asarray([str(v) in wanted for v in column], dtype=bool)

        if weights is None:
            weights = np.ones(relation.num_rows)
        weights = np.where(mask, weights, 0.0)

        if self.group_by is None:
            value = self._aggregate(relation, weights)
            return {} if value is None else {(): value}

        answers: dict[tuple, float] = {}
        column = relation.column(self.group_by)
        distinct = {str(v) for v in column}
        wanted = distinct & set(self.group_values) if self.group_values else distinct
        for group in sorted(wanted):
            group_mask = np.asarray([str(v) == group for v in column], dtype=bool)
            value = self._aggregate(relation, np.where(group_mask, weights, 0.0))
            if value is not None:
                answers[(group,)] = value
        return answers

    def _aggregate(self, relation: Relation, weights: np.ndarray) -> float | None:
        total = float(np.sum(weights))
        if total <= 0.0:
            return None
        if self.aggregate == "COUNT":
            return total
        values = np.asarray(relation.column(self.target), dtype=np.float64)
        if self.aggregate == "SUM":
            return float(np.sum(weights * values))
        if self.aggregate == "AVG":
            return float(np.sum(weights * values) / total)
        raise MosaicError(f"unsupported aggregate {self.aggregate!r}")


#: Short attribute names of Table 1/2 mapped to the schema columns.
ABBREVIATIONS = {
    "C": "carrier",
    "O": "taxi_out",
    "I": "taxi_in",
    "E": "elapsed_time",
    "D": "distance",
}


def paper_flights_queries() -> list[AggregateQuery]:
    """Table 2, queries 1–8 (GROUP BY C restored, per the caption)."""
    return [
        AggregateQuery("1", "AVG", "distance", "elapsed_time", ">", 200),
        AggregateQuery("2", "AVG", "taxi_in", "elapsed_time", "<", 200),
        AggregateQuery("3", "AVG", "elapsed_time", "distance", ">", 1000),
        AggregateQuery("4", "AVG", "taxi_out", "distance", "<", 1000),
        AggregateQuery(
            "5", "AVG", "distance", "elapsed_time", ">", 200,
            group_by="carrier", group_values=("WN", "AA"),
        ),
        AggregateQuery(
            "6", "AVG", "taxi_in", "elapsed_time", "<", 200,
            group_by="carrier", group_values=("WN", "AA"),
        ),
        AggregateQuery(
            "7", "AVG", "elapsed_time", "distance", ">", 1000,
            group_by="carrier", group_values=("WN", "AA"),
        ),
        AggregateQuery(
            "8", "AVG", "taxi_out", "distance", "<", 1000,
            group_by="carrier", group_values=("US", "F9"),
        ),
    ]


def random_template_queries(
    rng: np.random.Generator,
    count: int,
    attributes: tuple[str, ...] = ("taxi_out", "taxi_in", "elapsed_time", "distance"),
    value_ranges: dict[str, tuple[float, float]] | None = None,
) -> list[AggregateQuery]:
    """Random queries with the template of queries 1–4.

    "running 200 random queries over the continuous attributes with the
    same template as queries 1-4 where the attributes and predicates are
    randomly generated."
    """
    ranges = value_ranges or {
        "taxi_out": (8.0, 45.0),
        "taxi_in": (4.0, 25.0),
        "elapsed_time": (40.0, 450.0),
        "distance": (100.0, 2500.0),
    }
    queries = []
    for i in range(count):
        target = attributes[rng.integers(len(attributes))]
        remaining = tuple(a for a in attributes if a != target)
        filter_attribute = remaining[rng.integers(len(remaining))]
        low, high = ranges[filter_attribute]
        threshold = float(np.round(rng.uniform(low, high)))
        comparator = ">" if rng.random() < 0.5 else "<"
        queries.append(
            AggregateQuery(
                query_id=f"rand{i}",
                aggregate="AVG",
                target=target,
                filter_attribute=filter_attribute,
                comparator=comparator,
                threshold=threshold,
            )
        )
    return queries


@dataclass(frozen=True)
class BoxQuery:
    """A 2-D range-count query: tuples inside an axis-aligned box (Fig. 6)."""

    x_low: float
    x_high: float
    y_low: float
    y_high: float

    def count(self, relation: Relation, weights: np.ndarray | None = None) -> float:
        x = relation.column("x")
        y = relation.column("y")
        mask = (
            (x >= self.x_low)
            & (x <= self.x_high)
            & (y >= self.y_low)
            & (y <= self.y_high)
        )
        if weights is None:
            return float(np.sum(mask))
        return float(np.sum(np.where(mask, weights, 0.0)))

    def to_sql(self, table: str = "Spiral") -> str:
        return (
            f"SELECT COUNT(*) FROM {table} WHERE "
            f"x BETWEEN {self.x_low:g} AND {self.x_high:g} AND "
            f"y BETWEEN {self.y_low:g} AND {self.y_high:g}"
        )


def random_box_queries(
    rng: np.random.Generator,
    population: Relation,
    coverage: float,
    count: int,
) -> list[BoxQuery]:
    """Random boxes whose side covers ``coverage`` of each axis's range.

    "a width coverage of 0.8 means the range queries for 80 percent of the
    data on one dimension and 80 percent of the data on the other" — box
    widths are ``coverage`` × the data range per axis, positions uniform
    within the data's bounding box.
    """
    if not 0.0 < coverage <= 1.0:
        raise MosaicError(f"coverage must be in (0, 1], got {coverage}")
    x = population.column("x")
    y = population.column("y")
    x_low, x_high = float(np.min(x)), float(np.max(x))
    y_low, y_high = float(np.min(y)), float(np.max(y))
    width_x = (x_high - x_low) * coverage
    width_y = (y_high - y_low) * coverage

    queries = []
    for _ in range(count):
        start_x = rng.uniform(x_low, x_high - width_x)
        start_y = rng.uniform(y_low, y_high - width_y)
        queries.append(
            BoxQuery(start_x, start_x + width_x, start_y, start_y + width_y)
        )
    return queries
