"""Synthetic IDEBench-style flights data (paper Sec. 5.3, Tables 1–2).

The paper evaluates on US domestic flights from IDEBench [17], filtered to
2015–16 (426,411 rows), with the five attributes of Table 1:

====================  ======  ==========
attribute             abbrv   M-SWG dim
====================  ======  ==========
carrier               C       14
taxi_out              O       1
taxi_in               I       1
elapsed_time          E       1
distance              D       1
====================  ======  ==========

That dataset is not available offline, so this module synthesises a
population with the properties the experiments actually exercise:

- **14 carriers with a skewed distribution** — ``WN`` (Southwest) and
  ``AA`` (American) popular; ``US`` (US Airways) and ``F9`` (Frontier)
  rare, which is what makes the paper's query 8 hard for M-SWG.
- **Carrier-dependent route mix** — short-haul vs long-haul carriers, so
  carrier correlates with distance.
- **Physical elapsed-time model** — ``E ≈ cruise(D) + O + I + noise``, so
  distance and elapsed time are strongly correlated (the reason IPF/Unif
  overestimate the paper's query 3).
- **Whole-number attributes** — "continuous attributes have been rounded
  to whole numbers", so marginals are exact projections.

The biased sample follows the paper exactly: a 5 % sample where 95 % of
tuples have ``elapsed_time > 200``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.metadata import Marginal
from repro.mechanisms.biased import PredicateBiasedMechanism
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef, Literal
from repro.relational.predicates import Comparison
from repro.relational.relation import Relation
from repro.relational.schema import Schema

#: Carrier -> (share of flights, mean cruise distance in miles).
#: Shares sum to 1; US and F9 are deliberately light hitters.
CARRIER_PROFILES: dict[str, tuple[float, float]] = {
    "WN": (0.22, 620.0),
    "DL": (0.16, 900.0),
    "AA": (0.14, 1050.0),
    "OO": (0.10, 450.0),
    "EV": (0.08, 430.0),
    "UA": (0.08, 1150.0),
    "MQ": (0.05, 420.0),
    "B6": (0.045, 1100.0),
    "AS": (0.035, 950.0),
    "NK": (0.03, 980.0),
    "US": (0.02, 900.0),
    "F9": (0.015, 950.0),
    "HA": (0.012, 700.0),
    "VX": (0.008, 1400.0),
}

FLIGHTS_SCHEMA = Schema.of(
    carrier=DType.TEXT,
    taxi_out=DType.INT,
    taxi_in=DType.INT,
    elapsed_time=DType.INT,
    distance=DType.INT,
)

#: The four attribute pairs the paper uses as population metadata.
MARGINAL_PAIRS: tuple[tuple[str, str], ...] = (
    ("carrier", "elapsed_time"),
    ("taxi_out", "elapsed_time"),
    ("taxi_in", "elapsed_time"),
    ("distance", "elapsed_time"),
)


@dataclass(frozen=True)
class FlightsConfig:
    """Scale and bias parameters.

    ``rows=426_411`` reproduces the paper's scale; the default is smaller
    so the test/benchmark suite stays fast (EXPERIMENTS.md records which
    scale each reported number used).
    """

    rows: int = 60_000
    sample_percent: float = 5.0
    sample_bias: float = 0.95
    long_flight_minutes: int = 200
    elapsed_bucket: int = 5  # marginal granularity for elapsed_time pairs
    taxi_bucket: int = 2
    distance_bucket: int = 50

    @classmethod
    def paper_scale(cls) -> "FlightsConfig":
        return cls(rows=426_411)


def make_flights_population(config: FlightsConfig, rng: np.random.Generator) -> Relation:
    """Synthesise the flights population."""
    carriers = list(CARRIER_PROFILES)
    shares = np.asarray([CARRIER_PROFILES[c][0] for c in carriers])
    shares = shares / shares.sum()
    carrier_index = rng.choice(len(carriers), size=config.rows, p=shares)
    carrier = np.asarray(carriers, dtype=object)[carrier_index]

    mean_distance = np.asarray([CARRIER_PROFILES[c][1] for c in carriers])[carrier_index]
    # Gamma route-length mix: shape 2 gives the right long right tail.
    distance = rng.gamma(shape=2.0, scale=mean_distance / 2.0, size=config.rows)
    distance = np.clip(distance, 70.0, 3000.0)

    taxi_out = 8.0 + rng.gamma(shape=2.0, scale=4.0, size=config.rows)
    taxi_in = 4.0 + rng.gamma(shape=1.5, scale=2.5, size=config.rows)

    # Cruise ≈ 8 min per 60 miles plus fixed climb/descend overhead.
    cruise = 25.0 + distance * (60.0 / 460.0)
    elapsed = cruise + taxi_out + taxi_in + rng.normal(0.0, 8.0, size=config.rows)
    elapsed = np.maximum(elapsed, 20.0)

    return Relation.from_columns(
        FLIGHTS_SCHEMA,
        {
            "carrier": carrier,
            "taxi_out": np.round(taxi_out),
            "taxi_in": np.round(taxi_in),
            "elapsed_time": np.round(elapsed),
            "distance": np.round(distance),
        },
    )


def long_flight_predicate(config: FlightsConfig) -> Comparison:
    """``elapsed_time > 200`` — the bias predicate of Sec. 5.3."""
    return Comparison(">", ColumnRef("elapsed_time"), Literal(config.long_flight_minutes))


def make_biased_flights_sample(
    population: Relation,
    config: FlightsConfig,
    rng: np.random.Generator,
) -> tuple[Relation, PredicateBiasedMechanism, np.ndarray]:
    """The paper's biased sample: 5 % of rows, 95 % of them long flights.

    Returns (sample, mechanism, sampled row indices).
    """
    mechanism = PredicateBiasedMechanism(
        long_flight_predicate(config),
        percent=config.sample_percent,
        bias=config.sample_bias,
    )
    indices = mechanism.draw(population, rng)
    return population.take(indices), mechanism, indices


def flights_marginals(
    population: Relation, config: FlightsConfig
) -> list[Marginal]:
    """The four 2-D marginals (C,E), (O,E), (I,E), (D,E).

    "As the numerical attributes are already whole numbers, we do not need
    to build histograms, and the marginals are just projections of the
    population data" — we additionally bucket the numeric axes (5-minute
    elapsed buckets etc.) to keep the cell count manageable at full scale;
    whole-number projection is the ``bucket=1`` special case.
    """
    abbreviations = {
        "carrier": "C",
        "taxi_out": "O",
        "taxi_in": "I",
        "elapsed_time": "E",
        "distance": "D",
    }
    bucketed = bucket_flights(population, config)
    return [
        Marginal.from_data(
            bucketed,
            list(pair),
            name=f"{abbreviations[pair[0]]}x{abbreviations[pair[1]]}",
        )
        for pair in MARGINAL_PAIRS
    ]


def bucket_flights(population: Relation, config: FlightsConfig) -> Relation:
    """Round numeric attributes to the marginal bucket granularity."""

    def snap(name: str, bucket: int) -> np.ndarray:
        values = population.column(name).astype(np.float64)
        return (np.round(values / bucket) * bucket).astype(np.int64)

    return Relation.from_columns(
        FLIGHTS_SCHEMA,
        {
            "carrier": population.column("carrier"),
            "taxi_out": snap("taxi_out", config.taxi_bucket),
            "taxi_in": snap("taxi_in", config.taxi_bucket),
            "elapsed_time": snap("elapsed_time", config.elapsed_bucket),
            "distance": snap("distance", config.distance_bucket),
        },
    )
