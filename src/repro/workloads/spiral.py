"""The 2-D spiral workload (paper Sec. 5.3, Fig. 5/6).

"We generate a 2-dimensional spiral population following the experiments
from [9] and generate a biased sample from this population with 10,000
rows."  The spiral is an Archimedean arm with Gaussian jitter, scaled into
roughly the unit box Fig. 5 shows (x ∈ [0, 1], y ∈ [−0.2, 1]).  The bias
favours one end of the arm: inclusion probability grows exponentially with
the angular parameter, so the sample over-represents the spiral's outer
coils while still touching the whole arm (the Sample Coverage assumption).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.metadata import Marginal
from repro.relational.relation import Relation


@dataclass(frozen=True)
class SpiralConfig:
    """Spiral generation parameters.

    ``value_decimals`` controls the rounding used when building marginals
    (continuous marginals are projections of the population rounded to this
    precision, mirroring the paper's whole-number flights treatment).
    """

    population_size: int = 100_000
    sample_size: int = 10_000
    turns: float = 1.75
    noise: float = 0.02
    bias_strength: float = 3.0
    value_decimals: int = 2


def make_spiral_population(config: SpiralConfig, rng: np.random.Generator) -> Relation:
    """An Archimedean spiral point cloud in (roughly) the unit box."""
    t = rng.uniform(0.0, 1.0, size=config.population_size)
    angle = t * config.turns * 2.0 * np.pi
    radius = 0.05 + 0.45 * t
    x = radius * np.cos(angle) + rng.normal(0.0, config.noise, size=config.population_size)
    y = radius * np.sin(angle) + rng.normal(0.0, config.noise, size=config.population_size)
    # Shift/scale into the plot window of Fig. 5.
    x = 0.5 + x
    y = 0.4 + y
    return Relation.from_dict({"x": x, "y": y, "_t": t}).drop_column("_t")


def spiral_parameter(population: Relation) -> np.ndarray:
    """Recover an angular-position proxy for biasing (distance from centre)."""
    x = population.column("x") - 0.5
    y = population.column("y") - 0.4
    return np.hypot(x, y)


def make_biased_spiral_sample(
    population: Relation,
    config: SpiralConfig,
    rng: np.random.Generator,
) -> tuple[Relation, np.ndarray]:
    """Draw the biased sample: outer-arm points exponentially favoured.

    Returns the sample relation and the sampled row indices (so tests can
    recover true inclusion probabilities).
    """
    radius = spiral_parameter(population)
    score = np.exp(config.bias_strength * radius / max(radius.max(), 1e-9))
    probabilities = score / score.sum()
    indices = rng.choice(
        population.num_rows,
        size=min(config.sample_size, population.num_rows),
        replace=False,
        p=probabilities,
    )
    indices = np.sort(indices)
    return population.take(indices), indices


def spiral_marginals(population: Relation, config: SpiralConfig) -> list[Marginal]:
    """The population's 1-D marginals over x and y.

    The M-SWG's only population information (Fig. 5/6): projections of the
    population onto each axis, rounded to ``value_decimals``.
    """
    rounded = Relation.from_dict(
        {
            "x": np.round(population.column("x"), config.value_decimals),
            "y": np.round(population.column("y"), config.value_decimals),
        }
    )
    return [
        Marginal.from_data(rounded, ["x"], name="spiral_x"),
        Marginal.from_data(rounded, ["y"], name="spiral_y"),
    ]
