"""The paper's datasets and query workloads, built synthetically.

- :mod:`repro.workloads.spiral` — the 2-D spiral population of Sec. 5.3's
  synthetic experiment (Fig. 5/6), with a position-biased sampler.
- :mod:`repro.workloads.flights` — an IDEBench-flights-like synthetic
  dataset (Table 1's five attributes with realistic correlations and
  carrier skew), plus the paper's biased 5 % sample (95 % long flights).
  Substitutes for the real IDEBench data, which is not available offline;
  see DESIGN.md for the substitution argument.
- :mod:`repro.workloads.migrants` — the Sec. 2 motivating example
  (Eurostat-style marginals, Yahoo-only sample).
- :mod:`repro.workloads.queries` — Table 2's eight aggregate queries,
  random box-count queries (Fig. 6), and random template queries
  (the paper's 200-query parameter-selection workload).
"""

from repro.workloads.flights import (
    FlightsConfig,
    flights_marginals,
    make_biased_flights_sample,
    make_flights_population,
)
from repro.workloads.migrants import MigrantsConfig, build_migrants_database
from repro.workloads.queries import (
    AggregateQuery,
    BoxQuery,
    paper_flights_queries,
    random_box_queries,
    random_template_queries,
)
from repro.workloads.spiral import (
    SpiralConfig,
    make_biased_spiral_sample,
    make_spiral_population,
    spiral_marginals,
)

__all__ = [
    "SpiralConfig",
    "make_spiral_population",
    "make_biased_spiral_sample",
    "spiral_marginals",
    "FlightsConfig",
    "make_flights_population",
    "make_biased_flights_sample",
    "flights_marginals",
    "MigrantsConfig",
    "build_migrants_database",
    "AggregateQuery",
    "BoxQuery",
    "paper_flights_queries",
    "random_box_queries",
    "random_template_queries",
]
