"""Per-relation partition policy: replicate (default) or slice.

The fleet's partitioning contract (``ARCHITECTURE.md`` §8):

- **Replicated** relations exist in full on every shard.  DDL and INSERT
  fan out; SELECTs route whole-query to one shard.  This is the default
  for every relation — it is always correct.
- **Sliced** relations spread their rows across shards, each row living
  on exactly one shard.  INSERTs scatter row slices; decomposable
  aggregate SELECTs scatter as partials and gather.  Slicing is opt-in
  per table (``--partition Table`` / ``--partition Table:column``)
  because it restricts the supported query surface.

Row assignment is deterministic and independent of shard liveness, so a
row's home shard never changes: hash partitioning keys on a stable hash
of the named column's value; round-robin partitioning deals contiguous
runs of each INSERT statement's rows across shards in turn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.ring import stable_hash


def parse_partition_option(text: str) -> tuple[str, "PartitionSpec"]:
    """Parse one ``--partition`` flag: ``Table`` or ``Table:column``."""
    table, _, column = text.partition(":")
    table = table.strip()
    column = column.strip()
    if not table:
        raise ValueError(f"bad --partition spec {text!r}: empty table name")
    return table, PartitionSpec(table=table, key_column=column or None)


@dataclass(frozen=True)
class PartitionSpec:
    """How one sliced relation's rows map to shards."""

    table: str
    #: Hash-partition on this column's value; ``None`` = round-robin runs.
    key_column: str | None = None

    def describe(self) -> str:
        if self.key_column is None:
            return f"{self.table}: sliced round-robin"
        return f"{self.table}: sliced by hash({self.key_column})"

    def assign_rows(
        self,
        rows: tuple,
        num_shards: int,
        key_index: int | None = None,
    ) -> list[list[int]]:
        """Per-shard row-index lists for one INSERT statement's rows.

        ``key_index`` is the position of :attr:`key_column` in the row
        tuples (the table's column order) — required for hash
        partitioning, ignored for round-robin.  Every index appears in
        exactly one shard's list; order within a list is statement order,
        so each shard ingests its rows in the order they were written.
        """
        assignment: list[list[int]] = [[] for _ in range(num_shards)]
        if self.key_column is not None:
            if key_index is None:
                raise ValueError(
                    f"hash partitioning {self.table!r} needs the index of "
                    f"column {self.key_column!r}"
                )
            for index, row in enumerate(rows):
                shard = stable_hash(str(row[key_index])) % num_shards
                assignment[shard].append(index)
            return assignment
        # Round-robin: deal near-equal contiguous runs, so shard s holds
        # rows [s*n/N, (s+1)*n/N) of each statement — the same contiguous
        # decomposition the morsel executor uses for ranges.
        count = len(rows)
        for shard in range(num_shards):
            start = shard * count // num_shards
            stop = (shard + 1) * count // num_shards
            assignment[shard].extend(range(start, stop))
        return assignment
