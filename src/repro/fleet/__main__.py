"""``python -m repro.fleet``: boot a sharded engine fleet from the shell.

Starts ``--shards`` engine-server subprocesses (each a full
``python -m repro.server`` seeded identically), then serves a
:class:`~repro.fleet.router.FleetRouter` on ``--host``/``--port`` until
SIGINT/SIGTERM.  Shutdown is graceful end to end: the router drains
in-flight gathers, then the shards get SIGTERM and drain their own
queries::

    PYTHONPATH=src python -m repro.fleet --shards 4 --port 7745 \\
        --partition Purchases --partition Users:uid
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import signal
import sys

from repro.fleet.boot import launch_shards, terminate_shards
from repro.fleet.partition import parse_partition_option
from repro.fleet.router import FleetRouter


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet", description="Mosaic sharded engine fleet"
    )
    parser.add_argument("--shards", type=int, default=2, help="engine shard count")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7745, help="router port")
    parser.add_argument(
        "--seed", type=int, default=0, help="engine RNG seed (every shard)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="morsel worker processes per shard (default: MOSAIC_WORKERS or 0)",
    )
    parser.add_argument(
        "--init-sql",
        metavar="PATH",
        help="SQL script each shard executes before serving (replicated DDL)",
    )
    parser.add_argument(
        "--partition",
        action="append",
        default=[],
        metavar="TABLE[:COLUMN]",
        help="slice TABLE across shards (hash of COLUMN, else round-robin); "
        "repeatable; unlisted relations replicate to every shard",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve the router's Prometheus /metrics on this port "
        "(0 picks a free one)",
    )
    parser.add_argument(
        "--data-dir",
        default=os.environ.get("MOSAIC_DATA_DIR") or None,
        help="durable storage root: shard k persists under "
        "<data-dir>/shard-<k> (default: MOSAIC_DATA_DIR, or in-memory only)",
    )
    return parser


async def run(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print("--shards must be at least 1", file=sys.stderr)
        return 2
    partitions = {}
    for spec_text in args.partition:
        table, spec = parse_partition_option(spec_text)
        partitions[table] = spec
    shards = launch_shards(
        args.shards,
        seed=args.seed,
        workers=args.workers,
        init_sql=args.init_sql,
        data_dir=args.data_dir,
    )
    try:
        router = FleetRouter(
            [shard.address for shard in shards],
            args.host,
            args.port,
            partitions=partitions,
            metrics_port=args.metrics_port,
        )
        await router.start()
        print(
            f"mosaic fleet router listening on {router.host}:{router.port} "
            f"({args.shards} shard(s))",
            file=sys.stderr,
        )
        if router.metrics_exporter is not None:
            print(
                f"mosaic fleet metrics on "
                f"http://{router.host}:{router.metrics_exporter.port}/metrics",
                file=sys.stderr,
            )
        loop = asyncio.get_running_loop()
        for signal_number in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):  # non-unix loops
                loop.add_signal_handler(
                    signal_number, lambda: loop.create_task(router.stop())
                )
        await router.serve_forever()
    finally:
        terminate_shards(shards)
    print("mosaic fleet stopped", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(run(args))
    except KeyboardInterrupt:  # pragma: no cover - signal race on teardown
        return 0


if __name__ == "__main__":
    sys.exit(main())
