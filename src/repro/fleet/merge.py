"""Recipe-driven gather: shard partial aggregates -> the final answer.

Each shard answers a scattered SELECT with a partial-aggregate relation
plus a JSON *merge recipe* (:func:`repro.engine.compiler.partial_aggregate_form`;
identical on every shard because it is computed from the plan alone).
This module applies the recipe router-side:

1. concatenate the partials (vocab union + searchsorted remap) and
   re-reduce with :func:`~repro.relational.kernels.merge_partial_aggregates`
   — the same COUNT/SUM accumulate + MIN/MAX extremum algebra the morsel
   executor uses, so fleet answers match single-engine answers exactly
   whenever the float summation is exact (see the §8 caveat),
2. reproduce the single-engine zero-row semantics for ungrouped
   aggregates (COUNT over nothing is 0; any other aggregate raises),
3. finalize AVG columns as merged-sum / merged-count,
4. apply the ORDER BY / LIMIT tail the shards were told to skip (a
   per-shard LIMIT would change which groups survive the merge).

Group order needs no repair: :func:`grouped_aggregate` emits groups in
key-sorted order on the shard *and* in the router's re-reduce, so even
without ORDER BY the merged rows land in single-engine order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError, SchemaError
from repro.relational.dtypes import DType
from repro.relational.kernels import merge_partial_aggregates
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


def _final_schema(recipe: dict, partial_schema: Schema) -> Schema:
    fields: list[Field] = []
    for out in recipe["output"]:
        if out["kind"] == "avg":
            fields.append(Field(out["name"], DType.FLOAT))
        else:
            fields.append(Field(out["name"], partial_schema.dtype(out["name"])))
    return Schema(fields)


def gather_partials(partials: list[Relation], recipe: dict) -> Relation:
    """Merge shard partials into the query's final relation per ``recipe``."""
    if not partials:
        raise ProtocolError("gather needs at least one shard partial")
    if recipe.get("version") != 1:
        raise ProtocolError(f"unknown merge recipe version {recipe.get('version')!r}")
    group_keys = list(recipe["group_keys"])
    merge_ops = [(entry["col"], entry["op"]) for entry in recipe["merge"]]
    merged = merge_partial_aggregates(partials, group_keys, merge_ops)

    if not group_keys and merged.num_rows == 0:
        # Every shard selected zero rows, so the global row set is empty.
        # Reproduce the single-engine semantics the shards deferred:
        # weighted groups with no mass "do not exist" (empty result); an
        # unweighted COUNT-only aggregate reports zero; anything else is
        # an aggregate over zero rows and raises exactly as the single
        # engine would.
        final_schema = _final_schema(recipe, merged.schema)
        if recipe["weighted"]:
            return Relation.empty(final_schema)
        if recipe["count_only"]:
            return Relation.from_columns(
                final_schema,
                {field.name: np.zeros(1, dtype=np.int64) for field in final_schema},
            )
        raise SchemaError(recipe["empty_error"])

    relation = merged
    for out in recipe["output"]:
        if out["kind"] != "avg":
            continue
        totals = np.asarray(relation.column(out["sum"]), dtype=np.float64)
        counts = np.asarray(relation.column(out["count"]), dtype=np.float64)
        relation = relation.with_column(out["name"], DType.FLOAT, totals / counts)
    relation = relation.project([out["name"] for out in recipe["output"]])

    order_by = recipe.get("order_by") or []
    if order_by:
        relation = relation.sort_by(
            [column for column, _ in order_by],
            [bool(ascending) for _, ascending in order_by],
        )
    limit = recipe.get("limit")
    if limit is not None:
        relation = relation.head(int(limit))
    return relation
