"""Sharded engine fleet: a router process over N independent Mosaic servers.

See ``ARCHITECTURE.md`` §8.  The fleet runs ``N`` ordinary
:mod:`repro.server` processes ("shards") behind one
:class:`~repro.fleet.router.FleetRouter` that speaks the same wire
protocol, so any :class:`~repro.client.Client` works against a fleet
unchanged.  Relations **replicate** to every shard by default; opt-in
*sliced* relations (``--partition``) scatter decomposable aggregates as
cross-shard partials and gather with the morsel merge algebra.
"""

from repro.fleet.client import FleetClient
from repro.fleet.partition import PartitionSpec, parse_partition_option
from repro.fleet.ring import HashRing
from repro.fleet.router import FleetRouter

__all__ = [
    "FleetClient",
    "FleetRouter",
    "HashRing",
    "PartitionSpec",
    "parse_partition_option",
]
