""":class:`FleetClient`: a :class:`~repro.client.Client` for fleet routers.

The router speaks the ordinary wire protocol, so a plain ``Client``
already works against a fleet.  ``FleetClient`` adds the fleet-aware
observability surface: :meth:`router_stats` and :meth:`shard_rollup`
unpack the router's two-level STATS payload (``{"router": ..., "shards":
{id: per-shard stats}}``) and aggregate the engine counters — pool
execution stats and the PR 7 ``open_adaptive`` counters — across every
reporting shard.
"""

from __future__ import annotations

from repro.client.client import Client


#: engine.cache_stats() section -> counters summed across shards.
_ROLLUP_COUNTERS = {
    "execution": (
        "workers",
        "worker_restarts",
        "worker_crashes",
        "parallel_batches",
        "local_batches",
        "tasks_dispatched",
        "plan_fallbacks",
        "pool_busy",
        "segments_shared",
        "segment_reuses",
        "segment_evictions",
        "live_segments",
    ),
    "open_adaptive": (
        "runs",
        "early_stops",
    ),
}


class FleetClient(Client):
    """Drop-in pooled client for a :class:`~repro.fleet.router.FleetRouter`.

    Everything a ``Client`` does works unchanged (``execute``,
    ``execute_script``, ``query``, ``stats``, pooling, reconnect-once);
    the additions below only interpret the router's richer STATS shape.
    """

    def router_stats(self) -> dict:
        """The router's own section of STATS: routing counters, up/down
        shard sets, and the partition table."""
        return self.stats().get("router", {})

    def shard_stats(self) -> dict:
        """Per-shard raw STATS payloads keyed by shard id (a shard that
        could not answer maps to ``{"error": ...}``)."""
        return self.stats().get("shards", {})

    def shard_rollup(self) -> dict:
        """Engine counters summed across every reporting shard.

        Returns ``{"shards_reporting": n, "shards_down": [...],
        "execution": {...}, "open_adaptive": {...}}`` where each section
        sums the counters in :data:`_ROLLUP_COUNTERS` over shards whose
        STATS included them.  A down or erroring shard never skews the
        sums: it contributes nothing (missing counters default to 0) and
        is named in ``shards_down`` so callers can tell "small total"
        from "partial fleet".
        """
        rollup: dict = {"shards_reporting": 0, "shards_down": []}
        for section, counters in _ROLLUP_COUNTERS.items():
            rollup[section] = {counter: 0 for counter in counters}
        for shard_id, payload in sorted(self.shard_stats().items()):
            engine = payload.get("engine") if isinstance(payload, dict) else None
            if not isinstance(engine, dict):
                rollup["shards_down"].append(shard_id)
                continue
            rollup["shards_reporting"] += 1
            for section, counters in _ROLLUP_COUNTERS.items():
                values = engine.get(section)
                if not isinstance(values, dict):
                    continue
                for counter in counters:
                    rollup[section][counter] += int(values.get(counter, 0))
        return rollup
