"""Consistent-hash ring for whole-query shard affinity.

OPEN queries must replay one session RNG stream, so every OPEN query a
client issues against a given table has to land on the *same* shard
(``ARCHITECTURE.md`` §8).  A consistent-hash ring gives that affinity a
stable, deterministic answer that survives shard failures: each shard
owns many virtual points on a 32-bit circle, a key hashes to a point,
and the lookup walks clockwise to the first point owned by an *up*
shard — so when a shard dies, only its keys move, and they move to
deterministic successors.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Iterable


def stable_hash(value: str) -> int:
    """Deterministic 32-bit hash (``zlib.crc32``; Python's ``hash`` is
    salted per process and would break cross-process routing)."""
    return zlib.crc32(value.encode("utf-8")) & 0xFFFFFFFF


class HashRing:
    """Consistent hashing over integer shard ids with virtual nodes."""

    def __init__(self, shard_ids: Iterable[int], replicas: int = 64):
        points: list[tuple[int, int]] = []
        for shard in shard_ids:
            for replica in range(replicas):
                points.append((stable_hash(f"shard-{shard}-{replica}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]
        if not self._points:
            raise ValueError("hash ring needs at least one shard")

    def lookup(self, key: str, down: frozenset[int] | set[int] = frozenset()) -> int:
        """The first up shard clockwise from ``key``'s point.

        Raises :class:`LookupError` when every shard is down.
        """
        start = bisect.bisect_right(self._points, stable_hash(key))
        count = len(self._owners)
        for step in range(count):
            owner = self._owners[(start + step) % count]
            if owner not in down:
                return owner
        raise LookupError("no shard is up")
