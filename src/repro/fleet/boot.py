"""Booting shard subprocesses: the process-management half of the fleet.

Each shard is an ordinary ``python -m repro.server`` subprocess bound to
an OS-assigned port (``--port 0``) and told its fleet identity via
``--shard-id``.  The parent learns the bound port by reading the
server's ``mosaic server listening on host:port`` stderr line, then
keeps a thread draining the rest of the shard's stderr to the parent's
(so the pipe never fills and shard logs stay visible).

Used by ``python -m repro.fleet`` and by the fleet tests/benchmarks,
which need to boot and kill real shard processes.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

from repro.errors import ServerError

_LISTENING_PREFIX = "mosaic server listening on "


class ShardProcess:
    """One engine-server subprocess plus its bound address."""

    def __init__(self, shard_id: int, process: subprocess.Popen, host: str, port: int):
        self.shard_id = shard_id
        self.process = process
        self.host = host
        self.port = port

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — the fleet failure tests' shard-death hammer."""
        if self.alive():
            self.process.kill()
            self.process.wait(timeout=30)

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM and wait; the shard drains in-flight queries."""
        if self.alive():
            self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=timeout)


def _shard_environment() -> dict[str, str]:
    # The shard subprocess must import the same repro package this
    # process runs, whether or not PYTHONPATH is exported.
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    if existing:
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = package_root + os.pathsep + existing
    else:
        env["PYTHONPATH"] = package_root
    return env


def launch_shard(
    shard_id: int,
    *,
    host: str = "127.0.0.1",
    seed: int = 0,
    workers: int | None = None,
    init_sql: str | None = None,
    data_dir: str | None = None,
    startup_timeout: float = 60.0,
) -> ShardProcess:
    """Start one shard subprocess and wait for it to report its port.

    With ``data_dir``, the shard persists under ``<data_dir>/shard-<id>``
    — each shard owns its slice of the data, so each gets its own store.
    """
    command = [
        sys.executable,
        "-m",
        "repro.server",
        "--host",
        host,
        "--port",
        "0",
        "--seed",
        str(seed),
        "--shard-id",
        str(shard_id),
    ]
    if workers is not None:
        command += ["--workers", str(workers)]
    if init_sql is not None:
        command += ["--init-sql", init_sql]
    if data_dir is not None:
        command += ["--data-dir", os.path.join(data_dir, f"shard-{shard_id}")]
    process = subprocess.Popen(
        command,
        stderr=subprocess.PIPE,
        text=True,
        env=_shard_environment(),
    )
    assert process.stderr is not None
    port: int | None = None
    try:
        # The listening line is the first line the server prints after
        # binding (init-sql notes may precede it).
        while True:
            line = process.stderr.readline()
            if not line:
                raise ServerError(
                    f"shard {shard_id} exited before reporting its port "
                    f"(exit status {process.poll()})"
                )
            if line.startswith(_LISTENING_PREFIX):
                _, _, port_text = line[len(_LISTENING_PREFIX) :].strip().rpartition(":")
                port = int(port_text)
                break
            sys.stderr.write(f"[shard {shard_id}] {line}")
    except BaseException:
        process.kill()
        process.wait(timeout=30)
        raise
    forwarder = threading.Thread(
        target=_forward_stderr, args=(shard_id, process.stderr), daemon=True
    )
    forwarder.start()
    return ShardProcess(shard_id, process, host, port)


def launch_shards(
    count: int,
    *,
    host: str = "127.0.0.1",
    seed: int = 0,
    workers: int | None = None,
    init_sql: str | None = None,
    data_dir: str | None = None,
) -> list[ShardProcess]:
    """Boot ``count`` shards, tearing down any survivors if one fails.

    Every shard gets the *same* engine seed: replicated relations and
    pinned session indices then make each shard a bit-exact copy of the
    single-engine reference.
    """
    shards: list[ShardProcess] = []
    try:
        for shard_id in range(count):
            shards.append(
                launch_shard(
                    shard_id,
                    host=host,
                    seed=seed,
                    workers=workers,
                    init_sql=init_sql,
                    data_dir=data_dir,
                )
            )
    except BaseException:
        for shard in shards:
            shard.kill()
        raise
    return shards


def terminate_shards(shards: list[ShardProcess], timeout: float = 30.0) -> None:
    """SIGTERM every shard, then wait for each (best effort, idempotent)."""
    for shard in shards:
        if shard.alive():
            shard.process.send_signal(signal.SIGTERM)
    for shard in shards:
        try:
            shard.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - hung shard
            shard.process.kill()
            shard.process.wait(timeout=timeout)


def _forward_stderr(shard_id: int, stream) -> None:
    try:
        for line in stream:
            sys.stderr.write(f"[shard {shard_id}] {line}")
    except ValueError:  # pragma: no cover - stream closed during shutdown
        pass
