""":class:`FleetRouter`: one wire-protocol endpoint over N engine shards.

The router speaks the same framed protocol as
:class:`~repro.server.server.MosaicServer`, so any client works against a
fleet unchanged.  Behind it sit ``N`` independent ``repro.server``
processes ("shards"), each a full engine booted from the same seed.

Routing policy (``ARCHITECTURE.md`` §8):

- **DDL and replicated INSERTs fan out** to every up shard over the
  issuing client's dedicated connections, in statement order, so every
  shard's catalog — and every shard's session-``k`` state — stays in
  lockstep with a single-engine reference.
- **Sliced INSERTs scatter**: the router assigns each row a home shard
  (:mod:`repro.fleet.partition`) and ships each shard its index list via
  a QUERYX ``insert`` frame; the shard re-slices the parsed statement, so
  values never re-serialize.
- **SELECTs on replicated relations route whole-query** to one shard:
  OPEN queries by consistent hash of the table name (shard affinity keeps
  the session RNG stream replaying exactly one single-engine stream),
  everything else round-robin across up shards — with replicated data and
  a shared seed the answer is shard-independent.
- **SELECTs on sliced relations scatter** as QUERYX ``partial`` frames
  and gather with :func:`~repro.fleet.merge.gather_partials`; the shards
  enforce the partial support matrix (:meth:`Engine.execute_partial`) and
  answer ``PARTIAL_UNSUPPORTED`` for plans that do not decompose.

Sessions: each router client gets a session index (its ``spawn_index``),
and the router dials one *dedicated* connection per (client, shard),
pinned to that index via the HELLO ``spawn_index`` option — so session
``k`` on every shard replays the RNG stream session ``k`` of a
single-engine server would have, which is what makes OPEN answers
bit-identical to the reference.

Degraded mode: a shard that cannot be dialed or drops mid-call is marked
down for the router's lifetime.  Idempotent SELECT-path calls retry once
on a fresh connection (a redialed session restarts its RNG stream from
the beginning — OPEN callers should treat a retry as a new stream);
writes never retry.  Whole-query routing continues on the survivors;
scatters that *need* a down shard raise
:class:`~repro.errors.ShardUnavailableError` with its stable wire code.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial as bind
from typing import Sequence

import os

from repro import __version__
from repro.client.client import Connection
from repro.core.result import QueryResult
from repro.core.visibility import Visibility
from repro.errors import (
    MosaicError,
    PartialUnsupportedError,
    ProtocolError,
    ServerError,
    ShardUnavailableError,
)
from repro.fleet.merge import gather_partials
from repro.fleet.partition import PartitionSpec
from repro.fleet.ring import HashRing
from repro.observability import MetricsExporter, MetricsRegistry
from repro.observability.trace import new_trace_id
from repro.relational.relation import Relation
from repro.server import protocol
from repro.sql.ast_nodes import CreateTable, ExplainAnalyze, Insert, SelectQuery
from repro.sql.parser import parse_script, parse_statement


class _ClientState:
    """Per-router-client state: identity, options, dedicated shard conns."""

    def __init__(self, reader, writer, index: int, options: dict):
        self.reader = reader
        self.writer = writer
        self.index = index
        self.options = options
        visibility = options.get("default_visibility")
        self.default_visibility = (
            Visibility.parse(str(visibility))
            if visibility is not None
            else Visibility.SEMI_OPEN
        )
        #: Dedicated connection per shard, dialed lazily with this
        #: client's HELLO options + its pinned spawn_index.
        self.conns: dict[int, Connection] = {}
        self.round_robin = 0

    def close(self) -> None:
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - shard already gone
                pass
        self.conns.clear()
        if not self.writer.is_closing():
            self.writer.close()


class FleetRouter:
    """An asyncio router process fronting a fleet of engine shards."""

    def __init__(
        self,
        shards: Sequence[tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        partitions: dict[str, PartitionSpec] | None = None,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        handshake_timeout: float = 10.0,
        dial_timeout: float | None = 10.0,
        executor_workers: int | None = None,
        metrics_port: int | None = None,
    ):
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        self.shards = list(shards)
        self.host = host
        self.port = port
        self.partitions = dict(partitions or {})
        self.max_frame_bytes = max_frame_bytes
        self.handshake_timeout = handshake_timeout
        self.dial_timeout = dial_timeout
        self.executor_workers = executor_workers or max(
            8, 4 * len(self.shards), os.cpu_count() or 1
        )

        self._ring = HashRing(range(len(self.shards)))
        self._down: set[int] = set()
        #: Column order of tables created *through* the router — what maps
        #: a hash-partition key column to its row-tuple position.
        self._table_columns: dict[str, list[str]] = {}
        self._session_indices = 0
        self._parse_cache: dict[str, object] = {}

        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._clients: set[_ClientState] = set()
        self._connection_tasks: set[asyncio.Task] = set()
        self._frame_tasks: set[asyncio.Task] = set()
        self._stopping = False
        self._stopped = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

        #: When set, :meth:`start` serves Prometheus text exposition on
        #: this port (``0`` picks a free one).
        self.metrics_port = metrics_port
        self.metrics_exporter: MetricsExporter | None = None

        # Router counters live in a metrics registry so router_stats(),
        # the STATS ``metrics`` key, and the Prometheus endpoint all read
        # the same numbers.
        self.metrics = MetricsRegistry()
        counter = self.metrics.counter
        self._queries_total = counter(
            "mosaic_fleet_queries_total", help="Query/script frames received"
        )
        self._errors_total = counter(
            "mosaic_fleet_errors_total", help="Error frames sent to clients"
        )
        self._routed_queries = counter(
            "mosaic_fleet_routed_queries_total",
            help="SELECTs routed whole-query to one shard",
        )
        self._scatter_queries = counter(
            "mosaic_fleet_scatter_queries_total",
            help="SELECTs scattered as partial-aggregate frames",
        )
        self._sliced_inserts = counter(
            "mosaic_fleet_sliced_inserts_total",
            help="INSERTs sliced across shards by partition",
        )
        self._fanout_statements = counter(
            "mosaic_fleet_fanout_statements_total",
            help="Statements fanned out to every up shard",
        )
        self._retries = counter(
            "mosaic_fleet_retries_total",
            help="Idempotent shard calls retried on a fresh connection",
        )
        self._shards_down_total = counter(
            "mosaic_fleet_shards_down_total",
            help="Shards marked down for the router's lifetime",
        )
        self._shard_failures_total = counter(
            "mosaic_fleet_shard_failures_total",
            help="ShardUnavailableError responses sent to clients",
        )
        self.metrics.gauge(
            "mosaic_fleet_up_shards",
            help="Shards currently believed up",
            fn=lambda: len(self._up_shards()),
        )
        self.metrics.gauge(
            "mosaic_fleet_clients",
            help="Currently connected router clients",
            fn=lambda: len(self._clients),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle (mirrors MosaicServer)
    # ------------------------------------------------------------------ #

    async def start(self) -> "FleetRouter":
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_workers, thread_name_prefix="mosaic-fleet"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None and self.metrics_exporter is None:
            self.metrics_exporter = MetricsExporter(
                self.metrics.render_prometheus, host=self.host, port=self.metrics_port
            )
            self.metrics_exporter.start()
        return self

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, drain in-flight frames, close.

        A frame being processed (including a multi-shard scatter/gather)
        gets up to ``drain_timeout`` seconds to deliver its response; new
        query frames are refused while draining.
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._frame_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=drain_timeout)
        for state in list(self._clients):
            state.close()
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(*self._connection_tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self.metrics_exporter is not None:
            self.metrics_exporter.stop()
            self.metrics_exporter = None
        self._stopped.set()

    def start_in_thread(self, timeout: float = 30.0) -> "FleetRouter":
        started = threading.Event()
        failures: list[BaseException] = []

        async def main() -> None:
            try:
                await self.start()
            except BaseException as exc:  # pragma: no cover - bind failure
                failures.append(exc)
                raise
            finally:
                started.set()
            await self.serve_forever()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(main()), name="mosaic-fleet", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):  # pragma: no cover - startup hang
            raise ServerError("fleet router failed to start within the timeout")
        if failures:  # pragma: no cover - bind failure
            raise ServerError(f"fleet router failed to start: {failures[0]}")
        return self

    def stop_in_thread(
        self, drain_timeout: float = 10.0, join_timeout: float = 30.0
    ) -> None:
        if self._thread is None or self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.stop(drain_timeout), self._loop)
        try:
            future.result(timeout=join_timeout)
        except (asyncio.CancelledError, RuntimeError):  # loop already closing
            pass
        self._thread.join(timeout=join_timeout)
        self._thread = None

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
            task.add_done_callback(self._connection_tasks.discard)
        state: _ClientState | None = None
        try:
            state = await self._handshake(reader, writer)
            if state is None:
                return
            self._clients.add(state)
            await self._read_loop(state)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away
        except asyncio.CancelledError:
            raise
        except ProtocolError as exc:
            await self._send_error(writer, 0, exc)
        finally:
            if state is not None:
                self._clients.discard(state)
                state.close()
            elif not writer.is_closing():
                writer.close()

    async def _handshake(self, reader, writer) -> _ClientState | None:
        try:
            frame_type, request_id, payload = await asyncio.wait_for(
                protocol.read_frame_async(reader, self.max_frame_bytes),
                self.handshake_timeout,
            )
        except asyncio.TimeoutError:
            return None
        if frame_type != protocol.HELLO:
            await self._send_error(
                writer, request_id, ProtocolError("expected a HELLO frame")
            )
            return None
        hello = protocol.parse_json_payload(payload)
        if hello.get("magic") != protocol.MAGIC:
            await self._send_error(writer, request_id, ProtocolError("bad magic in HELLO"))
            return None
        if hello.get("version") != protocol.PROTOCOL_VERSION:
            await self._send_error(
                writer,
                request_id,
                ProtocolError(
                    f"unsupported protocol version {hello.get('version')!r} "
                    f"(router speaks {protocol.PROTOCOL_VERSION})"
                ),
            )
            return None
        if self._stopping:
            await self._send_error(
                writer, request_id, ServerError("fleet router is shutting down")
            )
            return None
        options = dict(hello.get("options") or {})
        index = options.pop("spawn_index", None)
        if index is None:
            index = self._session_indices
            self._session_indices += 1
        try:
            state = _ClientState(reader, writer, int(index), options)
        except MosaicError as exc:
            await self._send_error(writer, request_id, exc)
            return None
        await self._write(
            writer,
            protocol.WELCOME,
            request_id,
            protocol.json_payload(
                {
                    "version": protocol.PROTOCOL_VERSION,
                    "server": f"mosaic-fleet {__version__}",
                    "session_index": state.index,
                    "shard_count": len(self.shards),
                }
            ),
        )
        return state

    async def _read_loop(self, state: _ClientState) -> None:
        while True:
            frame_type, request_id, payload = await protocol.read_frame_async(
                state.reader, self.max_frame_bytes
            )
            if frame_type == protocol.GOODBYE:
                await self._write(state.writer, protocol.BYE, request_id)
                return
            if frame_type == protocol.CANCEL:
                # The router processes one frame per client at a time, so
                # by the time a CANCEL arrives its target either finished
                # or is the frame being processed; ignoring it mirrors the
                # server's race-tolerant CANCEL semantics.
                continue
            # One tracked task per frame, awaited immediately: processing
            # stays strictly serial per client (statement order drives
            # shard lockstep), while stop() can observe and drain the
            # in-flight frame through _frame_tasks.
            task = asyncio.get_running_loop().create_task(
                self._handle_frame(state, frame_type, request_id, payload)
            )
            self._frame_tasks.add(task)
            task.add_done_callback(self._frame_tasks.discard)
            await task

    async def _handle_frame(
        self, state: _ClientState, frame_type: int, request_id: int, payload: bytes
    ) -> None:
        try:
            if frame_type in (protocol.QUERY, protocol.SCRIPT):
                if self._stopping:
                    raise ServerError("fleet router is shutting down")
                self._queries_total.inc()
                try:
                    sql = payload.decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise ProtocolError(f"query payload is not UTF-8: {exc}") from exc
                if frame_type == protocol.SCRIPT:
                    body = await self._route_script(state, sql)
                    await self._write(state.writer, protocol.RESULT_SET, request_id, body)
                else:
                    body = await self._route_statement(state, sql)
                    await self._write(state.writer, protocol.RESULT, request_id, body)
            elif frame_type == protocol.STATS:
                stats = await self._stats(state)
                await self._write(
                    state.writer,
                    protocol.STATS_RESULT,
                    request_id,
                    protocol.json_payload(stats),
                )
            else:
                raise ProtocolError(f"unexpected frame type 0x{frame_type:02x}")
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            await self._send_error(state.writer, request_id, exc)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def _parse(self, sql: str):
        statement = self._parse_cache.get(sql)
        if statement is None:
            statement = parse_statement(sql)
            if len(self._parse_cache) >= 512:
                self._parse_cache.clear()
            self._parse_cache[sql] = statement
        return statement

    async def _route_statement(self, state: _ClientState, sql: str) -> bytes:
        statement = self._parse(sql)
        if isinstance(statement, SelectQuery):
            if statement.table in self.partitions:
                result = await self._scatter_select(state, sql)
            else:
                result = await self._route_whole_select(state, statement, sql)
            return protocol.encode_result(result)
        if isinstance(statement, ExplainAnalyze):
            # EXPLAIN ANALYZE routes whole-query like its inner SELECT (a
            # read; the shard executes and returns the annotated trace);
            # scattered plans have no single executing node to explain.
            if statement.query.table in self.partitions:
                raise PartialUnsupportedError(
                    f"EXPLAIN ANALYZE cannot target sliced relation "
                    f"{statement.query.table!r}; the scattered query has no "
                    "single shard-side plan to report"
                )
            result = await self._route_whole_select(state, statement.query, sql)
            return protocol.encode_result(result)
        if isinstance(statement, Insert) and statement.table in self.partitions:
            result = await self._scatter_insert(state, statement, sql)
            return protocol.encode_result(result)
        result = await self._fan_out(state, Connection.execute, sql)
        if isinstance(statement, CreateTable):
            self._table_columns[statement.name] = [
                column.name for column in statement.columns
            ]
        return protocol.encode_result(result)

    async def _route_whole_select(
        self, state: _ClientState, query: SelectQuery, sql: str
    ) -> QueryResult:
        visibility = query.visibility or state.default_visibility
        up = self._up_shards()
        if not up:
            raise ShardUnavailableError("no fleet shard is up")
        if visibility is Visibility.OPEN:
            # Consistent-hash shard affinity: all of a client's OPEN
            # queries over one table replay on one shard, so that shard's
            # pinned session RNG stream matches the single-engine stream.
            shard = self._ring.lookup(query.table, self._down)
        else:
            # CLOSED / SEMI-OPEN consume no session RNG: with replicated
            # data and a shared engine seed every shard answers
            # identically, so spread the load.
            state.round_robin += 1
            shard = up[state.round_robin % len(up)]
        self._routed_queries.inc()
        result = await self._shard_call(state, shard, Connection.execute, sql)
        if result.trace is not None:
            # Annotate in place: _route_statement re-encodes the result, so
            # the fleet section rides the header out to the client.
            result.trace["fleet"] = {"mode": "routed", "shard": shard}
        return result

    async def _scatter_select(self, state: _ClientState, sql: str) -> QueryResult:
        self._require_all_up()
        self._scatter_queries.inc()
        # The gather's trace id is minted up-front so a failing scatter can
        # stamp it into the error it surfaces.
        gather_id = new_trace_id()
        outcomes = await asyncio.gather(
            *(
                self._shard_call(
                    state, shard, Connection.query_extended, {"mode": "partial"}, sql
                )
                for shard in range(len(self.shards))
            ),
            return_exceptions=True,
        )
        try:
            self._raise_scatter_failures(
                range(len(self.shards)), outcomes, mixed_is_fatal=False
            )
        except ShardUnavailableError as exc:
            exc.trace_id = gather_id
            if exc.args:
                exc.args = (f"{exc.args[0]} [trace {gather_id}]",)
            raise
        pairs = outcomes
        recipe = pairs[0][1].get("partial")
        if recipe is None:
            raise ProtocolError("shard response is missing the partial merge recipe")
        partials = [result.relation for result, _ in pairs]
        relation = gather_partials(partials, recipe)
        first = pairs[0][0]
        partial_rows = sum(partial.num_rows for partial in partials)
        # Stitch shard traces (shards sample independently) under one
        # scatter/gather parent so a traced fleet query reads as a tree.
        children = [
            header["trace"] for _, header in pairs if header.get("trace") is not None
        ]
        trace = None
        if children:
            trace = {
                "trace_id": gather_id,
                "total_ms": None,
                "spans": [],
                "meta": {
                    "fleet": {"mode": "scatter", "shards": len(self.shards)}
                },
                "children": children,
            }
        return QueryResult(
            relation,
            visibility=first.visibility,
            sample_name=first.sample_name,
            notes=(
                *first.notes,
                f"fleet: scattered across {len(self.shards)} shard(s), merged "
                f"{partial_rows} partial row(s)",
            ),
            trace=trace,
        )

    async def _scatter_insert(
        self, state: _ClientState, statement: Insert, sql: str
    ) -> QueryResult:
        spec = self.partitions[statement.table]
        key_index = None
        if spec.key_column is not None:
            columns = self._table_columns.get(statement.table)
            if columns is None or spec.key_column not in columns:
                raise PartialUnsupportedError(
                    f"hash-partitioned table {statement.table!r} must be created "
                    "through the router (its column order is unknown, so "
                    f"key column {spec.key_column!r} cannot be located)"
                )
            key_index = columns.index(spec.key_column)
        assignment = spec.assign_rows(statement.rows, len(self.shards), key_index)
        needed = [shard for shard, indices in enumerate(assignment) if indices]
        for shard in needed:
            if shard in self._down:
                raise ShardUnavailableError(
                    f"sliced INSERT into {statement.table!r} needs shard {shard}, "
                    "which is down",
                    shard=shard,
                )
        self._sliced_inserts.inc()
        outcomes = await asyncio.gather(
            *(
                self._shard_call(
                    state,
                    shard,
                    Connection.query_extended,
                    {"mode": "insert", "indices": assignment[shard]},
                    sql,
                    retry=False,
                )
                for shard in needed
            ),
            return_exceptions=True,
        )
        self._raise_scatter_failures(needed, outcomes, mixed_is_fatal=True)
        message = (
            f"inserted {len(statement.rows)} row(s) into sliced relation "
            f"{statement.table} across {len(needed)} shard(s)"
        )
        return QueryResult(Relation.from_dict({"status": [message]}), notes=(message,))

    async def _route_script(self, state: _ClientState, sql: str) -> bytes:
        statements = parse_script(sql)
        for statement in statements:
            table = getattr(statement, "table", None)
            if table in self.partitions:
                raise PartialUnsupportedError(
                    f"scripts cannot reference sliced relation {table!r}; "
                    "send those statements individually so the router can "
                    "scatter them"
                )
        results = await self._fan_out(state, Connection.execute_script, sql)
        for statement in statements:
            if isinstance(statement, CreateTable):
                self._table_columns[statement.name] = [
                    column.name for column in statement.columns
                ]
        return protocol.encode_result_set(results)

    async def _fan_out(self, state: _ClientState, method, sql: str):
        """Run one statement on every up shard; writes never retry.

        All-success returns the first shard's result.  All shards failing
        with errors is a deterministic rejection (the fleet is still in
        lockstep) and re-raises the first.  A *mixed* outcome means the
        replicas diverged — surfaced as :class:`ShardUnavailableError`
        with a per-shard outcome report; shards that succeeded have the
        statement applied.
        """
        up = self._up_shards()
        if not up:
            raise ShardUnavailableError("no fleet shard is up")
        self._fanout_statements.inc()
        outcomes = await asyncio.gather(
            *(
                self._shard_call(state, shard, method, sql, retry=False)
                for shard in up
            ),
            return_exceptions=True,
        )
        self._raise_scatter_failures(up, outcomes, mixed_is_fatal=True)
        return outcomes[0]

    @staticmethod
    def _raise_scatter_failures(shard_ids, outcomes, *, mixed_is_fatal: bool) -> None:
        """Resolve a ``gather(..., return_exceptions=True)`` outcome list.

        The gather form waits for *every* shard call even when one fails —
        mandatory, because a cancelled-but-still-running executor call
        would race a later frame for the same dedicated connection.

        All-success returns; all-failed re-raises the first error (the
        shards rejected in lockstep).  A mixed outcome re-raises the first
        error for reads (``mixed_is_fatal=False``; nothing was mutated)
        but for writes raises :class:`ShardUnavailableError` with a
        per-shard report, because the shards that reported ok *have*
        applied the statement and the replicas/slices diverged.
        """
        for outcome in outcomes:
            if isinstance(outcome, asyncio.CancelledError):
                raise outcome
        failures = [
            (shard, outcome)
            for shard, outcome in zip(shard_ids, outcomes)
            if isinstance(outcome, BaseException)
        ]
        if not failures:
            return
        if not mixed_is_fatal or len(failures) == len(outcomes):
            raise failures[0][1]
        report = ", ".join(
            f"shard {shard}: "
            + (
                "ok"
                if not isinstance(outcome, BaseException)
                else f"{type(outcome).__name__}: {outcome}"
            )
            for shard, outcome in zip(shard_ids, outcomes)
        )
        raise ShardUnavailableError(
            f"statement partially applied across the fleet ({report}); "
            "shards reporting ok have the statement applied",
            shard=failures[0][0],
        )

    # ------------------------------------------------------------------ #
    # Shard I/O (blocking Connection calls bridged onto the executor)
    # ------------------------------------------------------------------ #

    def _up_shards(self) -> list[int]:
        return [shard for shard in range(len(self.shards)) if shard not in self._down]

    def _require_all_up(self) -> None:
        for shard in range(len(self.shards)):
            if shard in self._down:
                raise ShardUnavailableError(
                    f"scatter needs every shard; shard {shard} is down",
                    shard=shard,
                )

    def _mark_down(self, shard: int) -> None:
        if shard not in self._down:
            self._shards_down_total.inc()
        self._down.add(shard)

    async def _in_executor(self, fn, *args):
        assert self._executor is not None
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, bind(fn, *args)
        )

    async def _dedicated(self, state: _ClientState, shard: int) -> Connection:
        conn = state.conns.get(shard)
        if conn is not None:
            return conn
        if shard in self._down:
            raise ShardUnavailableError(f"shard {shard} is down", shard=shard)
        host, port = self.shards[shard]
        options = {**state.options, "spawn_index": state.index}

        def dial() -> Connection:
            conn = Connection(host, port, options=options, timeout=self.dial_timeout)
            # The deadline covers dial + handshake only; shard queries may
            # legitimately run longer than any dial timeout.
            conn.settimeout(None)
            return conn

        try:
            conn = await self._in_executor(dial)
        except OSError as exc:
            self._mark_down(shard)
            raise ShardUnavailableError(
                f"cannot reach shard {shard} at {host}:{port}: {exc}", shard=shard
            ) from exc
        state.conns[shard] = conn
        return conn

    async def _shard_call(
        self, state: _ClientState, shard: int, method, *args, retry: bool = True
    ):
        """One blocking Connection call against a shard, on the executor.

        ``retry=True`` (idempotent reads only) redials once on a transport
        failure and re-runs the call on the fresh connection — note the
        fresh session's RNG stream restarts from the beginning.  Failures
        past the retry budget mark the shard down and surface as
        :class:`ShardUnavailableError`.
        """
        conn = await self._dedicated(state, shard)
        try:
            return await self._in_executor(method, conn, *args)
        except ProtocolError:
            # The shard answered, but the connection's protocol state is
            # suspect — discard the socket, keep the shard up, re-raise.
            state.conns.pop(shard, None)
            conn.close()
            raise
        except OSError as exc:
            state.conns.pop(shard, None)
            try:
                conn.close()
            except OSError:  # pragma: no cover - socket already dead
                pass
            if retry:
                self._retries.inc()
                return await self._shard_call(state, shard, method, *args, retry=False)
            self._mark_down(shard)
            raise ShardUnavailableError(
                f"shard {shard} connection lost: {exc}", shard=shard
            ) from exc

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    async def _stats(self, state: _ClientState) -> dict:
        shard_stats: dict[str, dict] = {}
        for shard in range(len(self.shards)):
            if shard in self._down:
                shard_stats[str(shard)] = {"error": "down"}
                continue
            try:
                shard_stats[str(shard)] = await self._shard_call(
                    state, shard, Connection.stats
                )
            except MosaicError as exc:
                shard_stats[str(shard)] = {"error": str(exc)}
        return {
            "router": self.router_stats(),
            "shards": shard_stats,
            "metrics": self.metrics.snapshot(),
        }

    def router_stats(self) -> dict:
        return {
            "shard_count": len(self.shards),
            "up": self._up_shards(),
            "down": sorted(self._down),
            "clients": len(self._clients),
            "queries_total": int(self._queries_total.value()),
            "errors_total": int(self._errors_total.value()),
            "routed_queries": int(self._routed_queries.value()),
            "scatter_queries": int(self._scatter_queries.value()),
            "sliced_inserts": int(self._sliced_inserts.value()),
            "fanout_statements": int(self._fanout_statements.value()),
            "retries": int(self._retries.value()),
            "shard_failures": int(self._shard_failures_total.value()),
            "partitions": {
                table: spec.describe() for table, spec in sorted(self.partitions.items())
            },
        }

    # ------------------------------------------------------------------ #
    # Responses
    # ------------------------------------------------------------------ #

    async def _write(
        self, writer, frame_type: int, request_id: int, payload: bytes = b""
    ) -> None:
        if writer.is_closing():
            return
        writer.write(protocol.build_frame(frame_type, request_id, payload))
        try:
            await writer.drain()
        except ConnectionError:
            pass

    async def _send_error(self, writer, request_id: int, exc: BaseException) -> None:
        self._errors_total.inc()
        if isinstance(exc, ShardUnavailableError):
            self._shard_failures_total.inc()
        await self._write(writer, protocol.ERROR, request_id, protocol.encode_error(exc))
