"""Vectorised scalar expression trees evaluated over relations.

Expressions evaluate column-at-a-time to numpy arrays of length
``relation.num_rows``.  The model is deliberately NULL-free: the paper's
workloads (and its SQL examples) never need three-valued logic, so every
column is total and every expression is defined on every row.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.dtypes import DType, common_numeric_type
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class Expr(ABC):
    """A scalar expression over the columns of one relation."""

    @abstractmethod
    def evaluate(self, relation: Relation) -> np.ndarray:
        """Evaluate to an array of length ``relation.num_rows``."""

    @abstractmethod
    def output_dtype(self, schema: Schema) -> DType:
        """The logical type this expression produces under ``schema``."""

    @abstractmethod
    def referenced_columns(self) -> frozenset[str]:
        """Names of every column the expression reads."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.to_sql()

    @abstractmethod
    def to_sql(self) -> str:
        """A SQL-ish rendering, used in error messages and plan display."""


class ColumnRef(Expr):
    """A reference to a named column."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, relation: Relation) -> np.ndarray:
        return relation.column(self.name)

    def output_dtype(self, schema: Schema) -> DType:
        return schema.dtype(self.name)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset([self.name])

    def to_sql(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ColumnRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("ColumnRef", self.name))


class Literal(Expr):
    """A constant value broadcast to every row."""

    def __init__(self, value: Any):
        self.value = value
        self._dtype = DType.infer([value])

    def evaluate(self, relation: Relation) -> np.ndarray:
        return np.full(relation.num_rows, self.value, dtype=self._dtype.numpy_dtype)

    def output_dtype(self, schema: Schema) -> DType:
        return self._dtype

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()

    def to_sql(self) -> str:
        if self._dtype is DType.TEXT:
            return f"'{self.value}'"
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Literal", self.value))


_ARITH_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}


class Arithmetic(Expr):
    """Binary arithmetic between numeric expressions (``+ - * / %``).

    Division always produces FLOAT (SQL ``/`` on integers truncates in some
    dialects; we follow Python/numpy true division, which is what the
    paper's AVG-style arithmetic expects).
    """

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _ARITH_OPS:
            raise TypeMismatchError(f"unknown arithmetic operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, relation: Relation) -> np.ndarray:
        left = self.left.evaluate(relation)
        right = self.right.evaluate(relation)
        if not (np.issubdtype(left.dtype, np.number) and np.issubdtype(right.dtype, np.number)):
            raise TypeMismatchError(f"arithmetic on non-numeric operands in {self.to_sql()}")
        result = _ARITH_OPS[self.op](left, right)
        if self.op == "/":
            return result.astype(np.float64)
        return result

    def output_dtype(self, schema: Schema) -> DType:
        if self.op == "/":
            return DType.FLOAT
        return common_numeric_type(
            self.left.output_dtype(schema), self.right.output_dtype(schema)
        )

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


class Negate(Expr):
    """Unary numeric negation."""

    def __init__(self, operand: Expr):
        self.operand = operand

    def evaluate(self, relation: Relation) -> np.ndarray:
        values = self.operand.evaluate(relation)
        if not np.issubdtype(values.dtype, np.number):
            raise TypeMismatchError(f"negation of non-numeric operand in {self.to_sql()}")
        return -values

    def output_dtype(self, schema: Schema) -> DType:
        dtype = self.operand.output_dtype(schema)
        if not dtype.is_numeric:
            raise TypeMismatchError(f"negation of non-numeric operand in {self.to_sql()}")
        return dtype

    def referenced_columns(self) -> frozenset[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"(-{self.operand.to_sql()})"


def validate_expression(expr: Expr, schema: Schema) -> DType:
    """Type-check ``expr`` against ``schema``.

    Returns the output dtype; raises :class:`SchemaError` /
    :class:`TypeMismatchError` on unknown columns or type violations.
    """
    for name in expr.referenced_columns():
        if name not in schema:
            raise SchemaError(f"unknown column {name!r} in expression {expr.to_sql()}")
    return expr.output_dtype(schema)
