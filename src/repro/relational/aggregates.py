"""Aggregate functions with weighted semantics.

The paper's reweighting rewrite (Sec. 5.3): *"To run the aggregate queries
over a weighted sample, we simply modify the aggregate to be over a weight
attribute (e.g. COUNT(*) becomes SUM(weight))."*  That rewrite lives here:

==========  ======================  ==============================
aggregate   unweighted              weighted by ``w``
==========  ======================  ==============================
COUNT(*)    n                       Σ w
COUNT(a)    n                       Σ w
SUM(a)      Σ a                     Σ w·a
AVG(a)      Σ a / n                 Σ w·a / Σ w
MIN(a)      min a                   min over rows with w > 0
MAX(a)      max a                   max over rows with w > 0
==========  ======================  ==============================

The model is NULL-free, so ``COUNT(a)`` equals ``COUNT(*)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.dtypes import DType
from repro.relational.expressions import Expr
from repro.relational.relation import Relation
from repro.relational.schema import Schema

AGGREGATE_NAMES = frozenset(["COUNT", "SUM", "AVG", "MIN", "MAX"])


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate in a SELECT list.

    ``expr`` is ``None`` exactly for ``COUNT(*)``.  ``alias`` is the output
    column name.
    """

    func: str
    expr: Expr | None
    alias: str

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_NAMES:
            raise TypeMismatchError(f"unknown aggregate function: {self.func!r}")
        if self.expr is None and self.func != "COUNT":
            raise TypeMismatchError(f"{self.func}(*) is not valid; only COUNT(*) is")

    @property
    def is_count_star(self) -> bool:
        return self.expr is None

    def output_dtype(self, schema: Schema, weighted: bool) -> DType:
        """Result type. Weighted COUNT/SUM/AVG are FLOAT (fractional weights)."""
        if self.func == "COUNT":
            return DType.FLOAT if weighted else DType.INT
        if self.func == "AVG":
            return DType.FLOAT
        assert self.expr is not None
        input_dtype = self.expr.output_dtype(schema)
        if not input_dtype.is_numeric:
            raise TypeMismatchError(f"{self.func} requires a numeric argument")
        if self.func == "SUM" and weighted:
            return DType.FLOAT
        return input_dtype

    def to_sql(self) -> str:
        arg = "*" if self.expr is None else self.expr.to_sql()
        return f"{self.func}({arg})"


def compute_aggregate(
    spec: AggregateSpec,
    relation: Relation,
    weights: np.ndarray | None = None,
) -> float | int:
    """Evaluate one aggregate over an entire relation.

    ``weights`` is a per-row weight vector (``None`` means every row counts
    once).  Empty inputs follow SQL semantics loosely adapted to the
    NULL-free model: ``COUNT`` of nothing is 0; every other aggregate of
    nothing raises, because the engine filters out empty groups before
    calling here.
    """
    n = relation.num_rows
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[0] != n:
            raise SchemaError(
                f"weight vector length {weights.shape[0]} does not match row count {n}"
            )

    if spec.func == "COUNT":
        if weights is None:
            return int(n)
        return float(np.sum(weights))

    if n == 0:
        raise SchemaError(f"aggregate {spec.to_sql()} over zero rows")

    assert spec.expr is not None
    values = np.asarray(spec.expr.evaluate(relation))
    if not np.issubdtype(values.dtype, np.number):
        raise TypeMismatchError(f"{spec.func} requires a numeric argument")

    if spec.func == "SUM":
        if weights is None:
            return _native(np.sum(values))
        return float(np.sum(weights * values))
    if spec.func == "AVG":
        if weights is None:
            return float(np.mean(values))
        total_weight = float(np.sum(weights))
        if total_weight <= 0.0:
            raise SchemaError(f"AVG over zero total weight in {spec.to_sql()}")
        return float(np.sum(weights * values) / total_weight)

    # MIN / MAX: zero-weight rows are "not there" under reweighting.
    if weights is not None:
        alive = weights > 0.0
        if not np.any(alive):
            raise SchemaError(f"{spec.func} over zero total weight in {spec.to_sql()}")
        values = values[alive]
    if spec.func == "MIN":
        return _native(np.min(values))
    return _native(np.max(values))


def _native(value: np.generic) -> float | int:
    return value.item()
