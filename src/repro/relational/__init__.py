"""Columnar relational engine on numpy.

This subpackage is the storage/execution substrate the Mosaic layers build
on.  It deliberately mirrors a tiny slice of a real column store:

- :class:`~repro.relational.schema.Schema` / ``Field`` — typed relation
  schemas (:mod:`repro.relational.dtypes`).
- :class:`~repro.relational.relation.Relation` — an immutable columnar
  table backed by numpy arrays.
- :mod:`repro.relational.expressions` / ``predicates`` — vectorised scalar
  and boolean expression trees.
- :mod:`repro.relational.aggregates` — weighted and unweighted aggregates
  (``COUNT(*) -> SUM(weight)`` rewriting lives here).
- :mod:`repro.relational.groupby` / ``ops`` — group-by, filter, project,
  union, join, sort, distinct.
"""

from repro.relational.dtypes import DType
from repro.relational.schema import Field, Schema
from repro.relational.relation import Relation

__all__ = ["DType", "Field", "Schema", "Relation"]
