"""The :class:`Relation`: an immutable columnar table backed by numpy.

A relation is a :class:`~repro.relational.schema.Schema` plus one numpy
array per column, all of equal length.  Every transformation returns a new
relation; column arrays are shared where safe (the arrays themselves are
treated as immutable by convention).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.relational.dtypes import DType
from repro.relational.schema import Field, Schema


class Relation:
    """An immutable, schema-typed columnar table.

    Construct with :meth:`from_columns`, :meth:`from_rows`, or
    :meth:`empty`.  The raw constructor assumes the arrays are already
    coerced to the schema's storage dtypes.
    """

    __slots__ = ("_schema", "_columns", "_nrows", "_dictionaries")

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        if set(columns) != set(schema.names):
            raise SchemaError(
                f"column set {sorted(columns)} does not match schema {list(schema.names)}"
            )
        lengths = {arr.shape[0] for arr in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        self._schema = schema
        self._columns = {name: columns[name] for name in schema.names}
        self._nrows = next(iter(lengths)) if lengths else 0
        self._dictionaries: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_columns(cls, schema: Schema, columns: Mapping[str, Any]) -> "Relation":
        """Build a relation, coercing each column to its declared dtype."""
        coerced = {
            field.name: field.dtype.coerce_array(columns[field.name]) for field in schema
        }
        return cls(schema, coerced)

    @classmethod
    def from_dict(cls, columns: Mapping[str, Any]) -> "Relation":
        """Build a relation inferring the schema from the column values."""
        schema = Schema(Field(name, DType.infer(values)) for name, values in columns.items())
        return cls.from_columns(schema, columns)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Build a relation from an iterable of row tuples."""
        materialized = [tuple(row) for row in rows]
        for row in materialized:
            if len(row) != len(schema):
                raise SchemaError(
                    f"row arity {len(row)} does not match schema arity {len(schema)}"
                )
        columns = {
            field.name: [row[position] for row in materialized]
            for position, field in enumerate(schema)
        }
        return cls.from_columns(schema, columns)

    @classmethod
    def from_groups(cls, schema: Schema, columns: Sequence[Any]) -> "Relation":
        """Build a relation column-wise from per-group result arrays.

        ``columns`` holds one array (or array-like) per schema field, in
        schema order — the shape grouped-aggregation kernels naturally
        produce.  Unlike :meth:`from_rows` nothing is materialised as Python
        row tuples; each array is coerced to its field's storage dtype
        directly.
        """
        fields = schema.fields
        if len(columns) != len(fields):
            raise SchemaError(
                f"got {len(columns)} column array(s) for schema arity {len(fields)}"
            )
        return cls.from_columns(
            schema, {field.name: values for field, values in zip(fields, columns)}
        )

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        """A zero-row relation with the given schema."""
        return cls(
            schema,
            {field.name: np.empty(0, dtype=field.dtype.numpy_dtype) for field in schema},
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._nrows

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._schema.names

    def __len__(self) -> int:
        return self._nrows

    def __repr__(self) -> str:
        return f"Relation({self._schema!r}, rows={self._nrows})"

    def column(self, name: str) -> np.ndarray:
        """The raw storage array for a column. Treat as read-only."""
        self._schema.field(name)
        return self._columns[name]

    def dictionary(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Dictionary encoding of a column: ``(sorted_uniques, codes)``.

        ``codes[i]`` indexes ``sorted_uniques`` (``np.unique`` semantics:
        codes follow value-sorted order).  Memoized per column — relations
        are immutable, so the encoding is computed at most once, which makes
        repeated group-bys / sorts over the same relation nearly free.  TEXT
        columns use a hash-based factorizer instead of sorting all rows.

        Race-safe under concurrent readers: the encoding is fully built
        before publication, and publication is a single atomic
        ``dict.setdefault`` — two threads may redundantly compute, but the
        first writer wins and both return that complete entry (a half-built
        encoding is never observable).
        """
        cached = self._dictionaries.get(name)
        if cached is not None:
            return cached
        column = self.column(name)
        if self._schema.dtype(name) is DType.TEXT:
            uniques, codes = _factorize_object(column)
        else:
            uniques, raw = np.unique(column, return_inverse=True)
            codes = raw.astype(np.int64, copy=False)
        return self._dictionaries.setdefault(name, (uniques, codes))

    def rows(self) -> Iterator[tuple]:
        """Iterate rows as Python tuples (TEXT as str, numerics as numpy scalars)."""
        arrays = [self._columns[name] for name in self._schema.names]
        for i in range(self._nrows):
            yield tuple(arr[i] for arr in arrays)

    def to_pylist(self) -> list[dict[str, Any]]:
        """Rows as a list of plain-Python dicts (useful for tests and display)."""
        names = self._schema.names
        out = []
        for row in self.rows():
            out.append({name: _to_python(value) for name, value in zip(names, row)})
        return out

    # ------------------------------------------------------------------ #
    # Transformations (all return new relations)
    # ------------------------------------------------------------------ #

    def filter(self, mask: np.ndarray) -> "Relation":
        """Keep rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self._nrows:
            raise SchemaError(
                f"mask length {mask.shape[0]} does not match row count {self._nrows}"
            )
        return Relation(self._schema, {name: arr[mask] for name, arr in self._columns.items()})

    def take(self, indices: np.ndarray) -> "Relation":
        """Select rows by integer position (duplicates and reorderings allowed)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Relation(
            self._schema, {name: arr[indices] for name, arr in self._columns.items()}
        )

    def head(self, n: int) -> "Relation":
        return self.take(np.arange(min(n, self._nrows)))

    def project(self, names: Sequence[str]) -> "Relation":
        """Keep only the named columns, in the given order."""
        schema = self._schema.project(names)
        return Relation(schema, {name: self._columns[name] for name in names})

    def rename(self, mapping: dict[str, str]) -> "Relation":
        schema = self._schema.rename(mapping)
        columns = {mapping.get(name, name): arr for name, arr in self._columns.items()}
        renamed = Relation(schema, columns)
        # Column arrays are shared, so memoized dictionary encodings stay
        # valid — carry them over under their new names (the stale old-name
        # keys do not leak into the renamed relation).  Snapshot the items:
        # a concurrent reader may be publishing an encoding right now.
        for name, entry in list(self._dictionaries.items()):
            renamed._dictionaries[mapping.get(name, name)] = entry
        return renamed

    def with_column(self, name: str, dtype: DType, values: Any) -> "Relation":
        """Append (or replace) a column."""
        coerced = dtype.coerce_array(values)
        if coerced.shape[0] != self._nrows:
            raise SchemaError(
                f"new column length {coerced.shape[0]} does not match row count {self._nrows}"
            )
        if name in self._schema:
            fields = [
                Field(name, dtype) if field.name == name else field for field in self._schema
            ]
        else:
            fields = [*self._schema.fields, Field(name, dtype)]
        columns = dict(self._columns)
        columns[name] = coerced
        return Relation(Schema(fields), columns)

    def drop_column(self, name: str) -> "Relation":
        remaining = [n for n in self._schema.names if n != name]
        if len(remaining) == len(self._schema.names):
            raise SchemaError(f"no such column: {name!r}")
        return self.project(remaining)

    def concat(self, other: "Relation") -> "Relation":
        """Vertical union (schemas must match exactly)."""
        if other.schema != self._schema:
            raise SchemaError(
                f"cannot concat relations with different schemas: "
                f"{self._schema!r} vs {other.schema!r}"
            )
        columns = {
            name: np.concatenate([self._columns[name], other._columns[name]])
            for name in self._schema.names
        }
        return Relation(self._schema, columns)

    def sort_by(self, names: Sequence[str], ascending: Sequence[bool] | None = None) -> "Relation":
        """Stable multi-key sort.

        Each key column is reduced to dense integer codes (value ranks), which
        makes descending order a simple negation and lets ``np.lexsort`` do a
        single stable pass over all keys.
        """
        if ascending is None:
            ascending = [True] * len(names)
        if len(ascending) != len(names):
            raise SchemaError("sort keys and directions must have equal length")
        if self._nrows == 0 or not names:
            return self
        keys = []
        for name, asc in zip(names, ascending):
            _, codes = self.dictionary(name)
            keys.append(codes if asc else -codes)
        # np.lexsort treats the *last* key as primary, so reverse the list.
        order = np.lexsort(tuple(reversed(keys)))
        return self.take(order)

    def equals(self, other: "Relation") -> bool:
        """Exact equality: same schema, same rows in the same order."""
        if self._schema != other.schema or self._nrows != other.num_rows:
            return False
        for name in self._schema.names:
            mine, theirs = self._columns[name], other.column(name)
            if self._schema.dtype(name) is DType.FLOAT:
                if not np.allclose(mine, theirs, equal_nan=True):
                    return False
            elif not np.array_equal(mine, theirs):
                return False
        return True


def _factorize_object(column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted uniques + dense codes for an object column, hash-based.

    A dict pass assigns first-appearance codes (no O(n log n) comparison
    sort over all rows); only the (small) unique set is sorted, and the
    codes are remapped to that order so the result matches ``np.unique``.
    """
    mapping: dict = {}
    codes = np.empty(column.shape[0], dtype=np.int64)
    for position, value in enumerate(column):
        code = mapping.get(value)
        if code is None:
            code = mapping[value] = len(mapping)
        codes[position] = code
    uniques = np.empty(len(mapping), dtype=object)
    uniques[:] = list(mapping)
    order = np.argsort(uniques, kind="stable")
    remap = np.empty(len(mapping), dtype=np.int64)
    remap[order] = np.arange(len(mapping))
    return uniques[order], remap[codes]


def _to_python(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value
