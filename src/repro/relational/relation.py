"""The :class:`Relation`: an immutable columnar table backed by numpy.

A relation is a :class:`~repro.relational.schema.Schema` plus one numpy
array per column, all of equal length.  Every transformation returns a new
relation; column arrays are shared where safe (the arrays themselves are
treated as immutable by convention).

Storage layout for TEXT columns
-------------------------------
TEXT columns are *dictionary encoded* as a first-class storage property:
alongside the object array, the relation carries ``(vocab, codes)`` where
``vocab`` is a sorted object array of the distinct strings and ``codes`` an
``int32`` array with ``vocab[codes[i]] == column[i]``.  The encoding is
built exactly once at ingest (:meth:`from_columns` / :meth:`from_rows` /
:meth:`from_codes`) and then *sliced* — never recomputed — through
:meth:`filter`, :meth:`take`, :meth:`project`, :meth:`rename`, and
:meth:`with_column`; :meth:`concat` merges the two vocabularies and remaps
codes without decoding.  Scan-level predicates and the group-by kernels
evaluate against the vocab (k distinct values) and broadcast through the
codes, so repeated filter + group-by over the same stored tuples never
touches the object array.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import SchemaError
from repro.relational.dtypes import CODES_DTYPE, DType
from repro.relational.schema import Field, Schema

# Observability counters for the dictionary-encoding layer.  ``builds``
# counts full encode computations (hash factorization / np.unique over all
# rows); ``reuse_hits`` counts every time a memoized or propagated encoding
# was served instead.  Plain int increments under the GIL: concurrent
# updates may occasionally drop a count, which is acceptable for an
# approximate observability counter (never consulted for correctness).
_STATS = {"builds": 0, "reuse_hits": 0}


def dictionary_stats() -> dict[str, int]:
    """Snapshot of the global dictionary-encoding counters."""
    return dict(_STATS)


def compact_codes(
    codes: np.ndarray, domain_size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compact sparse group/dictionary codes to a dense 0..k-1 range.

    Returns ``(dense_codes, present, counts)``: ``present`` flags which of
    the ``domain_size`` domain entries are referenced by ``codes``,
    ``counts`` is the per-present-entry occurrence count, and
    ``dense_codes`` re-indexes ``codes`` into the compacted (order-
    preserving) domain.  When every entry is referenced the input codes
    are returned unchanged.
    """
    counts = np.bincount(codes, minlength=domain_size)
    present = counts > 0
    if counts.all():
        return codes, present, counts
    remap = np.cumsum(present) - 1
    return remap[codes].astype(CODES_DTYPE, copy=False), present, counts[present]


def reset_dictionary_stats() -> None:
    _STATS["builds"] = 0
    _STATS["reuse_hits"] = 0


class Relation:
    """An immutable, schema-typed columnar table.

    Construct with :meth:`from_columns`, :meth:`from_rows`,
    :meth:`from_codes`, or :meth:`empty`.  The raw constructor assumes the
    arrays are already coerced to the schema's storage dtypes.
    """

    # __weakref__ lets caches key segments/artifacts on relation identity
    # with weak references (see repro.relational.shm).
    __slots__ = ("_schema", "_columns", "_nrows", "_dictionaries", "_encodings", "__weakref__")

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        encodings: Mapping[str, tuple[np.ndarray, np.ndarray]] | None = None,
    ):
        if set(columns) != set(schema.names):
            raise SchemaError(
                f"column set {sorted(columns)} does not match schema {list(schema.names)}"
            )
        lengths = {arr.shape[0] for arr in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        self._schema = schema
        self._columns = {name: columns[name] for name in schema.names}
        self._nrows = next(iter(lengths)) if lengths else 0
        self._dictionaries: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._encodings: dict[str, tuple[np.ndarray, np.ndarray]] = (
            dict(encodings) if encodings else {}
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_columns(cls, schema: Schema, columns: Mapping[str, Any]) -> "Relation":
        """Build a relation, coercing each column to its declared dtype.

        TEXT columns are dictionary encoded here, in the same pass that
        coerces their values to ``str`` — the one place an encoding is ever
        built for ingested data.
        """
        coerced: dict[str, np.ndarray] = {}
        encodings: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for field in schema:
            _ingest_column(field, columns[field.name], coerced, encodings)
        return cls(schema, coerced, encodings=encodings)

    @classmethod
    def from_dict(cls, columns: Mapping[str, Any]) -> "Relation":
        """Build a relation inferring the schema from the column values."""
        schema = Schema(Field(name, DType.infer(values)) for name, values in columns.items())
        return cls.from_columns(schema, columns)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Build a relation from an iterable of row tuples."""
        materialized = [tuple(row) for row in rows]
        for row in materialized:
            if len(row) != len(schema):
                raise SchemaError(
                    f"row arity {len(row)} does not match schema arity {len(schema)}"
                )
        columns = {
            field.name: [row[position] for row in materialized]
            for position, field in enumerate(schema)
        }
        return cls.from_columns(schema, columns)

    @classmethod
    def from_groups(cls, schema: Schema, columns: Sequence[Any]) -> "Relation":
        """Build a relation column-wise from per-group result arrays.

        ``columns`` holds one array (or array-like) per schema field, in
        schema order — the shape grouped-aggregation kernels naturally
        produce.  Unlike :meth:`from_rows` nothing is materialised as Python
        row tuples; each array is coerced to its field's storage dtype
        directly.
        """
        fields = schema.fields
        if len(columns) != len(fields):
            raise SchemaError(
                f"got {len(columns)} column array(s) for schema arity {len(fields)}"
            )
        return cls.from_columns(
            schema, {field.name: values for field, values in zip(fields, columns)}
        )

    @classmethod
    def from_codes(
        cls,
        schema: Schema,
        encoded: Mapping[str, tuple[Any, Any]],
        plain: Mapping[str, Any] | None = None,
    ) -> "Relation":
        """Build a relation from pre-encoded TEXT columns plus plain columns.

        ``encoded`` maps TEXT column names to ``(vocab, codes)``: ``vocab``
        a strictly increasing array of distinct strings, ``codes`` integers
        indexing it.  The stored object column is materialised as
        ``vocab[codes]`` (a C gather that shares the vocab's ``str``
        objects) and the encoding is installed directly — no
        re-factorization.  This is how generators hand their fitted output
        vocabulary straight to the execution pipeline.  Columns not in
        ``encoded`` are taken from ``plain`` and coerced as in
        :meth:`from_columns`.
        """
        plain = plain or {}
        columns: dict[str, np.ndarray] = {}
        encodings: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for field in schema:
            if field.name in encoded:
                if field.dtype is not DType.TEXT:
                    raise SchemaError(
                        f"from_codes: column {field.name!r} is {field.dtype.value}, "
                        "only TEXT columns are dictionary encoded"
                    )
                raw_vocab, raw_codes = encoded[field.name]
                vocab = np.empty(len(raw_vocab), dtype=object)
                vocab[:] = list(raw_vocab)
                if vocab.size > 1 and not np.all(vocab[:-1] < vocab[1:]):
                    raise SchemaError(
                        f"from_codes: vocab for {field.name!r} must be strictly "
                        "increasing (sorted, distinct)"
                    )
                codes = np.asarray(raw_codes, dtype=CODES_DTYPE)
                if codes.size and (
                    vocab.size == 0
                    or codes.min() < 0
                    or codes.max() >= vocab.size
                ):
                    raise SchemaError(
                        f"from_codes: codes for {field.name!r} fall outside "
                        f"the vocab range [0, {vocab.size})"
                    )
                columns[field.name] = _decode(vocab, codes)
                encodings[field.name] = (vocab, codes)
            else:
                _ingest_column(field, plain[field.name], columns, encodings)
        return cls(schema, columns, encodings=encodings)

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        """A zero-row relation with the given schema."""
        return cls(
            schema,
            {field.name: np.empty(0, dtype=field.dtype.numpy_dtype) for field in schema},
            encodings={
                field.name: (np.empty(0, dtype=object), np.empty(0, dtype=CODES_DTYPE))
                for field in schema
                if field.dtype is DType.TEXT
            },
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def num_rows(self) -> int:
        return self._nrows

    @property
    def column_names(self) -> tuple[str, ...]:
        return self._schema.names

    def __len__(self) -> int:
        return self._nrows

    def __repr__(self) -> str:
        return f"Relation({self._schema!r}, rows={self._nrows})"

    def column(self, name: str) -> np.ndarray:
        """The raw storage array for a column. Treat as read-only."""
        self._schema.field(name)
        return self._columns[name]

    def encoding(self, name: str) -> tuple[np.ndarray, np.ndarray] | None:
        """The first-class ``(vocab, codes)`` encoding of a TEXT column.

        ``vocab`` is sorted and distinct but may be a *superset* of the
        values present (filtering slices codes and keeps the vocab), so
        consumers must tolerate unreferenced vocab entries.  ``None`` for
        columns without a stored encoding (non-TEXT, or relations built by
        the raw constructor from arbitrary expression output).
        """
        entry = self._encodings.get(name)
        if entry is not None:
            _STATS["reuse_hits"] += 1
        return entry

    def dictionary(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """Dictionary encoding of a column: ``(sorted_uniques, codes)``.

        ``codes[i]`` indexes ``sorted_uniques`` (``np.unique`` semantics:
        codes follow value-sorted order and every unique is present in the
        data).  Memoized per column — relations are immutable, so the
        encoding is computed at most once, which makes repeated group-bys /
        sorts over the same relation nearly free.  Columns with a
        first-class storage encoding derive the dense form from it with one
        vectorized remap (no re-factorization); TEXT columns without one
        use a hash-based factorizer instead of sorting all rows.

        Race-safe under concurrent readers: the encoding is fully built
        before publication, and publication is a single atomic
        ``dict.setdefault`` — two threads may redundantly compute, but the
        first writer wins and both return that complete entry (a half-built
        encoding is never observable).
        """
        cached = self._dictionaries.get(name)
        if cached is not None:
            _STATS["reuse_hits"] += 1
            return cached
        stored = self._encodings.get(name)
        if stored is not None:
            # Densify the sliced storage encoding: drop vocab entries no
            # code references, remap codes to the compacted positions.
            vocab, codes = stored
            dense, present, _ = compact_codes(codes, vocab.size)
            entry = (vocab if present.all() else vocab[present], dense)
            _STATS["reuse_hits"] += 1
            return self._dictionaries.setdefault(name, entry)
        column = self.column(name)
        if self._schema.dtype(name) is DType.TEXT:
            uniques, codes = _factorize_object(column)
        else:
            uniques, raw = np.unique(column, return_inverse=True)
            codes = raw.astype(np.int64, copy=False)
        _STATS["builds"] += 1
        return self._dictionaries.setdefault(name, (uniques, codes))

    def rows(self) -> Iterator[tuple]:
        """Iterate rows as Python tuples (TEXT as str, numerics as numpy scalars)."""
        arrays = [self._columns[name] for name in self._schema.names]
        for i in range(self._nrows):
            yield tuple(arr[i] for arr in arrays)

    def to_pylist(self) -> list[dict[str, Any]]:
        """Rows as a list of plain-Python dicts (useful for tests and display)."""
        names = self._schema.names
        out = []
        for row in self.rows():
            out.append({name: _to_python(value) for name, value in zip(names, row)})
        return out

    # ------------------------------------------------------------------ #
    # Transformations (all return new relations)
    # ------------------------------------------------------------------ #

    def filter(self, mask: np.ndarray) -> "Relation":
        """Keep rows where the boolean ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self._nrows:
            raise SchemaError(
                f"mask length {mask.shape[0]} does not match row count {self._nrows}"
            )
        return Relation(
            self._schema,
            {name: arr[mask] for name, arr in self._columns.items()},
            encodings={
                name: (vocab, codes[mask])
                for name, (vocab, codes) in self._encodings.items()
            },
        )

    def take(self, indices: np.ndarray) -> "Relation":
        """Select rows by integer position (duplicates and reorderings allowed)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Relation(
            self._schema,
            {name: arr[indices] for name, arr in self._columns.items()},
            encodings={
                name: (vocab, codes[indices])
                for name, (vocab, codes) in self._encodings.items()
            },
        )

    def head(self, n: int) -> "Relation":
        return self.take(np.arange(min(n, self._nrows)))

    def slice_rows(self, start: int, stop: int) -> "Relation":
        """The contiguous row window ``[start, stop)`` as zero-copy views.

        Basic numpy slicing: column arrays and encoding codes become views
        over the parent's buffers (no row data moves), which is what makes
        morsel-at-a-time execution free to set up.  Memoized dictionaries
        are not carried over (they describe the full row set)."""
        if not (0 <= start <= stop <= self._nrows):
            raise SchemaError(
                f"row slice [{start}, {stop}) outside relation of {self._nrows} rows"
            )
        if start == 0 and stop == self._nrows:
            return self  # immutable, so the full-range window is the relation
        return Relation(
            self._schema,
            {name: arr[start:stop] for name, arr in self._columns.items()},
            encodings={
                name: (vocab, codes[start:stop])
                for name, (vocab, codes) in self._encodings.items()
            },
        )

    def project(self, names: Sequence[str]) -> "Relation":
        """Keep only the named columns, in the given order."""
        schema = self._schema.project(names)
        return Relation(
            schema,
            {name: self._columns[name] for name in names},
            encodings={
                name: self._encodings[name] for name in names if name in self._encodings
            },
        )

    def rename(self, mapping: dict[str, str]) -> "Relation":
        schema = self._schema.rename(mapping)
        columns = {mapping.get(name, name): arr for name, arr in self._columns.items()}
        encodings = {
            mapping.get(name, name): entry for name, entry in self._encodings.items()
        }
        renamed = Relation(schema, columns, encodings=encodings)
        # Column arrays are shared, so memoized dictionary encodings stay
        # valid — carry them over under their new names (the stale old-name
        # keys do not leak into the renamed relation).  Snapshot the items:
        # a concurrent reader may be publishing an encoding right now.
        for name, entry in list(self._dictionaries.items()):
            renamed._dictionaries[mapping.get(name, name)] = entry
        return renamed

    def with_column(self, name: str, dtype: DType, values: Any) -> "Relation":
        """Append (or replace) a column."""
        coerced = dtype.coerce_array(values)
        if coerced.shape[0] != self._nrows:
            raise SchemaError(
                f"new column length {coerced.shape[0]} does not match row count {self._nrows}"
            )
        if name in self._schema:
            fields = [
                Field(name, dtype) if field.name == name else field for field in self._schema
            ]
        else:
            fields = [*self._schema.fields, Field(name, dtype)]
        columns = dict(self._columns)
        columns[name] = coerced
        encodings = {k: v for k, v in self._encodings.items() if k != name}
        return Relation(Schema(fields), columns, encodings=encodings)

    def drop_column(self, name: str) -> "Relation":
        remaining = [n for n in self._schema.names if n != name]
        if len(remaining) == len(self._schema.names):
            raise SchemaError(f"no such column: {name!r}")
        return self.project(remaining)

    def concat(self, other: "Relation") -> "Relation":
        """Vertical union (schemas must match exactly).

        Dictionary encodings are *merged*, not recomputed: when both sides
        share the same vocab the codes simply concatenate; otherwise the
        vocabs union (k log k over the distinct values) and each side's
        codes remap through a searchsorted lookup — the row data is never
        decoded.
        """
        if other.schema != self._schema:
            raise SchemaError(
                f"cannot concat relations with different schemas: "
                f"{self._schema!r} vs {other.schema!r}"
            )
        columns = {
            name: np.concatenate([self._columns[name], other._columns[name]])
            for name in self._schema.names
        }
        encodings: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name, (vocab, codes) in self._encodings.items():
            theirs = other._encodings.get(name)
            if theirs is None:
                continue
            other_vocab, other_codes = theirs
            encodings[name] = _merge_encodings(vocab, codes, other_vocab, other_codes)
        return Relation(self._schema, columns, encodings=encodings)

    def sort_by(self, names: Sequence[str], ascending: Sequence[bool] | None = None) -> "Relation":
        """Stable multi-key sort.

        Each key column is reduced to dense integer codes (value ranks), which
        makes descending order a simple negation and lets ``np.lexsort`` do a
        single stable pass over all keys.
        """
        if ascending is None:
            ascending = [True] * len(names)
        if len(ascending) != len(names):
            raise SchemaError("sort keys and directions must have equal length")
        if self._nrows == 0 or not names:
            return self
        keys = []
        for name, asc in zip(names, ascending):
            _, codes = self.dictionary(name)
            keys.append(codes if asc else -codes)
        # np.lexsort treats the *last* key as primary, so reverse the list.
        order = np.lexsort(tuple(reversed(keys)))
        return self.take(order)

    def equals(self, other: "Relation") -> bool:
        """Exact equality: same schema, same rows in the same order."""
        if self._schema != other.schema or self._nrows != other.num_rows:
            return False
        for name in self._schema.names:
            mine, theirs = self._columns[name], other.column(name)
            if self._schema.dtype(name) is DType.FLOAT:
                if not np.allclose(mine, theirs, equal_nan=True):
                    return False
            elif not np.array_equal(mine, theirs):
                return False
        return True


def _ingest_column(
    field: Field,
    values: Any,
    columns: dict[str, np.ndarray],
    encodings: dict[str, tuple[np.ndarray, np.ndarray]],
) -> None:
    """Coerce one ingested column into ``columns``, encoding TEXT fields."""
    if field.dtype is DType.TEXT:
        vocab, codes = _factorize_text(values)
        columns[field.name] = _decode(vocab, codes)
        encodings[field.name] = (vocab, codes)
    else:
        columns[field.name] = field.dtype.coerce_array(values)


def _decode(vocab: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Materialise the object column for an encoding (C gather, shared strs)."""
    if vocab.size == 0:
        return np.empty(codes.shape[0], dtype=object)
    return vocab[codes]


def _merge_encodings(
    left_vocab: np.ndarray,
    left_codes: np.ndarray,
    right_vocab: np.ndarray,
    right_codes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Union two sorted vocabs and remap both code arrays into the union."""
    if left_vocab is right_vocab or (
        left_vocab.size == right_vocab.size
        and bool(np.all(left_vocab == right_vocab))
    ):
        return left_vocab, np.concatenate([left_codes, right_codes])
    if left_vocab.size == 0:
        return right_vocab, np.concatenate(
            [left_codes.astype(CODES_DTYPE, copy=False), right_codes]
        )
    if right_vocab.size == 0:
        return left_vocab, np.concatenate(
            [left_codes, right_codes.astype(CODES_DTYPE, copy=False)]
        )
    merged = np.unique(np.concatenate([left_vocab, right_vocab]))
    left_remap = np.searchsorted(merged, left_vocab)
    right_remap = np.searchsorted(merged, right_vocab)
    codes = np.concatenate([left_remap[left_codes], right_remap[right_codes]])
    return merged, codes.astype(CODES_DTYPE, copy=False)


def _factorize_text(values: Any) -> tuple[np.ndarray, np.ndarray]:
    """Coerce + factorize raw TEXT input in one pass.

    Applies ``str()`` to every value while assigning first-appearance codes
    (the same hash-based scheme as :func:`_factorize_object`, fused with the
    coercion loop so ingest walks the Python values exactly once), then
    sorts the unique set and remaps.
    """
    arr = np.asarray(values, dtype=object)
    if arr.ndim != 1:
        arr = arr.ravel()
    mapping: dict[str, int] = {}
    codes = np.empty(arr.shape[0], dtype=CODES_DTYPE)
    for position, value in enumerate(arr):
        text = value if type(value) is str else str(value)
        code = mapping.get(text)
        if code is None:
            code = mapping[text] = len(mapping)
        codes[position] = code
    _STATS["builds"] += 1
    return _sort_and_remap(mapping, codes)


def _factorize_object(column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted uniques + dense codes for an object column, hash-based.

    A dict pass assigns first-appearance codes (no O(n log n) comparison
    sort over all rows); only the (small) unique set is sorted, and the
    codes are remapped to that order so the result matches ``np.unique``.
    """
    mapping: dict = {}
    codes = np.empty(column.shape[0], dtype=CODES_DTYPE)
    for position, value in enumerate(column):
        code = mapping.get(value)
        if code is None:
            code = mapping[value] = len(mapping)
        codes[position] = code
    return _sort_and_remap(mapping, codes)


def _sort_and_remap(mapping: dict, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    uniques = np.empty(len(mapping), dtype=object)
    uniques[:] = list(mapping)
    order = np.argsort(uniques, kind="stable")
    remap = np.empty(len(mapping), dtype=CODES_DTYPE)
    remap[order] = np.arange(len(mapping), dtype=CODES_DTYPE)
    return uniques[order], remap[codes]


def _to_python(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value
