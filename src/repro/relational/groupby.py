"""Group-by machinery: partition a relation's rows by key columns."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.relational.relation import Relation


def group_rows(
    relation: Relation, keys: Sequence[str]
) -> list[tuple[tuple, np.ndarray]]:
    """Partition row indices by the distinct values of ``keys``.

    Returns ``[(key_values, row_indices), ...]`` ordered by key (the same
    order ``np.unique`` yields, i.e. sorted per column).  ``key_values`` is a
    tuple of Python-native scalars aligned with ``keys``.

    With no key columns, the entire relation forms a single group with an
    empty key tuple — this makes ungrouped aggregation a special case of
    grouped aggregation.
    """
    n = relation.num_rows
    if not keys:
        return [((), np.arange(n))]
    if n == 0:
        return []

    per_column_codes = []
    per_column_values = []
    for name in keys:
        column = relation.column(name)
        uniques, codes = np.unique(column, return_inverse=True)
        per_column_codes.append(codes)
        per_column_values.append(uniques)

    combined = per_column_codes[0].astype(np.int64)
    for codes, uniques in zip(per_column_codes[1:], per_column_values[1:]):
        combined = combined * len(uniques) + codes

    order = np.argsort(combined, kind="stable")
    sorted_codes = combined[order]
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    groups = np.split(order, boundaries)

    result: list[tuple[tuple, np.ndarray]] = []
    for indices in groups:
        first = indices[0]
        key = tuple(
            _to_python(relation.column(name)[first]) for name in keys
        )
        result.append((key, indices))
    return result


def distinct_indices(relation: Relation, keys: Sequence[str]) -> np.ndarray:
    """Row indices of the first occurrence of each distinct key combination."""
    return np.asarray(
        [indices[0] for _, indices in group_rows(relation, keys)], dtype=np.int64
    )


def _to_python(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
