"""Group-by machinery: dense group codes and row partitions by key columns."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.relational.relation import Relation


def group_codes(
    relation: Relation, keys: Sequence[str]
) -> tuple[np.ndarray, int, np.ndarray]:
    """Dense per-row group codes over the distinct values of ``keys``.

    Returns ``(codes, num_groups, first_indices)``:

    - ``codes[i]`` is the group id of row ``i``; ids run ``0..num_groups-1``
      in key-sorted order (per-column ``np.unique`` order, the same order
      :func:`group_rows` yields),
    - ``first_indices[g]`` is the first row (in row order) of group ``g``,
      usable as a representative for reading key values.

    With no key columns every row belongs to a single group 0 — even for an
    empty relation, where the one group has zero member rows.  This makes
    ungrouped aggregation a special case of grouped aggregation.
    """
    n = relation.num_rows
    if not keys:
        return (
            np.zeros(n, dtype=np.int64),
            1,
            np.zeros(1 if n else 0, dtype=np.int64),
        )
    if n == 0:
        return np.empty(0, dtype=np.int64), 0, np.empty(0, dtype=np.int64)

    if len(keys) == 1:
        uniques, codes = relation.dictionary(keys[0])
        return codes, len(uniques), _first_occurrences(codes, len(uniques))

    combined = np.zeros(n, dtype=np.int64)
    cross_product = 1
    for name in keys:
        uniques, codes = relation.dictionary(name)
        combined = combined * len(uniques) + codes
        cross_product *= len(uniques)

    # Multi-key combination leaves gaps (absent value pairs); re-densify.
    if cross_product <= max(4 * n, 1024):
        # Small key domain: presence mask + remap, no O(n log n) sort.
        present = np.flatnonzero(np.bincount(combined, minlength=cross_product))
        remap = np.empty(cross_product, dtype=np.int64)
        remap[present] = np.arange(len(present))
        codes = remap[combined]
        return codes, len(present), _first_occurrences(codes, len(present))
    uniques, first_indices, codes = np.unique(
        combined, return_index=True, return_inverse=True
    )
    return (
        codes.astype(np.int64, copy=False),
        len(uniques),
        first_indices.astype(np.int64, copy=False),
    )


def _first_occurrences(codes: np.ndarray, num_groups: int) -> np.ndarray:
    """First row index of each group, without sorting.

    Fancy assignment with duplicate indices keeps the last write; writing
    row indices in reverse row order therefore leaves each group's minimum.
    """
    n = codes.shape[0]
    first = np.empty(num_groups, dtype=np.int64)
    first[codes[::-1]] = np.arange(n - 1, -1, -1)
    return first


def group_rows(
    relation: Relation, keys: Sequence[str]
) -> list[tuple[tuple, np.ndarray]]:
    """Partition row indices by the distinct values of ``keys``.

    Returns ``[(key_values, row_indices), ...]`` ordered by key (the same
    order ``np.unique`` yields, i.e. sorted per column).  ``key_values`` is a
    tuple of Python-native scalars aligned with ``keys``.

    With no key columns, the entire relation forms a single group with an
    empty key tuple — this makes ungrouped aggregation a special case of
    grouped aggregation.
    """
    if not keys:
        return [((), np.arange(relation.num_rows))]

    codes, num_groups, first_indices = group_codes(relation, keys)
    if num_groups == 0:
        return []

    order = np.argsort(codes, kind="stable")
    boundaries = np.flatnonzero(np.diff(codes[order])) + 1
    groups = np.split(order, boundaries)

    key_columns = [relation.column(name) for name in keys]
    result: list[tuple[tuple, np.ndarray]] = []
    for group_id, indices in enumerate(groups):
        representative = first_indices[group_id]
        key = tuple(_to_python(column[representative]) for column in key_columns)
        result.append((key, indices))
    return result


def distinct_indices(relation: Relation, keys: Sequence[str]) -> np.ndarray:
    """Row indices of the first occurrence of each distinct key combination.

    Computed directly from the combined group codes — no per-group
    partitioning.
    """
    _, _, first_indices = group_codes(relation, keys)
    return first_indices


def _to_python(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
