"""CSV import/export for relations.

The format is a plain header row followed by data rows.  On read, either
pass an explicit :class:`~repro.relational.schema.Schema` or let the loader
infer types (INT ⊂ FLOAT ⊂ TEXT; BOOL from ``true``/``false`` literals).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import SchemaError
from repro.relational.dtypes import DType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to ``path`` with a header row."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.column_names)
        for row in relation.rows():
            writer.writerow(row)


def read_csv(path: str | Path, schema: Schema | None = None) -> Relation:
    """Read a relation from ``path``.

    With ``schema=None`` the column types are inferred from the data; an
    empty file (header only) with no schema infers everything as TEXT.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty (no header)") from None
        rows = [row for row in reader if row]

    for row in rows:
        if len(row) != len(header):
            raise SchemaError(
                f"CSV row arity {len(row)} does not match header arity {len(header)}"
            )

    raw_columns = {name: [row[i] for row in rows] for i, name in enumerate(header)}
    if schema is None:
        schema = Schema(
            Field(name, _infer_text_dtype(values)) for name, values in raw_columns.items()
        )
    # TEXT cells pass through untouched: they are already str, and
    # Relation.from_columns dictionary-encodes them in its single
    # coerce+factorize pass — no per-cell identity parse here.
    typed = {
        field.name: (
            raw_columns[field.name]
            if field.dtype is DType.TEXT
            else [_parse_cell(cell, field.dtype) for cell in raw_columns[field.name]]
        )
        for field in schema
    }
    return Relation.from_columns(schema, typed)


def _infer_text_dtype(values: list[str]) -> DType:
    if not values:
        return DType.TEXT
    lowered = [v.strip().lower() for v in values]
    if all(v in ("true", "false") for v in lowered):
        return DType.BOOL
    if all(_parses_as_int(v) for v in values):
        return DType.INT
    if all(_parses_as_float(v) for v in values):
        return DType.FLOAT
    return DType.TEXT


def _parse_cell(cell: str, dtype: DType):
    if dtype is DType.BOOL:
        return cell.strip().lower() == "true"
    if dtype is DType.INT:
        return int(cell)
    if dtype is DType.FLOAT:
        return float(cell)
    return cell


def _parses_as_int(text: str) -> bool:
    try:
        int(text)
        return True
    except ValueError:
        return False


def _parses_as_float(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
