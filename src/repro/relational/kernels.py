"""Vectorized grouped-aggregation kernels (segment reductions over group codes).

These kernels replace the per-group ``relation.take`` + Python-row loop that
used to sit at the bottom of every visibility path.  All groups are reduced
at once:

- COUNT / SUM / AVG use ``np.bincount`` over the dense group codes produced
  by :func:`repro.relational.groupby.group_codes` (weighted variants bincount
  ``w`` and ``w * value``),
- MIN / MAX sort rows by group code once and apply ``ufunc.reduceat`` at the
  segment starts,

and the result relation is assembled column-wise via
:meth:`Relation.from_groups` — no intermediate Python row tuples.

Weighted semantics mirror :func:`repro.relational.aggregates.compute_aggregate`
exactly: a group whose rows all carry zero weight "does not exist" and is
dropped from the output; MIN/MAX ignore zero-weight rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import ColumnRef
from repro.relational.groupby import group_codes
from repro.relational.relation import Relation, compact_codes
from repro.relational.schema import Schema


def grouped_aggregate(
    relation: Relation,
    group_keys: Sequence[str],
    key_columns: Sequence[str],
    specs: Sequence[AggregateSpec],
    out_schema: Schema,
    weights: np.ndarray | None = None,
    selection: np.ndarray | None = None,
) -> Relation:
    """Aggregate ``relation`` grouped by ``group_keys`` in one vectorized pass.

    ``key_columns`` names the source column behind each leading output field
    (the SELECTed group keys, possibly aliased); ``specs`` hold the bound
    aggregate expressions for the remaining fields.  ``out_schema`` has one
    field per key column followed by one per spec.  Groups appear in
    key-sorted order, matching :func:`~repro.relational.groupby.group_rows`.

    ``selection`` is an optional boolean mask over ``relation``'s rows (the
    WHERE clause's selection vector): only selected rows aggregate, exactly
    as if ``relation.filter(selection)`` ran first — but nothing is
    materialised.  Group codes come from the *unfiltered* relation's
    memoized dictionary encodings and are sliced, so a filtered group-by
    never re-encodes its key columns; groups with no selected row are
    dropped (except the single implicit group of an ungrouped aggregate,
    which always exists).  ``weights`` stays aligned with the unfiltered
    relation and is sliced alongside the codes.
    """
    n = relation.num_rows
    codes, num_groups, first_indices = group_codes(relation, group_keys)

    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[0] != n:
            raise SchemaError(
                f"weight vector length {weights.shape[0]} does not match row count {n}"
            )

    sel: np.ndarray | None = None
    if selection is not None:
        selection = np.asarray(selection, dtype=bool)
        if selection.shape[0] != n:
            raise SchemaError(
                f"selection length {selection.shape[0]} does not match row count {n}"
            )
        sel = np.flatnonzero(selection)
        codes = codes[sel]
        if group_keys:
            # Groups with no selected row "do not exist": compact the code
            # space to the present groups (key representatives keep their
            # original row indices — any member row carries the key values).
            codes, present, counts = compact_codes(codes, num_groups)
            first_indices = first_indices[present]
            num_groups = int(present.sum())
        else:
            counts = np.bincount(codes, minlength=num_groups)
        if weights is not None:
            weights = weights[sel]
    else:
        counts = np.bincount(codes, minlength=num_groups)

    if weights is not None:
        alive = weights > 0.0
        # A group with no positively weighted row was reweighted away.
        kept = np.bincount(codes[alive], minlength=num_groups) > 0
    else:
        alive = None
        kept = np.ones(num_groups, dtype=bool)

    columns: list[np.ndarray] = [
        relation.column(name)[first_indices][kept] for name in key_columns
    ]
    for spec in specs:
        columns.append(
            _aggregate_column(
                spec, relation, codes, num_groups, counts, weights, alive, kept, sel
            )
        )
    return Relation.from_groups(out_schema, columns)


def _argument_values(
    spec: AggregateSpec, relation: Relation, sel: np.ndarray | None
) -> np.ndarray:
    """The aggregate argument evaluated over exactly the selected rows.

    Plain column references read the stored array and slice (no copy
    beyond the gather).  Compound expressions must *not* see filtered-out
    rows — ``AVG(a / b) ... WHERE b != 0`` relies on the filter to guard
    the division — so they evaluate over a minimal relation of just their
    referenced columns, taken at the selection.
    """
    assert spec.expr is not None
    if sel is None:
        return np.asarray(spec.expr.evaluate(relation))
    if isinstance(spec.expr, ColumnRef):
        return np.asarray(relation.column(spec.expr.name))[sel]
    referenced = sorted(spec.expr.referenced_columns())
    if not referenced:
        # Constant expression: evaluating over all rows is side-effect-free.
        return np.asarray(spec.expr.evaluate(relation))[sel]
    restricted = relation.project(referenced).take(sel)
    return np.asarray(spec.expr.evaluate(restricted))


def _aggregate_column(
    spec: AggregateSpec,
    relation: Relation,
    codes: np.ndarray,
    num_groups: int,
    counts: np.ndarray,
    weights: np.ndarray | None,
    alive: np.ndarray | None,
    kept: np.ndarray,
    sel: np.ndarray | None = None,
) -> np.ndarray:
    if spec.func == "COUNT":
        if weights is None:
            return counts[kept]
        return np.bincount(codes, weights=weights, minlength=num_groups)[kept]

    # Only the ungrouped-empty-unweighted case can reach a zero-row group;
    # weighted zero-mass groups were already dropped via ``kept``.
    if weights is None and np.any(counts[kept] == 0):
        raise SchemaError(f"aggregate {spec.to_sql()} over zero rows")

    assert spec.expr is not None
    values = _argument_values(spec, relation, sel)
    if not np.issubdtype(values.dtype, np.number):
        raise TypeMismatchError(f"{spec.func} requires a numeric argument")

    if spec.func == "SUM":
        if weights is None:
            if np.issubdtype(values.dtype, np.integer):
                # Exact int64 accumulation (bincount sums in float64, which
                # truncates beyond 2**53).
                sums = np.zeros(num_groups, dtype=np.int64)
                np.add.at(sums, codes, values)
            else:
                sums = np.bincount(codes, weights=values, minlength=num_groups)
        else:
            sums = np.bincount(codes, weights=weights * values, minlength=num_groups)
        return sums[kept]
    if spec.func == "AVG":
        if weights is None:
            sums = np.bincount(codes, weights=values.astype(np.float64), minlength=num_groups)
            return sums[kept] / counts[kept]
        weighted_sums = np.bincount(codes, weights=weights * values, minlength=num_groups)
        weight_totals = np.bincount(codes, weights=weights, minlength=num_groups)
        if np.any(weight_totals[kept] <= 0.0):
            raise SchemaError(f"AVG over zero total weight in {spec.to_sql()}")
        return weighted_sums[kept] / weight_totals[kept]

    assert spec.func in ("MIN", "MAX")
    # Zero-weight rows are "not there" under reweighting.
    if alive is not None:
        segment_codes = codes[alive]
        segment_values = values[alive]
    else:
        segment_codes = codes
        segment_values = values
    if segment_codes.size == 0:
        return segment_values[:0]
    order = np.argsort(segment_codes, kind="stable")
    segment_codes = segment_codes[order]
    segment_values = segment_values[order]
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(segment_codes)) + 1]
    ).astype(np.int64)
    ufunc = np.minimum if spec.func == "MIN" else np.maximum
    # The groups present among alive rows are exactly the kept groups, in
    # the same (ascending code) order, so reduceat output aligns with kept.
    return ufunc.reduceat(segment_values, starts)


# --------------------------------------------------------------------- #
# Batched (composite-code) aggregation for OPEN repetitions
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CompositeAggregates:
    """Per-(repetition, group) aggregates over one batched relation.

    Produced by :func:`grouped_aggregate_composite` from a stacked
    ``R x n``-row generation: group ids span the *whole* batch (one shared
    dictionary per key column), so group ``g`` means the same key values
    in every repetition — exactly the identity the OPEN answer combiner
    needs.  ``present[r, g]`` says repetition ``r`` produced group ``g``
    (at least one selected, positively weighted row); ``values[i][r, g]``
    is the ``i``-th aggregate's value for that cell (defined only where
    ``present``).  ``first_indices[g]`` is a representative batch row for
    reading group ``g``'s key values.
    """

    num_groups: int
    repetitions: int
    first_indices: np.ndarray
    present: np.ndarray
    values: tuple[np.ndarray, ...]


def grouped_aggregate_composite(
    relation: Relation,
    group_keys: Sequence[str],
    specs: Sequence[AggregateSpec],
    rep_ids: np.ndarray,
    repetitions: int,
    weights: np.ndarray,
    selection: np.ndarray | None = None,
) -> CompositeAggregates:
    """Aggregate all ``repetitions`` of a batch in one composite pass.

    Instead of slicing the batch into ``R`` relations and aggregating each
    (R bincounts, R sorts, R result relations), every reduction runs once
    over composite codes ``rep * num_groups + group`` — the same kernels
    (bincount for COUNT/SUM/AVG, sort + ``ufunc.reduceat`` for MIN/MAX)
    with ``R * num_groups`` cells.  Per-cell results are bit-identical to
    the per-repetition path: rows of one repetition are contiguous and in
    generation order, so each cell reduces the same values in the same
    order as its serial counterpart.

    Weighted semantics mirror :func:`grouped_aggregate` exactly: a cell
    "exists" iff it has a selected row with positive weight; COUNT/SUM/AVG
    reduce over all selected rows (zero weights contribute nothing), while
    MIN/MAX reduce over positively weighted rows only.
    """
    n = relation.num_rows
    codes, num_groups, first_indices = group_codes(relation, group_keys)
    if weights.shape[0] != n:
        raise SchemaError(
            f"weight vector length {weights.shape[0]} does not match row count {n}"
        )
    composite = rep_ids * num_groups + codes
    total_cells = repetitions * num_groups

    if selection is not None:
        selection = np.asarray(selection, dtype=bool)
        if selection.shape[0] != n:
            raise SchemaError(
                f"selection length {selection.shape[0]} does not match row count {n}"
            )
        sel = np.flatnonzero(selection)
        composite_sel = composite[sel]
        weights_sel = weights[sel]
    else:
        sel = None
        composite_sel = composite
        weights_sel = weights

    alive = weights_sel > 0.0
    composite_alive = composite_sel if alive.all() else composite_sel[alive]
    present = (
        np.bincount(composite_alive, minlength=total_cells) > 0
    ).reshape(repetitions, num_groups)

    value_matrices: list[np.ndarray] = []
    for spec in specs:
        value_matrices.append(
            _composite_aggregate_matrix(
                spec,
                relation,
                sel,
                composite_sel,
                weights_sel,
                alive,
                composite_alive,
                total_cells,
            ).reshape(repetitions, num_groups)
        )
    return CompositeAggregates(
        num_groups=num_groups,
        repetitions=repetitions,
        first_indices=first_indices,
        present=present,
        values=tuple(value_matrices),
    )


def _composite_aggregate_matrix(
    spec: AggregateSpec,
    relation: Relation,
    sel: np.ndarray | None,
    composite_sel: np.ndarray,
    weights_sel: np.ndarray,
    alive: np.ndarray,
    composite_alive: np.ndarray,
    total_cells: int,
) -> np.ndarray:
    """One aggregate's per-cell values over the flat composite code space."""
    if spec.func == "COUNT":
        return np.bincount(composite_sel, weights=weights_sel, minlength=total_cells)

    assert spec.expr is not None
    values = _argument_values(spec, relation, sel)
    if not np.issubdtype(values.dtype, np.number):
        raise TypeMismatchError(f"{spec.func} requires a numeric argument")

    if spec.func == "SUM":
        return np.bincount(
            composite_sel, weights=weights_sel * values, minlength=total_cells
        )
    if spec.func == "AVG":
        weighted_sums = np.bincount(
            composite_sel, weights=weights_sel * values, minlength=total_cells
        )
        weight_totals = np.bincount(
            composite_sel, weights=weights_sel, minlength=total_cells
        )
        averages = np.zeros(total_cells, dtype=np.float64)
        np.divide(weighted_sums, weight_totals, out=averages, where=weight_totals > 0.0)
        return averages

    assert spec.func in ("MIN", "MAX")
    segment_values = values if alive.all() else values[alive]
    result = np.zeros(total_cells, dtype=np.float64)
    if composite_alive.size == 0:
        return result
    order = np.argsort(composite_alive, kind="stable")
    sorted_codes = composite_alive[order]
    sorted_values = segment_values[order]
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(sorted_codes)) + 1]
    ).astype(np.int64)
    ufunc = np.minimum if spec.func == "MIN" else np.maximum
    result[sorted_codes[starts]] = ufunc.reduceat(sorted_values, starts)
    return result
