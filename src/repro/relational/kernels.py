"""Vectorized grouped-aggregation kernels (segment reductions over group codes).

These kernels replace the per-group ``relation.take`` + Python-row loop that
used to sit at the bottom of every visibility path.  All groups are reduced
at once:

- COUNT / SUM / AVG use ``np.bincount`` over the dense group codes produced
  by :func:`repro.relational.groupby.group_codes` (weighted variants bincount
  ``w`` and ``w * value``),
- MIN / MAX sort rows by group code once and apply ``ufunc.reduceat`` at the
  segment starts,

and the result relation is assembled column-wise via
:meth:`Relation.from_groups` — no intermediate Python row tuples.

Weighted semantics mirror :func:`repro.relational.aggregates.compute_aggregate`
exactly: a group whose rows all carry zero weight "does not exist" and is
dropped from the output; MIN/MAX ignore zero-weight rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.aggregates import AggregateSpec
from repro.relational.expressions import ColumnRef
from repro.relational.groupby import group_codes
from repro.relational.relation import Relation, compact_codes
from repro.relational.schema import Schema


def grouped_aggregate(
    relation: Relation,
    group_keys: Sequence[str],
    key_columns: Sequence[str],
    specs: Sequence[AggregateSpec],
    out_schema: Schema,
    weights: np.ndarray | None = None,
    selection: np.ndarray | None = None,
) -> Relation:
    """Aggregate ``relation`` grouped by ``group_keys`` in one vectorized pass.

    ``key_columns`` names the source column behind each leading output field
    (the SELECTed group keys, possibly aliased); ``specs`` hold the bound
    aggregate expressions for the remaining fields.  ``out_schema`` has one
    field per key column followed by one per spec.  Groups appear in
    key-sorted order, matching :func:`~repro.relational.groupby.group_rows`.

    ``selection`` is an optional boolean mask over ``relation``'s rows (the
    WHERE clause's selection vector): only selected rows aggregate, exactly
    as if ``relation.filter(selection)`` ran first — but nothing is
    materialised.  Group codes come from the *unfiltered* relation's
    memoized dictionary encodings and are sliced, so a filtered group-by
    never re-encodes its key columns; groups with no selected row are
    dropped (except the single implicit group of an ungrouped aggregate,
    which always exists).  ``weights`` stays aligned with the unfiltered
    relation and is sliced alongside the codes.
    """
    n = relation.num_rows
    codes, num_groups, first_indices = group_codes(relation, group_keys)

    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[0] != n:
            raise SchemaError(
                f"weight vector length {weights.shape[0]} does not match row count {n}"
            )

    sel: np.ndarray | None = None
    if selection is not None:
        selection = np.asarray(selection, dtype=bool)
        if selection.shape[0] != n:
            raise SchemaError(
                f"selection length {selection.shape[0]} does not match row count {n}"
            )
        sel = np.flatnonzero(selection)
        codes = codes[sel]
        if group_keys:
            # Groups with no selected row "do not exist": compact the code
            # space to the present groups (key representatives keep their
            # original row indices — any member row carries the key values).
            codes, present, counts = compact_codes(codes, num_groups)
            first_indices = first_indices[present]
            num_groups = int(present.sum())
        else:
            counts = np.bincount(codes, minlength=num_groups)
        if weights is not None:
            weights = weights[sel]
    else:
        counts = np.bincount(codes, minlength=num_groups)

    if weights is not None:
        alive = weights > 0.0
        # A group with no positively weighted row was reweighted away.
        kept = np.bincount(codes[alive], minlength=num_groups) > 0
    else:
        alive = None
        kept = np.ones(num_groups, dtype=bool)

    columns: list[np.ndarray] = [
        relation.column(name)[first_indices][kept] for name in key_columns
    ]
    for spec in specs:
        columns.append(
            _aggregate_column(
                spec, relation, codes, num_groups, counts, weights, alive, kept, sel
            )
        )
    return Relation.from_groups(out_schema, columns)


def _argument_values(
    spec: AggregateSpec, relation: Relation, sel: np.ndarray | None
) -> np.ndarray:
    """The aggregate argument evaluated over exactly the selected rows.

    Plain column references read the stored array and slice (no copy
    beyond the gather).  Compound expressions must *not* see filtered-out
    rows — ``AVG(a / b) ... WHERE b != 0`` relies on the filter to guard
    the division — so they evaluate over a minimal relation of just their
    referenced columns, taken at the selection.
    """
    assert spec.expr is not None
    if sel is None:
        return np.asarray(spec.expr.evaluate(relation))
    if isinstance(spec.expr, ColumnRef):
        return np.asarray(relation.column(spec.expr.name))[sel]
    referenced = sorted(spec.expr.referenced_columns())
    if not referenced:
        # Constant expression: evaluating over all rows is side-effect-free.
        return np.asarray(spec.expr.evaluate(relation))[sel]
    restricted = relation.project(referenced).take(sel)
    return np.asarray(spec.expr.evaluate(restricted))


def _aggregate_column(
    spec: AggregateSpec,
    relation: Relation,
    codes: np.ndarray,
    num_groups: int,
    counts: np.ndarray,
    weights: np.ndarray | None,
    alive: np.ndarray | None,
    kept: np.ndarray,
    sel: np.ndarray | None = None,
) -> np.ndarray:
    if spec.func == "COUNT":
        if weights is None:
            return counts[kept]
        return np.bincount(codes, weights=weights, minlength=num_groups)[kept]

    # Only the ungrouped-empty-unweighted case can reach a zero-row group;
    # weighted zero-mass groups were already dropped via ``kept``.
    if weights is None and np.any(counts[kept] == 0):
        raise SchemaError(f"aggregate {spec.to_sql()} over zero rows")

    assert spec.expr is not None
    values = _argument_values(spec, relation, sel)
    if not np.issubdtype(values.dtype, np.number):
        raise TypeMismatchError(f"{spec.func} requires a numeric argument")

    if spec.func == "SUM":
        if weights is None:
            if np.issubdtype(values.dtype, np.integer):
                # Exact int64 accumulation (bincount sums in float64, which
                # truncates beyond 2**53).
                sums = np.zeros(num_groups, dtype=np.int64)
                np.add.at(sums, codes, values)
            else:
                sums = np.bincount(codes, weights=values, minlength=num_groups)
        else:
            sums = np.bincount(codes, weights=weights * values, minlength=num_groups)
        return sums[kept]
    if spec.func == "AVG":
        if weights is None:
            sums = np.bincount(codes, weights=values.astype(np.float64), minlength=num_groups)
            return sums[kept] / counts[kept]
        weighted_sums = np.bincount(codes, weights=weights * values, minlength=num_groups)
        weight_totals = np.bincount(codes, weights=weights, minlength=num_groups)
        if np.any(weight_totals[kept] <= 0.0):
            raise SchemaError(f"AVG over zero total weight in {spec.to_sql()}")
        return weighted_sums[kept] / weight_totals[kept]

    assert spec.func in ("MIN", "MAX")
    # Zero-weight rows are "not there" under reweighting.
    if alive is not None:
        segment_codes = codes[alive]
        segment_values = values[alive]
    else:
        segment_codes = codes
        segment_values = values
    if segment_codes.size == 0:
        return segment_values[:0]
    order = np.argsort(segment_codes, kind="stable")
    segment_codes = segment_codes[order]
    segment_values = segment_values[order]
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(segment_codes)) + 1]
    ).astype(np.int64)
    ufunc = np.minimum if spec.func == "MIN" else np.maximum
    # The groups present among alive rows are exactly the kept groups, in
    # the same (ascending code) order, so reduceat output aligns with kept.
    return ufunc.reduceat(segment_values, starts)


# --------------------------------------------------------------------- #
# Batched (composite-code) aggregation for OPEN repetitions
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CompositeAggregates:
    """Per-(repetition, group) aggregates over one batched relation.

    Produced by :func:`grouped_aggregate_composite` from a stacked
    ``R x n``-row generation: group ids span the *whole* batch (one shared
    dictionary per key column), so group ``g`` means the same key values
    in every repetition — exactly the identity the OPEN answer combiner
    needs.  ``present[r, g]`` says repetition ``r`` produced group ``g``
    (at least one selected, positively weighted row); ``values[i][r, g]``
    is the ``i``-th aggregate's value for that cell (defined only where
    ``present``).  ``first_indices[g]`` is a representative batch row for
    reading group ``g``'s key values.
    """

    num_groups: int
    repetitions: int
    first_indices: np.ndarray
    present: np.ndarray
    values: tuple[np.ndarray, ...]


def grouped_aggregate_composite(
    relation: Relation,
    group_keys: Sequence[str],
    specs: Sequence[AggregateSpec],
    rep_ids: np.ndarray,
    repetitions: int,
    weights: np.ndarray,
    selection: np.ndarray | None = None,
) -> CompositeAggregates:
    """Aggregate all ``repetitions`` of a batch in one composite pass.

    Instead of slicing the batch into ``R`` relations and aggregating each
    (R bincounts, R sorts, R result relations), every reduction runs once
    over composite codes ``rep * num_groups + group`` — the same kernels
    (bincount for COUNT/SUM/AVG, sort + ``ufunc.reduceat`` for MIN/MAX)
    with ``R * num_groups`` cells.  Per-cell results are bit-identical to
    the per-repetition path: rows of one repetition are contiguous and in
    generation order, so each cell reduces the same values in the same
    order as its serial counterpart.

    Weighted semantics mirror :func:`grouped_aggregate` exactly: a cell
    "exists" iff it has a selected row with positive weight; COUNT/SUM/AVG
    reduce over all selected rows (zero weights contribute nothing), while
    MIN/MAX reduce over positively weighted rows only.
    """
    n = relation.num_rows
    codes, num_groups, first_indices = group_codes(relation, group_keys)
    if weights.shape[0] != n:
        raise SchemaError(
            f"weight vector length {weights.shape[0]} does not match row count {n}"
        )
    composite = rep_ids * num_groups + codes
    total_cells = repetitions * num_groups

    if selection is not None:
        selection = np.asarray(selection, dtype=bool)
        if selection.shape[0] != n:
            raise SchemaError(
                f"selection length {selection.shape[0]} does not match row count {n}"
            )
        sel = np.flatnonzero(selection)
        composite_sel = composite[sel]
        weights_sel = weights[sel]
    else:
        sel = None
        composite_sel = composite
        weights_sel = weights

    alive = weights_sel > 0.0
    composite_alive = composite_sel if alive.all() else composite_sel[alive]
    present = (
        np.bincount(composite_alive, minlength=total_cells) > 0
    ).reshape(repetitions, num_groups)

    value_matrices: list[np.ndarray] = []
    for spec in specs:
        value_matrices.append(
            _composite_aggregate_matrix(
                spec,
                relation,
                sel,
                composite_sel,
                weights_sel,
                alive,
                composite_alive,
                total_cells,
            ).reshape(repetitions, num_groups)
        )
    return CompositeAggregates(
        num_groups=num_groups,
        repetitions=repetitions,
        first_indices=first_indices,
        present=present,
        values=tuple(value_matrices),
    )


def _composite_aggregate_matrix(
    spec: AggregateSpec,
    relation: Relation,
    sel: np.ndarray | None,
    composite_sel: np.ndarray,
    weights_sel: np.ndarray,
    alive: np.ndarray,
    composite_alive: np.ndarray,
    total_cells: int,
) -> np.ndarray:
    """One aggregate's per-cell values over the flat composite code space."""
    if spec.func == "COUNT":
        return np.bincount(composite_sel, weights=weights_sel, minlength=total_cells)

    assert spec.expr is not None
    values = _argument_values(spec, relation, sel)
    if not np.issubdtype(values.dtype, np.number):
        raise TypeMismatchError(f"{spec.func} requires a numeric argument")

    if spec.func == "SUM":
        return np.bincount(
            composite_sel, weights=weights_sel * values, minlength=total_cells
        )
    if spec.func == "AVG":
        weighted_sums = np.bincount(
            composite_sel, weights=weights_sel * values, minlength=total_cells
        )
        weight_totals = np.bincount(
            composite_sel, weights=weights_sel, minlength=total_cells
        )
        averages = np.zeros(total_cells, dtype=np.float64)
        np.divide(weighted_sums, weight_totals, out=averages, where=weight_totals > 0.0)
        return averages

    assert spec.func in ("MIN", "MAX")
    segment_values = values if alive.all() else values[alive]
    result = np.zeros(total_cells, dtype=np.float64)
    if composite_alive.size == 0:
        return result
    order = np.argsort(composite_alive, kind="stable")
    sorted_codes = composite_alive[order]
    sorted_values = segment_values[order]
    starts = np.concatenate(
        [[0], np.flatnonzero(np.diff(sorted_codes)) + 1]
    ).astype(np.int64)
    ufunc = np.minimum if spec.func == "MIN" else np.maximum
    result[sorted_codes[starts]] = ufunc.reduceat(sorted_values, starts)
    return result


# --------------------------------------------------------------------- #
# Morsel-partial aggregation (multi-process execution)
# --------------------------------------------------------------------- #

#: Sentinel for "no row of this cell seen yet" in first-occurrence merges.
NO_ROW = np.iinfo(np.int64).max


def encoded_group_domain(
    relation: Relation, group_keys: Sequence[str]
) -> tuple[tuple[int, ...], int] | None:
    """Vocab cross-product domain for ``group_keys``, or ``None``.

    Morsel-partitioned aggregation needs group ids that mean the same key
    values in *every* morsel.  Dense dictionary codes cannot provide that
    (each morsel would densify over its own present values), but the
    first-class storage encodings can: every morsel slices the same vocab,
    so ``vocab-index`` cross-product cells are globally consistent — and
    because each vocab is sorted, ascending cell id is ascending key order,
    exactly the order the dense kernels emit.  Returns ``(sizes, total)``
    per key, or ``None`` when any key lacks a storage encoding (numeric or
    raw-constructed keys fall back to in-process dense execution).
    """
    sizes: list[int] = []
    total = 1
    for key in group_keys:
        entry = relation.encoding(key)
        if entry is None:
            return None
        sizes.append(int(entry[0].size))
        total *= sizes[-1]
    return tuple(sizes), total


def encoded_group_codes(
    relation: Relation, group_keys: Sequence[str], domain_sizes: Sequence[int]
) -> np.ndarray:
    """Per-row cell ids over the full vocab cross-product domain (int64).

    The morsel-consistent sibling of
    :func:`~repro.relational.groupby.group_codes`: no densification, so
    unreferenced vocab entries simply produce empty cells.
    """
    n = relation.num_rows
    combined = np.zeros(n, dtype=np.int64)
    for key, size in zip(group_keys, domain_sizes):
        entry = relation.encoding(key)
        assert entry is not None and entry[0].size == size
        combined = combined * size + entry[1]
    return combined


def grouped_aggregate_partial(
    relation: Relation,
    group_keys: Sequence[str],
    specs: Sequence[AggregateSpec],
    domain_sizes: Sequence[int],
    total_cells: int,
    weights: np.ndarray | None,
    selection: np.ndarray | None,
    row_offset: int,
) -> dict:
    """One morsel's mergeable partial aggregates over the full cell domain.

    ``relation`` is the morsel slice, ``row_offset`` its first row's global
    index.  The partial carries, per cell: the first *unfiltered* global
    row (``NO_ROW`` where unoccupied, min-merged across morsels so the
    representative row matches single-pass execution), selected-row counts,
    positively-weighted-row counts (weighted plans), and per-spec
    accumulators — plain sums for COUNT/SUM/AVG (bincount output, merged by
    addition in morsel order) and ``(value, has)`` pairs for MIN/MAX.
    Every reduction is the same kernel :func:`grouped_aggregate` runs, just
    over cell ids instead of dense codes, which is what makes the merged
    result independent of how morsels are scheduled.
    """
    n = relation.num_rows
    cell_codes = encoded_group_codes(relation, group_keys, domain_sizes)

    first = np.full(total_cells, NO_ROW, dtype=np.int64)
    if n:
        # Reverse-order fancy assignment: the last write per cell is its
        # lowest row index (see groupby._first_occurrences).
        first[cell_codes[::-1]] = np.arange(
            row_offset + n - 1, row_offset - 1, -1, dtype=np.int64
        )

    sel: np.ndarray | None = None
    codes_sel = cell_codes
    weights_sel = weights
    if selection is not None:
        sel = np.flatnonzero(selection)
        codes_sel = cell_codes[sel]
        if weights is not None:
            weights_sel = weights[sel]

    partial: dict = {
        "first": first,
        "counts": np.bincount(codes_sel, minlength=total_cells),
    }
    alive: np.ndarray | None = None
    if weights_sel is not None:
        alive = weights_sel > 0.0
        partial["alive"] = np.bincount(
            codes_sel if alive.all() else codes_sel[alive], minlength=total_cells
        )
    partial["specs"] = [
        _partial_aggregate_column(
            spec, relation, codes_sel, total_cells, weights_sel, alive, sel
        )
        for spec in specs
    ]
    return partial


def _partial_aggregate_column(
    spec: AggregateSpec,
    relation: Relation,
    codes: np.ndarray,
    total_cells: int,
    weights: np.ndarray | None,
    alive: np.ndarray | None,
    sel: np.ndarray | None,
) -> dict | None:
    """One spec's mergeable per-cell accumulators for one morsel."""
    if spec.func == "COUNT":
        if weights is None:
            return None  # merged "counts" already carries it
        return {"wcount": np.bincount(codes, weights=weights, minlength=total_cells)}

    assert spec.expr is not None
    values = _argument_values(spec, relation, sel)
    if not np.issubdtype(values.dtype, np.number):
        raise TypeMismatchError(f"{spec.func} requires a numeric argument")

    if spec.func == "SUM":
        if weights is None:
            if np.issubdtype(values.dtype, np.integer):
                sums = np.zeros(total_cells, dtype=np.int64)
                np.add.at(sums, codes, values)
            else:
                sums = np.bincount(codes, weights=values, minlength=total_cells)
        else:
            sums = np.bincount(codes, weights=weights * values, minlength=total_cells)
        return {"sum": sums}
    if spec.func == "AVG":
        if weights is None:
            return {
                "sum": np.bincount(
                    codes, weights=values.astype(np.float64), minlength=total_cells
                )
            }
        return {
            "wsum": np.bincount(codes, weights=weights * values, minlength=total_cells),
            "wtot": np.bincount(codes, weights=weights, minlength=total_cells),
        }

    assert spec.func in ("MIN", "MAX")
    if alive is not None and not alive.all():
        segment_codes = codes[alive]
        segment_values = values[alive]
    else:
        segment_codes = codes
        segment_values = values
    value = np.zeros(total_cells, dtype=segment_values.dtype)
    has = np.zeros(total_cells, dtype=bool)
    if segment_codes.size:
        order = np.argsort(segment_codes, kind="stable")
        sorted_codes = segment_codes[order]
        sorted_values = segment_values[order]
        starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(sorted_codes)) + 1]
        ).astype(np.int64)
        ufunc = np.minimum if spec.func == "MIN" else np.maximum
        cells = sorted_codes[starts]
        value[cells] = ufunc.reduceat(sorted_values, starts)
        has[cells] = True
    return {"value": value, "has": has}


def merge_grouped_partials(
    partials: Sequence[dict],
    specs: Sequence[AggregateSpec],
    weighted: bool,
) -> dict:
    """Merge morsel partials in morsel-index order.

    Additive accumulators merge by sequential ``+`` in morsel order — a
    fixed float summation order, so the result depends only on the morsel
    decomposition, never on which worker computed which morsel.  MIN/MAX
    merge via masked min/max (order-independent); first-occurrence rows
    min-merge.
    """
    merged: dict = {
        "first": partials[0]["first"].copy(),
        "counts": partials[0]["counts"].copy(),
    }
    for partial in partials[1:]:
        np.minimum(merged["first"], partial["first"], out=merged["first"])
        merged["counts"] = merged["counts"] + partial["counts"]
    if weighted:
        merged["alive"] = partials[0]["alive"].copy()
        for partial in partials[1:]:
            merged["alive"] = merged["alive"] + partial["alive"]

    merged_specs: list[dict | None] = []
    for index, spec in enumerate(specs):
        parts = [partial["specs"][index] for partial in partials]
        if parts[0] is None:  # unweighted COUNT rides on "counts"
            merged_specs.append(None)
            continue
        if spec.func in ("MIN", "MAX"):
            value = parts[0]["value"].copy()
            has = parts[0]["has"].copy()
            ufunc = np.minimum if spec.func == "MIN" else np.maximum
            for part in parts[1:]:
                other_value, other_has = part["value"], part["has"]
                both = has & other_has
                value[both] = ufunc(value[both], other_value[both])
                only_other = other_has & ~has
                value[only_other] = other_value[only_other]
                has |= other_has
            merged_specs.append({"value": value, "has": has})
            continue
        item = {name: array.copy() for name, array in parts[0].items()}
        for part in parts[1:]:
            for name in item:
                item[name] = item[name] + part[name]
        merged_specs.append(item)
    merged["specs"] = merged_specs
    return merged


def finalize_grouped_partials(
    merged: dict,
    relation: Relation,
    group_keys: Sequence[str],
    key_columns: Sequence[str],
    specs: Sequence[AggregateSpec],
    out_schema: Schema,
    weighted: bool,
) -> Relation:
    """Assemble the final grouped result from merged morsel partials.

    Kept-cell selection mirrors :func:`grouped_aggregate` exactly: grouped
    queries keep cells with a selected row (weighted: a positively weighted
    selected row); the ungrouped single cell always exists unless weighted
    with zero alive mass.  Ascending cell id is ascending key order, so
    output rows land in the same order as dense execution.
    """
    counts = merged["counts"]
    if group_keys:
        kept = (merged["alive"] > 0) if weighted else (counts > 0)
    else:
        kept = (
            (merged["alive"] > 0) if weighted else np.ones(counts.shape[0], dtype=bool)
        )
    representatives = merged["first"][kept]

    columns: list[np.ndarray] = [
        relation.column(name)[representatives] for name in key_columns
    ]
    for spec, item in zip(specs, merged["specs"]):
        columns.append(_finalize_spec(spec, item, counts, kept, weighted))
    return Relation.from_groups(out_schema, columns)


def _finalize_spec(
    spec: AggregateSpec,
    item: dict | None,
    counts: np.ndarray,
    kept: np.ndarray,
    weighted: bool,
) -> np.ndarray:
    if spec.func == "COUNT":
        if not weighted:
            return counts[kept]
        assert item is not None
        return item["wcount"][kept]
    if not weighted and np.any(counts[kept] == 0):
        raise SchemaError(f"aggregate {spec.to_sql()} over zero rows")
    assert item is not None
    if spec.func == "SUM":
        return item["sum"][kept]
    if spec.func == "AVG":
        if not weighted:
            return item["sum"][kept] / counts[kept]
        if np.any(item["wtot"][kept] <= 0.0):
            raise SchemaError(f"AVG over zero total weight in {spec.to_sql()}")
        return item["wsum"][kept] / item["wtot"][kept]
    assert spec.func in ("MIN", "MAX")
    return item["value"][kept]


_PARTIAL_MERGE_FUNCS = {"sum": "SUM", "min": "MIN", "max": "MAX"}


def merge_partial_aggregates(
    partials: Sequence[Relation],
    group_keys: Sequence[str],
    merge_ops: Sequence[tuple[str, str]],
) -> Relation:
    """Merge shard-level partial-aggregate *relations* into one.

    The cross-shard counterpart of :func:`merge_grouped_partials`: the same
    COUNT/SUM accumulate + MIN/MAX extremum algebra, but operating on whole
    relations that crossed the wire rather than in-process accumulator
    dicts.  ``partials`` share one schema (group keys first, then partial
    aggregate columns); :meth:`Relation.concat` unions the key vocabularies
    (searchsorted remap), and one unweighted :func:`grouped_aggregate` pass
    re-reduces with SUM/MIN/MAX over the partial columns per ``merge_ops``
    (``[(column, "sum" | "min" | "max"), ...]``).

    Summation order is shard-index order by construction (concat preserves
    it and the re-reduce accumulates in row order), so float totals are
    deterministic for a fixed shard decomposition.  Unweighted integer SUM
    stays exact int64, so COUNT merges are always exact.

    Empty ``concat`` (every shard had zero selected rows) returns the empty
    partial relation unchanged — the caller owns zero-row semantics (raise
    vs COUNT-0 row) because only the *global* row count decides them.
    """
    combined = partials[0]
    for partial in partials[1:]:
        combined = combined.concat(partial)
    if combined.num_rows == 0:
        return combined
    schema = combined.schema
    specs = tuple(
        AggregateSpec(_PARTIAL_MERGE_FUNCS[op], ColumnRef(column), column)
        for column, op in merge_ops
    )
    return grouped_aggregate(
        combined,
        tuple(group_keys),
        tuple(group_keys),
        specs,
        schema,
    )


def composite_aggregate_partial(
    relation: Relation,
    group_keys: Sequence[str],
    specs: Sequence[AggregateSpec],
    local_rep_ids: np.ndarray,
    rep_count: int,
    domain_sizes: Sequence[int],
    domain_total: int,
    weights: np.ndarray,
    selection: np.ndarray | None,
    row_offset: int,
) -> dict:
    """One repetition-shard's slice of a composite OPEN aggregation.

    ``relation`` holds the shard's contiguous batch rows, ``local_rep_ids``
    their repetition index *within the shard* (0-based over ``rep_count``
    repetitions).  Because shards split on repetition boundaries, every
    ``(rep, group)`` cell lives wholly inside one shard, and each cell's
    reduction runs over exactly the rows — in exactly the order — the
    unsharded :func:`grouped_aggregate_composite` reduces, so stitching the
    shard blocks back together is bit-identical to the one-pass result.
    """
    cell_codes = encoded_group_codes(relation, group_keys, domain_sizes)
    n = relation.num_rows

    first = np.full(domain_total, NO_ROW, dtype=np.int64)
    if n:
        first[cell_codes[::-1]] = np.arange(
            row_offset + n - 1, row_offset - 1, -1, dtype=np.int64
        )

    composite = local_rep_ids * domain_total + cell_codes
    total_cells = rep_count * domain_total

    if selection is not None:
        sel = np.flatnonzero(np.asarray(selection, dtype=bool))
        composite_sel = composite[sel]
        weights_sel = weights[sel]
    else:
        sel = None
        composite_sel = composite
        weights_sel = weights

    alive = weights_sel > 0.0
    composite_alive = composite_sel if alive.all() else composite_sel[alive]
    present = (
        np.bincount(composite_alive, minlength=total_cells) > 0
    ).reshape(rep_count, domain_total)

    values = [
        _composite_aggregate_matrix(
            spec,
            relation,
            sel,
            composite_sel,
            weights_sel,
            alive,
            composite_alive,
            total_cells,
        ).reshape(rep_count, domain_total)
        for spec in specs
    ]
    return {"first": first, "present": present, "values": values}


def merge_composite_partials(
    partials: Sequence[dict],
    repetitions: int,
    domain_total: int,
) -> CompositeAggregates:
    """Stitch repetition-shard partials into one :class:`CompositeAggregates`.

    Shards are ordered by repetition range, so present/value blocks simply
    stack; first-occurrence representatives min-merge (cells never occupied
    keep the ``NO_ROW`` sentinel — such cells are never kept, so the
    sentinel is never dereferenced).
    """
    first = partials[0]["first"].copy()
    for partial in partials[1:]:
        np.minimum(first, partial["first"], out=first)
    present = np.vstack([partial["present"] for partial in partials])
    assert present.shape == (repetitions, domain_total)
    values = tuple(
        np.vstack([partial["values"][index] for partial in partials])
        for index in range(len(partials[0]["values"]))
    )
    return CompositeAggregates(
        num_groups=domain_total,
        repetitions=repetitions,
        first_indices=first,
        present=present,
        values=values,
    )


class WelfordMoments:
    """Vectorized running mean/variance over per-repetition value rows.

    The adaptive OPEN path feeds one ``(domain_total,)`` row per
    *participating* repetition (a repetition's per-cell aggregate values);
    the update is Welford's numerically stable recurrence applied to every
    cell at once.  ``mean``/``variance`` are only meaningful for cells the
    caller knows are present in every fed repetition — absent cells
    accumulate the kernels' zero fill and are filtered by the caller.
    """

    __slots__ = ("count", "mean", "_m2")

    def __init__(self, cells: int):
        self.count = 0
        self.mean = np.zeros(cells, dtype=np.float64)
        self._m2 = np.zeros(cells, dtype=np.float64)

    def update(self, rows: np.ndarray) -> None:
        """Fold ``rows`` (``(r, cells)`` or ``(cells,)``) in row order."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        for row in rows:
            self.count += 1
            delta = row - self.mean
            self.mean += delta / self.count
            self._m2 += delta * (row - self.mean)

    def variance(self) -> np.ndarray:
        """Per-cell sample variance (ddof=1); ``inf`` below two updates."""
        if self.count < 2:
            return np.full(self.mean.shape, np.inf)
        return self._m2 / (self.count - 1)

    def std(self) -> np.ndarray:
        return np.sqrt(self.variance())

    def ci_halfwidth(self, z: float) -> np.ndarray:
        """``z * std / sqrt(count)`` — the CI half-width of the mean."""
        if self.count < 2:
            return np.full(self.mean.shape, np.inf)
        return z * np.sqrt(self.variance() / self.count)
