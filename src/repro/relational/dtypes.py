"""Column type system for the relational substrate.

Four logical types cover everything the paper's workloads need:

- ``INT`` — 64-bit integers (flight times, counts, whole-number attributes).
- ``FLOAT`` — 64-bit floats (generator output, weights, continuous data).
- ``TEXT`` — strings, stored as numpy object arrays (categorical attributes
  such as the flights ``carrier``).
- ``BOOL`` — booleans.

Each logical type knows its numpy storage dtype and how to coerce raw
Python values or arrays into that storage form.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from repro.errors import TypeMismatchError

#: Storage dtype of dictionary codes.  int32 halves the code-array memory
#: of int64 and comfortably indexes any realistic vocabulary (2**31 distinct
#: strings); arithmetic that combines codes (multi-key group ids) upcasts to
#: int64 automatically.
CODES_DTYPE = np.dtype(np.int32)


def object_array(values: Any) -> np.ndarray:
    """A 1-D object array holding ``values`` untouched.

    ``np.asarray`` on a mixed/str sequence would coerce (ints to ``<U``
    strings) or reject ragged values; filling a preallocated object array
    keeps every element exactly as given while staying gatherable
    (``arr[codes]`` is a C loop).  The canonical spelling for domain /
    category / representative lookups.
    """
    materialized = list(values)
    array = np.empty(len(materialized), dtype=object)
    array[:] = materialized
    return array


class DType(enum.Enum):
    """Logical column type."""

    INT = "INT"
    FLOAT = "FLOAT"
    TEXT = "TEXT"
    BOOL = "BOOL"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used to store columns of this logical type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        """Whether the type supports arithmetic and range predicates."""
        return self in (DType.INT, DType.FLOAT)

    @classmethod
    def parse(cls, name: str) -> "DType":
        """Parse a SQL type name (case-insensitive, common aliases allowed)."""
        normalized = name.strip().upper()
        alias = _TYPE_ALIASES.get(normalized)
        if alias is None:
            raise TypeMismatchError(f"unknown column type: {name!r}")
        return alias

    @classmethod
    def infer(cls, values: Any) -> "DType":
        """Infer the narrowest logical type that holds every value.

        Booleans are checked before integers because ``bool`` is a subclass
        of ``int`` in Python.
        """
        arr = np.asarray(values)
        if arr.dtype == np.bool_:
            return cls.BOOL
        if np.issubdtype(arr.dtype, np.integer):
            return cls.INT
        if np.issubdtype(arr.dtype, np.floating):
            return cls.FLOAT
        if arr.dtype == object:
            flat = [v for v in arr.ravel()]
            if flat and all(isinstance(v, bool) for v in flat):
                return cls.BOOL
            if flat and all(isinstance(v, (int, np.integer)) and not isinstance(v, bool) for v in flat):
                return cls.INT
            if flat and all(
                isinstance(v, (int, float, np.integer, np.floating)) and not isinstance(v, bool)
                for v in flat
            ):
                return cls.FLOAT
        return cls.TEXT

    def coerce_array(self, values: Any) -> np.ndarray:
        """Coerce ``values`` into a 1-D numpy array of this type's storage dtype.

        Raises :class:`TypeMismatchError` when a value cannot be represented
        (for example a string in an ``INT`` column, or a non-integral float).
        """
        arr = np.asarray(values)
        if arr.ndim != 1:
            arr = arr.ravel()
        try:
            if self is DType.TEXT:
                out = np.empty(arr.shape[0], dtype=object)
                out[:] = [str(v) for v in arr]
                return out
            if self is DType.INT:
                if np.issubdtype(arr.dtype, np.integer):
                    # Already integral: no float64 round-trip, which would
                    # silently truncate magnitudes beyond 2**53.
                    return arr.astype(np.int64)
                as_float = arr.astype(np.float64)
                as_int = as_float.astype(np.int64)
                if not np.all(as_float == as_int):
                    raise TypeMismatchError("non-integral value in INT column")
                return as_int
            if self is DType.FLOAT:
                return arr.astype(np.float64)
            return arr.astype(np.bool_)
        except (ValueError, TypeError) as exc:
            raise TypeMismatchError(f"cannot coerce values to {self.value}: {exc}") from exc

    def coerce_scalar(self, value: Any) -> Any:
        """Coerce a single Python value to this type (Python-native result)."""
        if self is DType.TEXT:
            return str(value)
        if self is DType.BOOL:
            return bool(value)
        if self is DType.INT:
            as_float = float(value)
            as_int = int(as_float)
            if as_float != as_int:
                raise TypeMismatchError(f"non-integral value for INT column: {value!r}")
            return as_int
        return float(value)


_NUMPY_DTYPES: dict[DType, np.dtype] = {
    DType.INT: np.dtype(np.int64),
    DType.FLOAT: np.dtype(np.float64),
    DType.TEXT: np.dtype(object),
    DType.BOOL: np.dtype(np.bool_),
}

_TYPE_ALIASES: dict[str, DType] = {
    "INT": DType.INT,
    "INTEGER": DType.INT,
    "BIGINT": DType.INT,
    "FLOAT": DType.FLOAT,
    "REAL": DType.FLOAT,
    "DOUBLE": DType.FLOAT,
    "NUMERIC": DType.FLOAT,
    "TEXT": DType.TEXT,
    "VARCHAR": DType.TEXT,
    "STRING": DType.TEXT,
    "CHAR": DType.TEXT,
    "BOOL": DType.BOOL,
    "BOOLEAN": DType.BOOL,
}


def common_numeric_type(left: DType, right: DType) -> DType:
    """The result type of arithmetic between two numeric types."""
    if not (left.is_numeric and right.is_numeric):
        raise TypeMismatchError(f"arithmetic requires numeric types, got {left.value} and {right.value}")
    if left is DType.FLOAT or right is DType.FLOAT:
        return DType.FLOAT
    return DType.INT
