"""Boolean-valued expressions: comparisons, IN, BETWEEN, AND/OR/NOT.

Predicates are ordinary :class:`~repro.relational.expressions.Expr` nodes
whose output dtype is BOOL, so they compose freely with the scalar
expression machinery and with ``Relation.filter``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import TypeMismatchError
from repro.relational.dtypes import DType
from repro.relational.expressions import Expr
from repro.relational.relation import Relation
from repro.relational.schema import Schema

_COMPARISON_OPS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_ORDER_OPS = frozenset(["<", "<=", ">", ">="])


class Comparison(Expr):
    """``left <op> right`` producing a boolean mask.

    Equality works for every type; ordering comparisons require both sides
    numeric or both sides TEXT (lexicographic).
    """

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _COMPARISON_OPS:
            raise TypeMismatchError(f"unknown comparison operator: {op!r}")
        self.op = "!=" if op == "<>" else op
        self.left = left
        self.right = right

    def evaluate(self, relation: Relation) -> np.ndarray:
        left = self.left.evaluate(relation)
        right = self.right.evaluate(relation)
        left_is_text = left.dtype == object
        right_is_text = right.dtype == object
        if left_is_text != right_is_text:
            raise TypeMismatchError(
                f"cannot compare TEXT with non-TEXT in {self.to_sql()}"
            )
        if left_is_text:
            left = np.asarray([str(v) for v in left])
            right = np.asarray([str(v) for v in right])
        return _COMPARISON_OPS[self.op](left, right)

    def output_dtype(self, schema: Schema) -> DType:
        left = self.left.output_dtype(schema)
        right = self.right.output_dtype(schema)
        if (left is DType.TEXT) != (right is DType.TEXT):
            raise TypeMismatchError(f"cannot compare TEXT with non-TEXT in {self.to_sql()}")
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


class InList(Expr):
    """``expr IN (v1, v2, ...)`` (or NOT IN)."""

    def __init__(self, operand: Expr, values: Sequence[Any], negated: bool = False):
        self.operand = operand
        self.values = tuple(values)
        self.negated = negated

    def evaluate(self, relation: Relation) -> np.ndarray:
        column = self.operand.evaluate(relation)
        if column.dtype == object:
            wanted = {str(v) for v in self.values}
            mask = np.asarray([str(v) in wanted for v in column], dtype=bool)
        else:
            mask = np.isin(column, np.asarray(self.values))
        return ~mask if self.negated else mask

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        rendered = ", ".join(repr(v) for v in self.values)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {keyword} ({rendered}))"


class Between(Expr):
    """``expr BETWEEN low AND high`` — inclusive on both ends, per SQL."""

    def __init__(self, operand: Expr, low: Expr, high: Expr, negated: bool = False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def evaluate(self, relation: Relation) -> np.ndarray:
        values = self.operand.evaluate(relation)
        low = self.low.evaluate(relation)
        high = self.high.evaluate(relation)
        mask = (values >= low) & (values <= high)
        return ~mask if self.negated else mask

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return (
            self.operand.referenced_columns()
            | self.low.referenced_columns()
            | self.high.referenced_columns()
        )

    def to_sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.to_sql()} {keyword} {self.low.to_sql()} AND {self.high.to_sql()})"


class And(Expr):
    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, relation: Relation) -> np.ndarray:
        return self.left.evaluate(relation) & self.right.evaluate(relation)

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} AND {self.right.to_sql()})"


class Or(Expr):
    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, relation: Relation) -> np.ndarray:
        return self.left.evaluate(relation) | self.right.evaluate(relation)

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} OR {self.right.to_sql()})"


class Not(Expr):
    def __init__(self, operand: Expr):
        self.operand = operand

    def evaluate(self, relation: Relation) -> np.ndarray:
        return ~self.operand.evaluate(relation)

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"(NOT {self.operand.to_sql()})"


class TruePredicate(Expr):
    """A predicate accepting every row (the implicit WHERE of no WHERE)."""

    def evaluate(self, relation: Relation) -> np.ndarray:
        return np.ones(relation.num_rows, dtype=bool)

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()

    def to_sql(self) -> str:
        return "TRUE"


def conjoin(predicates: Sequence[Expr]) -> Expr:
    """AND together a possibly-empty sequence of predicates."""
    remaining = [p for p in predicates if not isinstance(p, TruePredicate)]
    if not remaining:
        return TruePredicate()
    result = remaining[0]
    for pred in remaining[1:]:
        result = And(result, pred)
    return result
