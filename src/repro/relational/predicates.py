"""Boolean-valued expressions: comparisons, IN, BETWEEN, LIKE, AND/OR/NOT.

Predicates are ordinary :class:`~repro.relational.expressions.Expr` nodes
whose output dtype is BOOL, so they compose freely with the scalar
expression machinery and with ``Relation.filter``.

Code-space evaluation
---------------------
When a predicate compares a dictionary-encoded TEXT column (see
``Relation.encoding``) against constants, it is evaluated in *code space*:
the operator runs once per distinct vocabulary entry (k values) and the
resulting k-bit mask broadcasts through the int32 codes with a single
gather — no per-row string comparison ever happens.  Because the vocab is
sorted, this is exact for ordering operators too (lexicographic).  TEXT
columns without a stored encoding fall back to one vectorized ``str`` cast
plus a numpy comparison over the cast arrays.
"""

from __future__ import annotations

import re
from typing import Any, Sequence

import numpy as np

from repro.errors import TypeMismatchError
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef, Expr, Literal
from repro.relational.relation import Relation
from repro.relational.schema import Schema

_COMPARISON_OPS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_ORDER_OPS = frozenset(["<", "<=", ">", ">="])

# ``literal <op> column`` rewritten as ``column <flipped op> literal``.
_FLIPPED_OPS = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _text_cast(array: np.ndarray) -> np.ndarray:
    """One vectorized cast of an object array to a numpy unicode array."""
    return array.astype(str)


def _encoded_column(
    expr: Expr, relation: Relation
) -> tuple[np.ndarray, np.ndarray] | None:
    """The ``(vocab, codes)`` encoding behind a plain column reference."""
    if isinstance(expr, ColumnRef):
        return relation.encoding(expr.name)
    return None


class Comparison(Expr):
    """``left <op> right`` producing a boolean mask.

    Equality works for every type; ordering comparisons require both sides
    numeric or both sides TEXT (lexicographic).
    """

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _COMPARISON_OPS:
            raise TypeMismatchError(f"unknown comparison operator: {op!r}")
        self.op = "!=" if op == "<>" else op
        self.left = left
        self.right = right

    def evaluate(self, relation: Relation) -> np.ndarray:
        mask = self._evaluate_codespace(relation)
        if mask is not None:
            return mask
        left = self.left.evaluate(relation)
        right = self.right.evaluate(relation)
        left_is_text = left.dtype == object
        right_is_text = right.dtype == object
        if left_is_text != right_is_text:
            raise TypeMismatchError(
                f"cannot compare TEXT with non-TEXT in {self.to_sql()}"
            )
        if left_is_text:
            left = _text_cast(left)
            right = _text_cast(right)
        return _COMPARISON_OPS[self.op](left, right)

    def _evaluate_codespace(self, relation: Relation) -> np.ndarray | None:
        """Column-vs-constant over an encoded column: O(k) + one gather."""
        op = self.op
        if isinstance(self.left, ColumnRef) and isinstance(self.right, Literal):
            column, literal = self.left, self.right
        elif isinstance(self.right, ColumnRef) and isinstance(self.left, Literal):
            column, literal = self.right, self.left
            op = _FLIPPED_OPS[op]
        else:
            return None
        encoding = relation.encoding(column.name)
        if encoding is None:
            return None
        if not isinstance(literal.value, str):
            raise TypeMismatchError(
                f"cannot compare TEXT with non-TEXT in {self.to_sql()}"
            )
        vocab, codes = encoding
        vocab_mask = np.asarray(_COMPARISON_OPS[op](vocab, literal.value), dtype=bool)
        return vocab_mask[codes]

    def output_dtype(self, schema: Schema) -> DType:
        left = self.left.output_dtype(schema)
        right = self.right.output_dtype(schema)
        if (left is DType.TEXT) != (right is DType.TEXT):
            raise TypeMismatchError(f"cannot compare TEXT with non-TEXT in {self.to_sql()}")
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


class InList(Expr):
    """``expr IN (v1, v2, ...)`` (or NOT IN)."""

    def __init__(self, operand: Expr, values: Sequence[Any], negated: bool = False):
        self.operand = operand
        self.values = tuple(values)
        self.negated = negated

    def evaluate(self, relation: Relation) -> np.ndarray:
        encoding = _encoded_column(self.operand, relation)
        if encoding is not None:
            vocab, codes = encoding
            wanted = {str(v) for v in self.values}
            vocab_mask = np.fromiter(
                (v in wanted for v in vocab), dtype=bool, count=vocab.size
            )
            mask = vocab_mask[codes]
        else:
            column = self.operand.evaluate(relation)
            if column.dtype == object:
                wanted_arr = np.asarray([str(v) for v in self.values], dtype=str)
                mask = np.isin(_text_cast(column), wanted_arr)
            else:
                values = np.asarray(self.values)
                if values.size and not (
                    np.issubdtype(values.dtype, np.number)
                    or values.dtype == np.bool_
                ):
                    # np.isin would otherwise compare through a silent
                    # upcast (mixed lists become strings under numpy 2),
                    # matching nothing instead of failing loudly.
                    raise TypeMismatchError(
                        f"IN list over a non-TEXT operand must be all-numeric "
                        f"in {self.to_sql()}"
                    )
                mask = np.isin(column, values)
        return ~mask if self.negated else mask

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        rendered = ", ".join(repr(v) for v in self.values)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {keyword} ({rendered}))"


class Between(Expr):
    """``expr BETWEEN low AND high`` — inclusive on both ends, per SQL."""

    def __init__(self, operand: Expr, low: Expr, high: Expr, negated: bool = False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def evaluate(self, relation: Relation) -> np.ndarray:
        mask = self._evaluate_codespace(relation)
        if mask is None:
            values = self.operand.evaluate(relation)
            low = self.low.evaluate(relation)
            high = self.high.evaluate(relation)
            if values.dtype == object and low.dtype == object and high.dtype == object:
                values = _text_cast(values)
                low = _text_cast(low)
                high = _text_cast(high)
            mask = (values >= low) & (values <= high)
        return ~mask if self.negated else mask

    def _evaluate_codespace(self, relation: Relation) -> np.ndarray | None:
        if not (isinstance(self.low, Literal) and isinstance(self.high, Literal)):
            return None
        if not (isinstance(self.low.value, str) and isinstance(self.high.value, str)):
            return None
        encoding = _encoded_column(self.operand, relation)
        if encoding is None:
            return None
        vocab, codes = encoding
        vocab_mask = np.asarray(
            (vocab >= self.low.value) & (vocab <= self.high.value), dtype=bool
        )
        return vocab_mask[codes]

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return (
            self.operand.referenced_columns()
            | self.low.referenced_columns()
            | self.high.referenced_columns()
        )

    def to_sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.to_sql()} {keyword} {self.low.to_sql()} AND {self.high.to_sql()})"


class Like(Expr):
    """``expr LIKE 'pattern'`` — SQL wildcards ``%`` (any run) and ``_`` (one char).

    The pattern compiles to a regex once at construction.  Over an encoded
    column the regex runs once per distinct vocab entry and the result
    broadcasts through the codes; the fallback matches the column's
    memoized dictionary uniques, so even un-encoded columns pay k regex
    calls, not n.
    """

    def __init__(self, operand: Expr, pattern: str, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self._regex = re.compile(_like_to_regex(pattern), re.DOTALL)

    def matches(self, value) -> bool:
        """Whether one value matches the pattern (negation NOT applied)."""
        return self._regex.fullmatch(str(value)) is not None

    def evaluate(self, relation: Relation) -> np.ndarray:
        match = self._regex.fullmatch
        encoding = _encoded_column(self.operand, relation)
        if encoding is not None:
            vocab, codes = encoding
        elif isinstance(self.operand, ColumnRef):
            if relation.schema.dtype(self.operand.name) is not DType.TEXT:
                raise TypeMismatchError(f"LIKE requires a TEXT operand in {self.to_sql()}")
            vocab, codes = relation.dictionary(self.operand.name)
        else:
            column = self.operand.evaluate(relation)
            if column.dtype != object:
                raise TypeMismatchError(f"LIKE requires a TEXT operand in {self.to_sql()}")
            mask = np.fromiter(
                (match(str(v)) is not None for v in column),
                dtype=bool,
                count=column.shape[0],
            )
            return ~mask if self.negated else mask
        vocab_mask = np.fromiter(
            (match(str(v)) is not None for v in vocab), dtype=bool, count=vocab.size
        )
        mask = vocab_mask[codes]
        return ~mask if self.negated else mask

    def output_dtype(self, schema: Schema) -> DType:
        if self.operand.output_dtype(schema) is not DType.TEXT:
            raise TypeMismatchError(f"LIKE requires a TEXT operand in {self.to_sql()}")
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        escaped = self.pattern.replace("'", "''")
        return f"({self.operand.to_sql()} {keyword} '{escaped}')"


def _like_to_regex(pattern: str) -> str:
    """Translate a SQL LIKE pattern into an anchored regex source."""
    pieces = []
    for char in pattern:
        if char == "%":
            pieces.append(".*")
        elif char == "_":
            pieces.append(".")
        else:
            pieces.append(re.escape(char))
    return "".join(pieces)


class And(Expr):
    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, relation: Relation) -> np.ndarray:
        return self.left.evaluate(relation) & self.right.evaluate(relation)

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} AND {self.right.to_sql()})"


class Or(Expr):
    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def evaluate(self, relation: Relation) -> np.ndarray:
        return self.left.evaluate(relation) | self.right.evaluate(relation)

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} OR {self.right.to_sql()})"


class Not(Expr):
    def __init__(self, operand: Expr):
        self.operand = operand

    def evaluate(self, relation: Relation) -> np.ndarray:
        return ~self.operand.evaluate(relation)

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return self.operand.referenced_columns()

    def to_sql(self) -> str:
        return f"(NOT {self.operand.to_sql()})"


class TruePredicate(Expr):
    """A predicate accepting every row (the implicit WHERE of no WHERE)."""

    def evaluate(self, relation: Relation) -> np.ndarray:
        return np.ones(relation.num_rows, dtype=bool)

    def output_dtype(self, schema: Schema) -> DType:
        return DType.BOOL

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()

    def to_sql(self) -> str:
        return "TRUE"


def conjoin(predicates: Sequence[Expr]) -> Expr:
    """AND together a possibly-empty sequence of predicates."""
    remaining = [p for p in predicates if not isinstance(p, TruePredicate)]
    if not remaining:
        return TruePredicate()
    result = remaining[0]
    for pred in remaining[1:]:
        result = And(result, pred)
    return result
