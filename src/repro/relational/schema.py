"""Relation schemas: ordered, named, typed columns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.relational.dtypes import DType


@dataclass(frozen=True)
class Field:
    """A single named, typed column."""

    name: str
    dtype: DType

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"field name must be a non-empty string, got {self.name!r}")

    def __repr__(self) -> str:
        return f"{self.name} {self.dtype.value}"


class Schema:
    """An ordered collection of :class:`Field` with unique names.

    Column-name lookup is case-sensitive; SQL identifiers are normalised
    before they reach this layer.
    """

    def __init__(self, fields: Iterable[Field]):
        self._fields: tuple[Field, ...] = tuple(fields)
        self._index: dict[str, int] = {}
        for position, field in enumerate(self._fields):
            if field.name in self._index:
                raise SchemaError(f"duplicate column name: {field.name!r}")
            self._index[field.name] = position

    @classmethod
    def of(cls, **columns: DType) -> "Schema":
        """Build a schema from keyword arguments: ``Schema.of(x=DType.FLOAT)``."""
        return cls(Field(name, dtype) for name, dtype in columns.items())

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(field.name for field in self._fields)

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join(repr(field) for field in self._fields)
        return f"Schema({inner})"

    def field(self, name: str) -> Field:
        """Look up a field by name, raising :class:`SchemaError` if absent."""
        position = self._index.get(name)
        if position is None:
            raise SchemaError(f"no such column: {name!r} (have {list(self.names)})")
        return self._fields[position]

    def dtype(self, name: str) -> DType:
        return self.field(name).dtype

    def position(self, name: str) -> int:
        self.field(name)
        return self._index[name]

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema containing ``names`` in the given order."""
        return Schema(self.field(name) for name in names)

    def concat(self, other: "Schema") -> "Schema":
        """A new schema with ``other``'s fields appended (names must stay unique)."""
        return Schema((*self._fields, *other._fields))

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """A new schema with columns renamed per ``mapping`` (missing keys kept)."""
        return Schema(
            Field(mapping.get(field.name, field.name), field.dtype) for field in self._fields
        )
