"""Shared-memory backing for relations: segments, descriptors, lifecycles.

The multi-process executor (``repro.core.workers``) needs to hand a
relation to worker processes without serializing row data.  This module
places the *storage form* of a relation — numeric column arrays plus the
``int32`` dictionary-code buffers of TEXT columns — into one
:class:`multiprocessing.shared_memory.SharedMemory` segment, and describes
the layout with a compact, picklable descriptor (segment name plus
per-column dtype/offset, plus each TEXT column's vocab).  A worker attaches
in O(1): it maps the segment and wraps ``np.ndarray`` views over the
buffer; the only per-attach materialisation is the ``vocab[codes]`` gather
that rebuilds TEXT object columns (shared ``str`` objects, one C loop).

Ownership and lifecycle
-----------------------
Segments are owned by the creating process.  :class:`SharedRelationHandle`
refcounts one segment: the owner unlinks it exactly once, when the last
reference is released.  :class:`SharedRelationStore` caches handles keyed
by the identity of the source arrays (relations are immutable), holds one
cache reference per entry, drops entries when the source relation is
garbage collected (weakref callbacks) or when the LRU capacity is hit, and
:meth:`SharedRelationStore.close_all` releases everything idempotently —
the hook ``Engine.shutdown`` uses to guarantee no ``/dev/shm`` leaks.
Attaching processes never unlink; they also attach *untracked* — on
Python ≤ 3.12 ``SharedMemory`` registers attachments with
``multiprocessing.resource_tracker``, which would double-unlink at worker
exit, and compensating with register-then-unregister corrupts the
tracker's name set when several attachers interleave (the tracker keys a
plain set, so ``+owner +w1 -w1 +w2 -w2 -owner`` dies on the last
unregister).  :func:`_attach_segment` keeps the registration from ever
reaching the tracker instead.
"""

from __future__ import annotations

import mmap
import threading
import uuid
import weakref
from collections import OrderedDict
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping, NamedTuple

import numpy as np

from repro.errors import MosaicError, SchemaError
from repro.relational.dtypes import CODES_DTYPE, DType
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema

#: Every segment this module creates carries this name prefix, so tests
#: can assert "no mosaic segments leaked" by listing ``/dev/shm``.
SEGMENT_PREFIX = "mosaic-shm-"

#: Column payloads start on 64-byte boundaries (cache-line aligned loads).
_ALIGNMENT = 64

#: Serializes the register-suppression window in :func:`_attach_segment`
#: (pre-3.13 interpreters only; workers are single-threaded, this guards
#: in-process attachers like tests).
_ATTACH_LOCK = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without resource-tracker registration.

    Attachers never own cleanup, but ``SharedMemory(name=...)`` on
    Python ≤ 3.12 registers the mapping with the resource tracker anyway.
    Unregistering afterwards is not enough: the tracker keeps a plain
    ``set`` of names, so interleaved register/unregister pairs from
    several attachers leave it unbalanced and the owner's final unlink
    then spams ``KeyError`` tracebacks at exit.  3.13+ exposes
    ``track=False``; earlier versions suppress the register call for the
    duration of the map.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track parameter
        pass
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class ColumnSlot(NamedTuple):
    """Where one column's storage array lives inside the segment.

    TEXT columns store their ``int32`` codes and carry the vocab here (a
    tuple of ``str``); other dtypes store the raw array and ``vocab`` is
    ``None``.  ``dtype`` is the numpy dtype string of the stored buffer.
    """

    name: str
    logical: str  # DType value ("INT", "FLOAT", "TEXT", "BOOL")
    dtype: str
    offset: int
    vocab: tuple[str, ...] | None


class ExtraSlot(NamedTuple):
    """A named side array stored alongside the relation (weights, rep ids)."""

    name: str
    dtype: str
    offset: int


class RelationDescriptor(NamedTuple):
    """Everything a worker needs to attach: no row data, plain tuples.

    ``path`` distinguishes the two segment kinds: ``None`` means a
    ``/dev/shm`` segment named ``segment``; a filesystem path means a
    durable columnar page file (``repro.storage.pages``) that attachers
    memory-map read-only — same slot layout, zero copies, no shared-memory
    segment at all.  File descriptors still carry a unique ``segment``
    string (``"file:<path>"``) so worker-side caches key them like any
    other segment.  The field defaults to ``None`` so descriptors pickled
    by older code unpickle unchanged.
    """

    segment: str
    num_rows: int
    columns: tuple[ColumnSlot, ...]
    extras: tuple[ExtraSlot, ...]
    path: str | None = None


class _FileSegment:
    """A read-only memory-mapped page file, duck-typed like ``SharedMemory``.

    Exposes ``buf``/``close()`` so :func:`attach_relation` and
    :class:`AttachedRelation` treat file-backed and shm-backed segments
    identically.  Unmapping while views still reference the buffer is the
    same BufferError situation as shm: the mapping then dies with the
    process (the kernel keeps the inode alive even if the file is
    unlinked, so deleting an old checkpoint never invalidates live views).
    """

    __slots__ = ("_mmap", "buf", "name")

    def __init__(self, path: str):
        with open(path, "rb") as handle:
            self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        self.buf = memoryview(self._mmap)
        self.name = f"file:{path}"

    def close(self) -> None:
        buf, self.buf = self.buf, None
        if buf is not None:
            buf.release()
        try:
            self._mmap.close()
        except BufferError:  # a view escaped; unmapped at process exit
            pass


class AttachedRelation:
    """A worker-side view of a shared relation (plus its extra arrays).

    ``relation`` columns are read-only numpy views over the mapped
    segment; ``extras`` maps side-array names to read-only views.  Keep
    this object alive while any of those arrays is in use; :meth:`close`
    drops the views and unmaps the segment (never unlinks).
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        relation: Relation,
        extras: dict[str, np.ndarray],
    ):
        self._shm = shm
        self.relation = relation
        self.extras = extras

    def close(self) -> None:
        self.relation = None  # type: ignore[assignment]
        self.extras = {}
        try:
            self._shm.close()
        except BufferError:  # a view escaped; the mapping dies with the process
            pass


class _LazyTextColumns(dict):
    """A relation's column mapping with TEXT object gathers deferred.

    Fragment execution reads TEXT columns through their ``(vocab, codes)``
    encodings — codespace predicates, encoded group codes — so an attached
    relation usually never needs the object arrays at all.  Only
    materialised entries live in the dict storage; looking up a pending
    column runs its ``vocab[codes]`` gather on demand (``__missing__``),
    so any raw-dict fast path sees real arrays or fails loudly, never a
    placeholder.  Enumerating the mapping materialises everything first.
    """

    def __init__(
        self,
        eager: dict[str, np.ndarray],
        pending: dict[str, tuple[np.ndarray, np.ndarray]],
    ):
        super().__init__(eager)
        self._pending = dict(pending)

    def __missing__(self, name: str) -> np.ndarray:
        vocab, codes = self._pending.pop(name)
        column = vocab[codes] if vocab.size else np.empty(len(codes), dtype=object)
        self[name] = column
        return column

    def _materialize_all(self) -> None:
        for name in list(self._pending):
            self[name]

    def __contains__(self, name) -> bool:
        return super().__contains__(name) or name in self._pending

    def __len__(self) -> int:
        return super().__len__() + len(self._pending)

    def __iter__(self):
        self._materialize_all()
        return super().__iter__()

    def keys(self):
        self._materialize_all()
        return super().keys()

    def values(self):
        self._materialize_all()
        return super().values()

    def items(self):
        self._materialize_all()
        return super().items()


def _storage_arrays(
    relation: Relation, extras: Mapping[str, np.ndarray] | None
) -> tuple[list[tuple[str, str, np.ndarray, tuple[str, ...] | None]], list[tuple[str, np.ndarray]]]:
    """The payload arrays to copy into a segment, in layout order."""
    payloads: list[tuple[str, str, np.ndarray, tuple[str, ...] | None]] = []
    for field in relation.schema:
        if field.dtype is DType.TEXT:
            entry = relation.encoding(field.name)
            if entry is None:
                # Raw-constructed TEXT column: fall back to the memoized
                # dense dictionary (order-preserving, same strings).
                entry = relation.dictionary(field.name)
            vocab, codes = entry
            payloads.append(
                (
                    field.name,
                    field.dtype.value,
                    np.ascontiguousarray(codes, dtype=CODES_DTYPE),
                    tuple(str(v) for v in vocab),
                )
            )
        else:
            payloads.append(
                (
                    field.name,
                    field.dtype.value,
                    np.ascontiguousarray(relation.column(field.name)),
                    None,
                )
            )
    extra_payloads = [
        (name, np.ascontiguousarray(array)) for name, array in (extras or {}).items()
    ]
    return payloads, extra_payloads


def share_relation(
    relation: Relation, extras: Mapping[str, np.ndarray] | None = None
) -> "SharedRelationHandle":
    """Copy ``relation``'s storage into a fresh shared segment.

    ``extras`` are side arrays shipped in the same segment (e.g. a weight
    vector, OPEN repetition ids); they must have ``relation.num_rows``
    elements.  Returns a handle holding one reference — release it to
    unlink the segment.
    """
    payloads, extra_payloads = _storage_arrays(relation, extras)
    for name, array in extra_payloads:
        if array.dtype == object:
            raise SchemaError(f"extra array {name!r} must be numeric")
        if array.shape[0] != relation.num_rows:
            raise SchemaError(
                f"extra array {name!r} has {array.shape[0]} rows, relation has "
                f"{relation.num_rows}"
            )

    offset = 0
    column_slots: list[ColumnSlot] = []
    extra_slots: list[ExtraSlot] = []
    placed: list[tuple[int, np.ndarray]] = []
    for name, logical, array, vocab in payloads:
        offset = -(-offset // _ALIGNMENT) * _ALIGNMENT
        column_slots.append(ColumnSlot(name, logical, array.dtype.str, offset, vocab))
        placed.append((offset, array))
        offset += array.nbytes
    for name, array in extra_payloads:
        offset = -(-offset // _ALIGNMENT) * _ALIGNMENT
        extra_slots.append(ExtraSlot(name, array.dtype.str, offset))
        placed.append((offset, array))
        offset += array.nbytes

    name = f"{SEGMENT_PREFIX}{uuid.uuid4().hex[:16]}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
    for slot_offset, array in placed:
        if array.size == 0:
            continue
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=slot_offset)
        view[:] = array
        del view
    descriptor = RelationDescriptor(
        segment=shm.name,
        num_rows=relation.num_rows,
        columns=tuple(column_slots),
        extras=tuple(extra_slots),
    )
    return SharedRelationHandle(shm, descriptor)


def attach_relation(
    descriptor: RelationDescriptor, window: tuple[int, int] | None = None
) -> AttachedRelation:
    """Map a shared segment and rebuild the relation over it (O(1) in rows).

    Numeric columns and code buffers are zero-copy read-only views; TEXT
    object columns are *lazy* — fragment execution works in code space, so
    the ``vocab[codes]`` gather only runs if a caller asks for the object
    array (see :class:`_LazyTextColumns`).

    ``window=(start, stop)`` attaches only that row range: numeric views
    point into the segment at the window offset and the TEXT gather runs
    over the window's codes alone, so a worker assigned one morsel pays
    for one morsel — not for the whole relation.  Extras are windowed the
    same way.  Codes still index the full shared vocab, so dictionary
    encodings stay consistent with whole-relation domain layouts.

    A descriptor with ``path`` set maps the durable page file instead of a
    ``/dev/shm`` segment — byte-identical slot layout, so everything below
    is shared between the two segment kinds.
    """
    if descriptor.path is not None:
        shm = _FileSegment(descriptor.path)
    else:
        shm = _attach_segment(descriptor.segment)
    start, stop = (0, descriptor.num_rows) if window is None else window
    if not 0 <= start <= stop <= descriptor.num_rows:
        shm.close()
        raise MosaicError(
            f"attach window [{start}, {stop}) outside relation of "
            f"{descriptor.num_rows} rows"
        )
    n = stop - start

    def view(dtype: str, offset: int) -> np.ndarray:
        spec = np.dtype(dtype)
        array = np.ndarray(
            n, dtype=spec, buffer=shm.buf, offset=offset + start * spec.itemsize
        )
        array.flags.writeable = False
        return array

    fields: list[Field] = []
    columns: dict[str, np.ndarray] = {}
    pending: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    encodings: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for slot in descriptor.columns:
        logical = DType(slot.logical)
        fields.append(Field(slot.name, logical))
        if logical is DType.TEXT:
            assert slot.vocab is not None
            vocab = np.empty(len(slot.vocab), dtype=object)
            vocab[:] = list(slot.vocab)
            codes = view(slot.dtype, slot.offset)
            # Placeholder with the right row count for the constructor's
            # length check; the lazy mapping below replaces it.
            columns[slot.name] = codes
            pending[slot.name] = (vocab, codes)
            encodings[slot.name] = (vocab, codes)
        else:
            columns[slot.name] = view(slot.dtype, slot.offset)
    extras = {slot.name: view(slot.dtype, slot.offset) for slot in descriptor.extras}
    relation = Relation(Schema(fields), columns, encodings=encodings)
    if pending:
        eager = {
            name: array
            for name, array in relation._columns.items()
            if name not in pending
        }
        relation._columns = _LazyTextColumns(eager, pending)
    return AttachedRelation(shm, relation, extras)


class SharedRelationHandle:
    """One owned segment, refcounted; unlinks exactly once at zero refs."""

    def __init__(self, shm: shared_memory.SharedMemory, descriptor: RelationDescriptor):
        self._shm = shm
        self.descriptor = descriptor
        self._refs = 1
        self._lock = threading.Lock()
        self._unlinked = False

    @property
    def segment_name(self) -> str:
        return self.descriptor.segment

    def acquire(self) -> "SharedRelationHandle":
        with self._lock:
            if self._unlinked:
                raise MosaicError(
                    f"shared segment {self.segment_name} was already released"
                )
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last release closes and unlinks."""
        with self._lock:
            if self._unlinked:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._unlinked = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - escaped view
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup raced
            pass


class MappedSegmentHandle:
    """A no-op lease over a durable page file already on disk.

    File-backed relations (``repro.storage.pages.MappedRelation``) carry
    their own :class:`RelationDescriptor`; workers mmap the page file
    directly, so there is no segment to create, refcount, or unlink —
    acquire/release exist only to satisfy the
    :class:`SharedRelationHandle` protocol.  The page file's lifetime is
    the durable store's concern (checkpoints referenced by live relations
    are never deleted; see ``repro.storage.store``).
    """

    __slots__ = ("descriptor",)

    def __init__(self, descriptor: RelationDescriptor):
        self.descriptor = descriptor

    @property
    def segment_name(self) -> str:
        return self.descriptor.segment

    def acquire(self) -> "MappedSegmentHandle":
        return self

    def release(self) -> None:
        pass


class SharedRelationStore:
    """A refcounting LRU cache of shared segments, keyed by array identity.

    Relations are immutable, so ``id(relation)`` (plus the ids of any extra
    arrays) identifies the exact bytes a segment holds; weak references on
    the sources both keep the key honest (an id can only be reused after
    the referent dies, which first evicts the entry) and garbage-collect
    segments whose relation is gone.  ``max_segments`` bounds resident
    segments: least-recently-leased entries are released first (their
    segment lives on until outstanding leases drop).  All methods are
    thread-safe; :meth:`close_all` is idempotent.
    """

    def __init__(self, max_segments: int = 16):
        self._max = max(1, max_segments)
        self._lock = threading.RLock()
        self._entries: "OrderedDict[tuple, SharedRelationHandle]" = OrderedDict()
        self._pins: dict[tuple, list] = {}  # weakrefs keeping key ids valid
        self._closed = False
        self._stats = {"shares": 0, "reuses": 0, "evictions": 0, "mmap_leases": 0}

    def lease(
        self,
        relation: Relation,
        extras: Mapping[str, np.ndarray] | None = None,
        key: tuple | None = None,
    ) -> SharedRelationHandle:
        """A handle for ``relation`` (+1 ref, caller must ``release()``).

        Serves a cached segment when the same relation (and extra arrays)
        was shared before; otherwise copies it into a new segment.

        ``key`` is an optional *stable identity* for the relation (+extras)
        — e.g. ``(sample uid, data version, ...)`` — for callers whose
        relation object is re-derived per query (view-filtered samples,
        reweighted tuples): identity-keyed entries can never hit across
        such queries, a stable key can.  The caller guarantees that equal
        keys always describe bit-identical content (version stamps make
        this trivial); stable entries are not weakref-pinned to the source
        arrays (the segment holds copies), so they survive the source
        object's death and are reclaimed by LRU eviction or close_all().
        """
        extras = dict(extras or {})
        if not extras:
            # Zero-copy fast path: a durable, file-backed relation already
            # *is* a segment on disk — workers mmap the page file via its
            # descriptor, so nothing is copied into /dev/shm at all.
            # Extras (weights, rep ids) are per-query arrays that live
            # outside the page, so any extra falls back to a copied shm
            # segment below.
            descriptor = getattr(relation, "mmap_descriptor", None)
            if descriptor is not None:
                with self._lock:
                    if self._closed:
                        raise MosaicError("shared-relation store is closed")
                    self._stats["mmap_leases"] += 1
                return MappedSegmentHandle(descriptor)
        if key is not None:
            key = ("stable", key, tuple(sorted(extras)))
        else:
            key = (id(relation), tuple(sorted((n, id(a)) for n, a in extras.items())))
        with self._lock:
            if self._closed:
                raise MosaicError("shared-relation store is closed")
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._stats["reuses"] += 1
                return cached.acquire()
        handle = share_relation(relation, extras)
        with self._lock:
            if self._closed:
                handle.release()
                raise MosaicError("shared-relation store is closed")
            raced = self._entries.get(key)
            if raced is not None:  # another thread shared the same relation
                handle.release()
                self._entries.move_to_end(key)
                self._stats["reuses"] += 1
                return raced.acquire()
            self._stats["shares"] += 1
            self._entries[key] = handle
            if key[0] != "stable":
                # Identity-keyed entries are only valid while the exact
                # source objects live — pin with weakrefs and evict on
                # death.  Stable-keyed entries outlive their sources by
                # design (the key, not the object, carries the identity).
                self._pins[key] = [
                    weakref.ref(source, lambda _, k=key: self._evict(k))
                    for source in (relation, *extras.values())
                ]
            handle.acquire()  # the caller's reference, on top of the cache's
            while len(self._entries) > self._max:
                stale_key, stale = self._entries.popitem(last=False)
                self._pins.pop(stale_key, None)
                self._stats["evictions"] += 1
                stale.release()
            return handle

    def _evict(self, key: tuple) -> None:
        """Weakref callback: a source array died, drop its segment."""
        with self._lock:
            handle = self._entries.pop(key, None)
            self._pins.pop(key, None)
        if handle is not None:
            handle.release()

    def close_all(self) -> None:
        """Release every cached segment and refuse further leases (idempotent)."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
            self._pins.clear()
            self._closed = True
        for handle in entries:
            handle.release()

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {**self._stats, "live_segments": len(self._entries)}
