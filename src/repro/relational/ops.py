"""Relational operators: filter, project, union, join, distinct, limit.

These are the physical operators the query engine composes.  Each takes and
returns :class:`~repro.relational.relation.Relation` values; none mutates
its input.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SchemaError
from repro.relational.dtypes import DType
from repro.relational.expressions import ColumnRef, Expr, validate_expression
from repro.relational.groupby import distinct_indices
from repro.relational.relation import Relation
from repro.relational.schema import Field, Schema


def filter_rows(relation: Relation, predicate: Expr) -> Relation:
    """Keep rows satisfying ``predicate`` (a BOOL-typed expression)."""
    dtype = validate_expression(predicate, relation.schema)
    if dtype is not DType.BOOL:
        raise SchemaError(f"WHERE predicate must be boolean, got {dtype.value}")
    return relation.filter(predicate.evaluate(relation))


def project_expressions(
    relation: Relation, exprs: Sequence[Expr], aliases: Sequence[str]
) -> Relation:
    """Evaluate expressions into a new relation with the given column names.

    Plain column references skip re-coercion entirely — the stored array is
    already in storage form and immutable-by-convention, so it is shared,
    and a TEXT column's dictionary encoding rides along under the alias.
    Computed expressions coerce their (fresh) output arrays as before.
    """
    if len(exprs) != len(aliases):
        raise SchemaError("projection expressions and aliases must align")
    fields = []
    columns = {}
    encodings = {}
    for expr, alias in zip(exprs, aliases):
        dtype = validate_expression(expr, relation.schema)
        fields.append(Field(alias, dtype))
        if isinstance(expr, ColumnRef):
            columns[alias] = relation.column(expr.name)
            encoding = relation.encoding(expr.name)
            if encoding is not None:
                encodings[alias] = encoding
        else:
            columns[alias] = dtype.coerce_array(expr.evaluate(relation))
    return Relation(Schema(fields), columns, encodings=encodings)


def union_all(relations: Sequence[Relation]) -> Relation:
    """Vertical union of relations sharing one schema."""
    if not relations:
        raise SchemaError("union of zero relations")
    result = relations[0]
    for rel in relations[1:]:
        result = result.concat(rel)
    return result


def distinct(relation: Relation, keys: Sequence[str] | None = None) -> Relation:
    """First occurrence of each distinct key combination (all columns if None)."""
    keys = list(keys) if keys is not None else list(relation.column_names)
    indices = distinct_indices(relation, keys)
    return relation.take(np.sort(indices))


def hash_join(
    left: Relation,
    right: Relation,
    left_key: str,
    right_key: str,
    suffix: str = "_right",
) -> Relation:
    """Inner equi-join on one key column per side.

    Right-side columns whose names collide with left-side names get
    ``suffix`` appended (the join key from the right is dropped, since it
    equals the left key on every output row).
    """
    left.schema.field(left_key)
    right.schema.field(right_key)

    buckets: dict[object, list[int]] = {}
    right_values = right.column(right_key)
    for i in range(right.num_rows):
        buckets.setdefault(_hashable(right_values[i]), []).append(i)

    left_indices: list[int] = []
    right_indices: list[int] = []
    left_values = left.column(left_key)
    for i in range(left.num_rows):
        for j in buckets.get(_hashable(left_values[i]), ()):
            left_indices.append(i)
            right_indices.append(j)

    left_out = left.take(np.asarray(left_indices, dtype=np.int64))
    right_out = right.take(np.asarray(right_indices, dtype=np.int64)).drop_column(right_key)

    rename: dict[str, str] = {}
    for name in right_out.column_names:
        if name in left_out.schema:
            rename[name] = f"{name}{suffix}"
    right_out = right_out.rename(rename) if rename else right_out

    schema = left_out.schema.concat(right_out.schema)
    columns = {name: left_out.column(name) for name in left_out.column_names}
    columns.update({name: right_out.column(name) for name in right_out.column_names})
    # take()/rename() above already sliced each side's dictionary encodings;
    # column names are unique post-suffix, so both sides' encodings carry
    # straight into the stitched relation.
    encodings = {
        name: entry
        for side in (left_out, right_out)
        for name, entry in ((n, side.encoding(n)) for n in side.column_names)
        if entry is not None
    }
    return Relation(schema, columns, encodings=encodings)


def limit(relation: Relation, n: int) -> Relation:
    if n < 0:
        raise SchemaError(f"LIMIT must be non-negative, got {n}")
    return relation.head(n)


def _hashable(value) -> object:
    if isinstance(value, np.generic):
        return value.item()
    return value
