"""Stdlib HTTP endpoint serving metrics in Prometheus text format.

A :class:`MetricsExporter` wraps a ``render`` callable (typically one or
more :meth:`MetricsRegistry.render_prometheus` outputs concatenated) in
a threaded ``http.server`` listening on its own port — deliberately
independent of the asyncio query loop, so a scrape can never be starved
by (or starve) query traffic, and the same exporter serves
``repro.server`` and ``repro.fleet`` unchanged (``--metrics-port``).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

__all__ = ["MetricsExporter"]

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsExporter:
    """Serve ``GET /metrics`` (and ``/``) from a render callable."""

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._render = render
        self.host = host
        self.port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "MetricsExporter":
        render = self._render

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served here")
                    return
                try:
                    body = render().encode("utf-8")
                except Exception as exc:  # render must never kill the scrape
                    self.send_error(500, f"metrics render failed: {exc}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", _CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # keep stderr quiet
                pass

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="mosaic-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
