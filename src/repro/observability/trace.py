"""Per-query trace spans with context propagation and sampling.

A :class:`QueryTrace` records a flat list of named spans (start offset +
duration + free-form annotations) plus trace-level metadata and child
traces (the fleet router stitches per-shard traces under one gather).
The active trace travels in a :mod:`contextvars` variable so deep layers
— plan compilation, the OPEN repetition loop, the morsel pool — can
annotate the current query without every signature growing a parameter.

Sampling (``MOSAIC_TRACE_SAMPLE``) is counter-based, not random: a rate
of ``r`` traces every ``round(1/r)``-th query, deterministically, so a
given workload always traces the same queries and the untraced majority
pays only an env read and a counter bump.  ``1`` traces everything,
``0`` disables tracing entirely.  The default (:data:`DEFAULT_SAMPLE`)
traces one query in 64 — always-on visibility whose p50 cost on the
CLOSED hot path is zero, because the median query runs the untraced
path (the <3% budget asserted in ``BENCH_server.json``).

``EXPLAIN ANALYZE`` bypasses sampling: the user asked for the trace.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter

__all__ = [
    "DEFAULT_SAMPLE",
    "QueryTrace",
    "current_trace",
    "maybe_trace",
    "new_trace_id",
    "trace_sample_rate",
]

#: Default sampling rate when ``MOSAIC_TRACE_SAMPLE`` is unset: one
#: query in 64 carries a full trace.
DEFAULT_SAMPLE = 1.0 / 64.0

_ENV_VAR = "MOSAIC_TRACE_SAMPLE"

_current: ContextVar["QueryTrace | None"] = ContextVar("mosaic_trace", default=None)

#: Monotonically increasing trace-id source.  The process-unique prefix
#: (urandom, drawn once) keeps ids globally unique across shard
#: processes; the counter keeps them unique and cheap within one.
_id_prefix = os.urandom(4).hex()
_id_counter = itertools.count(1)

# Sampling state: (raw env string, parsed rate) cache + query counter.
_rate_cache: tuple[str | None, float] = (None, DEFAULT_SAMPLE)
_sample_counter = itertools.count()


def new_trace_id() -> str:
    """A globally unique 16-hex-char trace id."""
    return f"{_id_prefix}{next(_id_counter):08x}"


def trace_sample_rate() -> float:
    """The effective sampling rate (``MOSAIC_TRACE_SAMPLE``, clamped to
    [0, 1]; unparseable values fall back to :data:`DEFAULT_SAMPLE`)."""
    global _rate_cache
    raw = os.environ.get(_ENV_VAR)
    cached_raw, cached_rate = _rate_cache
    if raw == cached_raw:
        return cached_rate
    if raw is None:
        rate = DEFAULT_SAMPLE
    else:
        try:
            rate = min(1.0, max(0.0, float(raw)))
        except ValueError:
            rate = DEFAULT_SAMPLE
    _rate_cache = (raw, rate)
    return rate


def maybe_trace() -> "QueryTrace | None":
    """A new :class:`QueryTrace` for this query, or ``None`` if the
    deterministic sampler skips it.  This is the hot-path gate: the
    skip branch costs one env read and one counter increment."""
    rate = trace_sample_rate()
    if rate <= 0.0:
        return None
    period = max(1, round(1.0 / rate))
    if next(_sample_counter) % period != 0:
        return None
    return QueryTrace()


def current_trace() -> "QueryTrace | None":
    """The trace active in this context, or ``None``.  Every
    instrumentation site guards on this, so untraced queries skip all
    recording."""
    return _current.get()


class QueryTrace:
    """One query's spans, annotations, and stitched child traces.

    Spans are plain dicts (``name``, ``start_ms``, ``ms``, plus whatever
    the instrumented site annotates) appended in completion order —
    cheap to record, trivially JSON-serializable for the wire ``trace``
    header.  A trace is built by exactly one thread at a time (the
    thread executing the query), so recording needs no locking.
    """

    __slots__ = ("trace_id", "explain", "spans", "meta", "children", "_t0", "_total_ms")

    def __init__(self, trace_id: str | None = None, explain: bool = False):
        self.trace_id = trace_id or new_trace_id()
        #: True when the user asked for the trace (EXPLAIN ANALYZE):
        #: enables the per-plan-node recording the sampled path skips.
        self.explain = explain
        self.spans: list[dict] = []
        self.meta: dict = {}
        self.children: list[dict] = []
        self._t0 = perf_counter()
        self._total_ms: float | None = None

    # -- recording ------------------------------------------------------ #

    @contextmanager
    def activate(self):
        """Make this the context's current trace for the duration."""
        token = _current.set(self)
        try:
            yield self
        finally:
            _current.reset(token)

    @contextmanager
    def span(self, name: str, **annotations):
        """Record one named span around the ``with`` body.  The yielded
        dict is the span itself — mutate it to annotate."""
        entry: dict = {"name": name, "start_ms": self._elapsed_ms(), "ms": 0.0}
        if annotations:
            entry.update(annotations)
        started = perf_counter()
        try:
            yield entry
        finally:
            entry["ms"] = round((perf_counter() - started) * 1e3, 4)
            self.spans.append(entry)

    def annotate(self, key: str, value) -> None:
        """Attach trace-level metadata (visibility, cache provenance,
        adaptive-stop details, ...)."""
        self.meta[key] = value

    def add_child(self, child: dict) -> None:
        """Stitch a serialized child trace (e.g. one shard's trace of a
        scattered query) under this one."""
        self.children.append(child)

    def finish(self) -> None:
        """Freeze the total duration (idempotent)."""
        if self._total_ms is None:
            self._total_ms = self._elapsed_ms()

    def _elapsed_ms(self) -> float:
        return round((perf_counter() - self._t0) * 1e3, 4)

    # -- serialization -------------------------------------------------- #

    def to_dict(self) -> dict:
        """JSON-safe form for the wire ``trace`` response-header field."""
        self.finish()
        payload: dict = {
            "trace_id": self.trace_id,
            "total_ms": self._total_ms,
            "spans": self.spans,
        }
        if self.meta:
            payload["meta"] = self.meta
        if self.children:
            payload["children"] = self.children
        return payload
