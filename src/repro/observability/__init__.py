"""Zero-dependency tracing + metrics for every layer of the stack.

Three pieces (ARCHITECTURE.md §9):

- :mod:`repro.observability.trace` — per-query spans.  A
  :class:`QueryTrace` is activated around a query (a ``contextvars``
  context, so the engine, kernels, and worker dispatch can annotate it
  without threading a handle through every signature), serialized into
  the append-only ``trace`` response-header field, and stitched across
  processes by the fleet router.  ``MOSAIC_TRACE_SAMPLE`` keeps the
  CLOSED hot path fast: untraced queries pay one env read and one
  counter bump.
- :mod:`repro.observability.metrics` — a typed registry of counters,
  gauges, and fixed-bucket histograms.  Writes are lock-free (per-thread
  shards merged on read); reads snapshot under one registry lock, so a
  scrape never observes a half-registered family.
- :mod:`repro.observability.exporter` — a stdlib HTTP endpoint serving
  the registry in Prometheus text exposition format
  (``--metrics-port`` on ``repro.server`` and ``repro.fleet``).
"""

from repro.observability.exporter import MetricsExporter
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.trace import (
    QueryTrace,
    current_trace,
    maybe_trace,
    new_trace_id,
    trace_sample_rate,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsExporter",
    "MetricsRegistry",
    "QueryTrace",
    "current_trace",
    "maybe_trace",
    "new_trace_id",
    "trace_sample_rate",
]
