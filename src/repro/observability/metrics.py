"""Typed metrics: counters, gauges, fixed-bucket histograms, a registry.

Write path: lock-free.  Each :class:`Counter`/:class:`Histogram` keeps
per-thread shards (a dict keyed by thread id — a thread only ever
mutates its own entry, and CPython dict operations are atomic under the
GIL), merged on read.  A hot-loop increment is therefore a dict store,
never a lock acquisition, and two threads incrementing the same counter
can never lose an update — the race the old ``self._x += 1`` pattern
under the engine's *read* lock allowed.

Read path: consistent.  :meth:`MetricsRegistry.snapshot` and
:meth:`MetricsRegistry.render_prometheus` iterate the metric families
under the registry lock, so a scrape never sees a half-registered
family; individual values are single merged reads.

Exposition: :meth:`MetricsRegistry.render_prometheus` emits Prometheus
text format 0.0.4 (``# HELP`` / ``# TYPE`` / samples, histograms as
cumulative ``_bucket{le=...}`` plus ``_sum``/``_count``) — scrapeable by
any Prometheus-compatible collector with zero dependencies here.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default latency buckets (milliseconds): sub-ms kernel work through
#: multi-second OPEN generation.
DEFAULT_BUCKETS_MS = (
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
)


def _label_key(labels: dict[str, str] | None) -> tuple:
    return tuple(sorted((labels or {}).items()))


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: dict[str, str] | None) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class Counter:
    """Monotonic counter with lock-free per-thread sharded writes."""

    kind = "counter"

    __slots__ = ("name", "help", "labels", "_shards")

    def __init__(self, name: str, help: str = "", labels: dict[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._shards: dict[int, float] = {}

    def inc(self, amount: float = 1) -> None:
        shards = self._shards
        ident = threading.get_ident()
        shards[ident] = shards.get(ident, 0) + amount

    def value(self) -> float:
        return sum(self._shards.values())

    def samples(self) -> Iterable[tuple[str, dict, float]]:
        yield self.name, self.labels, self.value()


class Gauge:
    """Point-in-time value: either set explicitly or backed by a callable
    evaluated at read time (cache sizes, live connections, ...)."""

    kind = "gauge"

    __slots__ = ("name", "help", "labels", "_value", "_fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        fn: Callable[[], float] | None = None,
    ):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def samples(self) -> Iterable[tuple[str, dict, float]]:
        yield self.name, self.labels, self.value()


class Histogram:
    """Fixed-bucket histogram with lock-free per-thread sharded writes.

    Each thread owns a ``[bucket counts..., sum, count]`` list; observes
    mutate only that thread's list, reads merge all of them.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "labels", "buckets", "_shards")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS,
    ):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.buckets = tuple(sorted(buckets))
        self._shards: dict[int, list[float]] = {}

    def observe(self, value: float) -> None:
        shards = self._shards
        ident = threading.get_ident()
        shard = shards.get(ident)
        if shard is None:
            shard = [0.0] * (len(self.buckets) + 3)  # buckets + inf + sum + count
            shards[ident] = shard
        shard[bisect_left(self.buckets, value)] += 1
        shard[-2] += value
        shard[-1] += 1

    def value(self) -> dict:
        """Merged view: cumulative bucket counts, sum, count."""
        merged = [0.0] * (len(self.buckets) + 3)
        for shard in list(self._shards.values()):
            for index, count in enumerate(shard):
                merged[index] += count
        cumulative: list[tuple[float, float]] = []
        running = 0.0
        for index, upper in enumerate(self.buckets):
            running += merged[index]
            cumulative.append((upper, running))
        running += merged[len(self.buckets)]
        cumulative.append((float("inf"), running))
        return {"buckets": cumulative, "sum": merged[-2], "count": merged[-1]}

    def samples(self) -> Iterable[tuple[str, dict, float]]:
        merged = self.value()
        for upper, cumulative in merged["buckets"]:
            le = "+Inf" if upper == float("inf") else _format_value(upper)
            yield f"{self.name}_bucket", {**self.labels, "le": le}, cumulative
        yield f"{self.name}_sum", self.labels, merged["sum"]
        yield f"{self.name}_count", self.labels, merged["count"]


class MetricsRegistry:
    """A named, labeled set of metrics with consistent reads.

    Registration is idempotent: asking for an existing ``(name, labels)``
    pair returns the live metric (a name registered as one kind cannot be
    re-registered as another).  ``snapshot()`` and ``render_prometheus()``
    take the registry lock so the family set is stable for the whole
    read — the "consistent registry view" the scattered per-subsystem
    dicts could not give.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}

    def _register(self, factory, name: str, labels: dict[str, str] | None, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, factory):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = factory(name, labels=labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        return self._register(Counter, name, labels, help=help)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        fn: Callable[[], float] | None = None,
    ) -> Gauge:
        gauge = self._register(Gauge, name, labels, help=help)
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS,
    ) -> Histogram:
        return self._register(Histogram, name, labels, help=help, buckets=buckets)

    def snapshot(self) -> dict:
        """One consistent, JSON-safe read of every registered metric.

        Keys are ``name`` or ``name{label="v",...}``; counter/gauge
        values are numbers, histograms nested dicts.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        payload: dict = {}
        for metric in metrics:
            key = metric.name + _label_text(metric.labels)
            if isinstance(metric, Histogram):
                merged = metric.value()
                payload[key] = {
                    "count": merged["count"],
                    "sum": merged["sum"],
                    "buckets": [
                        ["+Inf" if upper == float("inf") else upper, cumulative]
                        for upper, cumulative in merged["buckets"]
                    ],
                }
            else:
                payload[key] = metric.value()
        return payload

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4 for every metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in metrics:
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, labels, value in metric.samples():
                lines.append(f"{sample_name}{_label_text(labels)} {_format_value(value)}")
        return "\n".join(lines) + "\n"
