"""Marginal metadata: ground-truth 1-D / 2-D histograms over populations.

The paper (Sec. 3.2): *"we focus on using aggregate values for one or two
attributes; i.e., 1- or 2-dimensional histograms. ... When Mosaic answers
queries over populations, it ensures these marginals are satisfied."*

A :class:`Marginal` stores, per cell (attribute value or value pair), a
non-negative mass.  Masses are the reported population counts, so the total
mass of any marginal over the same population should agree — that is how
the engine learns the population size.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import CatalogError
from repro.relational.groupby import group_rows
from repro.relational.relation import Relation


class Marginal:
    """A weighted histogram over one or two population attributes.

    ``attributes`` is a 1- or 2-tuple of column names; ``cells`` maps each
    value (or value pair) to its reported population count.
    """

    def __init__(self, attributes: Sequence[str], cells: Mapping[tuple, float], name: str = ""):
        attributes = tuple(attributes)
        if len(attributes) not in (1, 2):
            raise CatalogError(
                f"marginals must cover 1 or 2 attributes, got {len(attributes)}"
            )
        if len(set(attributes)) != len(attributes):
            raise CatalogError(f"marginal attributes must be distinct: {attributes}")
        clean: dict[tuple, float] = {}
        for key, mass in cells.items():
            key = key if isinstance(key, tuple) else (key,)
            if len(key) != len(attributes):
                raise CatalogError(
                    f"cell key {key} does not match attributes {attributes}"
                )
            mass = float(mass)
            if mass < 0:
                raise CatalogError(f"negative marginal mass for cell {key}: {mass}")
            if key in clean:
                raise CatalogError(f"duplicate marginal cell: {key}")
            clean[key] = mass
        if not clean:
            raise CatalogError("marginal has no cells")
        self.attributes = attributes
        self.name = name
        self._cells = clean

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_relation(
        cls,
        attributes: Sequence[str],
        relation: Relation,
        count_column: str,
        name: str = "",
    ) -> "Marginal":
        """Build from a relation of ``(attribute values..., count)`` rows.

        This is what ``CREATE METADATA ... AS (SELECT a, cnt FROM aux)``
        produces.  Duplicate attribute-value rows are summed.
        """
        cells: dict[tuple, float] = {}
        value_columns = [relation.column(a) for a in attributes]
        counts = relation.column(count_column)
        for i in range(relation.num_rows):
            key = tuple(_native(col[i]) for col in value_columns)
            cells[key] = cells.get(key, 0.0) + float(counts[i])
        return cls(attributes, cells, name=name)

    @classmethod
    def from_data(
        cls,
        relation: Relation,
        attributes: Sequence[str],
        weights: np.ndarray | None = None,
        name: str = "",
    ) -> "Marginal":
        """Compute the marginal of an actual dataset (optionally weighted).

        Used to manufacture "ground truth" marginals from a synthetic
        population, and to measure how well a reweighted/generated sample
        fits a target marginal.
        """
        cells: dict[tuple, float] = {}
        for key, indices in group_rows(relation, list(attributes)):
            if weights is None:
                cells[key] = float(len(indices))
            else:
                cells[key] = float(np.sum(np.asarray(weights)[indices]))
        return cls(attributes, cells, name=name)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def ndim(self) -> int:
        return len(self.attributes)

    @property
    def total_mass(self) -> float:
        return float(sum(self._cells.values()))

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    def mass(self, key: tuple) -> float:
        key = key if isinstance(key, tuple) else (key,)
        return self._cells.get(key, 0.0)

    def cells(self) -> Iterator[tuple[tuple, float]]:
        return iter(self._cells.items())

    def keys(self) -> Iterable[tuple]:
        return self._cells.keys()

    def normalized(self) -> dict[tuple, float]:
        """Cells as probabilities (mass / total mass)."""
        total = self.total_mass
        if total <= 0:
            raise CatalogError(f"marginal {self.name or self.attributes} has zero mass")
        return {key: mass / total for key, mass in self._cells.items()}

    def project(self, attribute: str) -> "Marginal":
        """Collapse a 2-D marginal onto one of its attributes."""
        if attribute not in self.attributes:
            raise CatalogError(
                f"cannot project marginal over {self.attributes} onto {attribute!r}"
            )
        if self.ndim == 1:
            return self
        axis = self.attributes.index(attribute)
        cells: dict[tuple, float] = {}
        for key, mass in self._cells.items():
            sub = (key[axis],)
            cells[sub] = cells.get(sub, 0.0) + mass
        return Marginal((attribute,), cells, name=f"{self.name}|{attribute}")

    def l1_distance(self, other: "Marginal") -> float:
        """Total variation-style distance between two normalised marginals."""
        if tuple(other.attributes) != self.attributes:
            raise CatalogError(
                f"cannot compare marginals over {self.attributes} and {other.attributes}"
            )
        mine, theirs = self.normalized(), other.normalized()
        keys = set(mine) | set(theirs)
        return float(sum(abs(mine.get(k, 0.0) - theirs.get(k, 0.0)) for k in keys))

    def to_relation(self) -> Relation:
        """Materialise as a relation of ``(*attributes, mass)`` rows."""
        columns: dict[str, list] = {a: [] for a in self.attributes}
        masses: list[float] = []
        for key, mass in sorted(self._cells.items(), key=lambda kv: tuple(map(str, kv[0]))):
            for attribute, value in zip(self.attributes, key):
                columns[attribute].append(value)
            masses.append(mass)
        columns["mass"] = masses
        return Relation.from_dict(columns)

    def __repr__(self) -> str:
        label = self.name or "marginal"
        return (
            f"Marginal({label}, attrs={self.attributes}, cells={self.num_cells}, "
            f"mass={self.total_mass:g})"
        )


def _native(value):
    if isinstance(value, np.generic):
        return value.item()
    return value
