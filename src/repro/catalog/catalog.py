"""The catalog: the registry of every named object in a Mosaic database."""

from __future__ import annotations

from repro.catalog.metadata import Marginal
from repro.catalog.population import PopulationRelation
from repro.catalog.sample import SampleRelation
from repro.errors import CatalogError, DuplicateRelationError, UnknownRelationError
from repro.relational.relation import Relation


class Catalog:
    """Name → object registry for auxiliary tables, populations, samples,
    and metadata.

    Names share one namespace (as in the paper's examples, where
    populations and samples are queried with identical syntax), so a lookup
    by name can always be disambiguated.

    **Locking contract** (see ``ARCHITECTURE.md``): the catalog has no
    locks of its own.  The owning :class:`~repro.core.engine.Engine`
    serializes every mutation (create/drop/register, sample data and
    weight swaps) under the write side of its readers-writer lock and runs
    SELECTs under the read side, so within a query the registry and every
    object's ``uid`` / ``version`` / ``metadata_version`` are frozen —
    version stamps read under the read lock are consistent with the data
    they describe.  Callers outside an engine get no thread safety.
    """

    def __init__(self) -> None:
        self._auxiliary: dict[str, Relation] = {}
        # Per-auxiliary data version: bumps on create and on every
        # replace (INSERT).  Samples carry their own ``version``; this
        # gives auxiliary tables the same stable (name, version) identity
        # so caches (e.g. shared-memory segments) can key on data content
        # instead of Python object identity.
        self._auxiliary_versions: dict[str, int] = {}
        self._populations: dict[str, PopulationRelation] = {}
        self._samples: dict[str, SampleRelation] = {}
        self._metadata_owner: dict[str, str] = {}  # metadata name -> population name
        self._global_population: str | None = None
        #: Monotonically increasing DDL counter: bumps on every create/drop/
        #: register operation (not on DML like INSERT, which bumps only the
        #: touched sample's version).  Cache layers use it for statistics and
        #: coarse "has the schema landscape changed" checks.
        self.version = 0

    def _bump(self) -> None:
        self.version += 1

    # ------------------------------------------------------------------ #
    # Name management
    # ------------------------------------------------------------------ #

    def _assert_fresh(self, name: str) -> None:
        if name in self._auxiliary or name in self._populations or name in self._samples:
            raise DuplicateRelationError(name)

    def exists(self, name: str) -> bool:
        return name in self._auxiliary or name in self._populations or name in self._samples

    def kind_of(self, name: str) -> str:
        """One of ``"auxiliary" | "population" | "sample"``."""
        if name in self._auxiliary:
            return "auxiliary"
        if name in self._populations:
            return "population"
        if name in self._samples:
            return "sample"
        raise UnknownRelationError(name)

    # ------------------------------------------------------------------ #
    # Auxiliary tables
    # ------------------------------------------------------------------ #

    def create_auxiliary(self, name: str, relation: Relation) -> None:
        self._assert_fresh(name)
        self._auxiliary[name] = relation
        # Never resets across DROP + CREATE of the same name, so a given
        # (name, version) pair always refers to one concrete relation.
        self._auxiliary_versions[name] = self._auxiliary_versions.get(name, 0) + 1
        self._bump()

    def replace_auxiliary(self, name: str, relation: Relation) -> None:
        if name not in self._auxiliary:
            raise UnknownRelationError(name)
        self._auxiliary[name] = relation
        self._auxiliary_versions[name] += 1

    def auxiliary_version(self, name: str) -> int:
        """Monotonic data version of an auxiliary table (bumps on replace)."""
        version = self._auxiliary_versions.get(name)
        if version is None:
            raise UnknownRelationError(name)
        return version

    def auxiliary(self, name: str) -> Relation:
        relation = self._auxiliary.get(name)
        if relation is None:
            raise UnknownRelationError(name)
        return relation

    @property
    def auxiliary_names(self) -> list[str]:
        return sorted(self._auxiliary)

    # ------------------------------------------------------------------ #
    # Populations
    # ------------------------------------------------------------------ #

    def create_population(self, population: PopulationRelation) -> None:
        self._assert_fresh(population.name)
        if population.is_global:
            if self._global_population is not None:
                raise CatalogError(
                    f"a global population already exists: {self._global_population!r} "
                    "(the paper assumes a single GP; see Sec. 7 'Multiple Populations')"
                )
            self._global_population = population.name
        else:
            source = population.source_population
            if source is None or source not in self._populations:
                raise CatalogError(
                    f"population {population.name!r} must be defined over an existing "
                    f"global population, got {source!r}"
                )
            if not self._populations[source].is_global:
                raise CatalogError(
                    f"population {population.name!r} must be defined over the GLOBAL "
                    f"population, but {source!r} is not global"
                )
        self._populations[population.name] = population
        self._bump()

    def population(self, name: str) -> PopulationRelation:
        population = self._populations.get(name)
        if population is None:
            raise UnknownRelationError(name)
        return population

    @property
    def population_names(self) -> list[str]:
        return sorted(self._populations)

    @property
    def global_population(self) -> PopulationRelation | None:
        if self._global_population is None:
            return None
        return self._populations[self._global_population]

    def require_global_population(self) -> PopulationRelation:
        gp = self.global_population
        if gp is None:
            raise CatalogError("no GLOBAL POPULATION has been created")
        return gp

    # ------------------------------------------------------------------ #
    # Samples
    # ------------------------------------------------------------------ #

    def create_sample(self, sample: SampleRelation) -> None:
        self._assert_fresh(sample.name)
        if sample.population not in self._populations:
            raise CatalogError(
                f"sample {sample.name!r} references unknown population "
                f"{sample.population!r}"
            )
        self._samples[sample.name] = sample
        self._bump()

    def sample(self, name: str) -> SampleRelation:
        sample = self._samples.get(name)
        if sample is None:
            raise UnknownRelationError(name)
        return sample

    @property
    def sample_names(self) -> list[str]:
        return sorted(self._samples)

    def samples_of(self, population_name: str) -> list[SampleRelation]:
        """Every sample drawn from ``population_name`` (registration order)."""
        return [s for s in self._samples.values() if s.population == population_name]

    # ------------------------------------------------------------------ #
    # Metadata
    # ------------------------------------------------------------------ #

    def register_metadata(
        self, metadata_name: str, population_name: str, marginal: Marginal
    ) -> None:
        if metadata_name in self._metadata_owner:
            raise CatalogError(f"metadata {metadata_name!r} already exists")
        population = self.population(population_name)
        population.add_marginal(metadata_name, marginal)
        self._metadata_owner[metadata_name] = population_name
        self._bump()

    def metadata_population(self, metadata_name: str) -> str:
        owner = self._metadata_owner.get(metadata_name)
        if owner is None:
            raise UnknownRelationError(metadata_name)
        return owner

    def resolve_metadata_population(self, metadata_name: str, explicit: str | None) -> str:
        """Which population a ``CREATE METADATA`` statement targets.

        Priority: an explicit ``FOR <population>`` clause; otherwise the
        paper's naming convention ``<population>_Mk`` (longest matching
        population-name prefix before an underscore); otherwise the single
        existing population, if there is exactly one.
        """
        if explicit is not None:
            self.population(explicit)
            return explicit
        candidates = [
            name
            for name in self._populations
            if metadata_name == name or metadata_name.startswith(f"{name}_")
        ]
        if candidates:
            return max(candidates, key=len)
        if len(self._populations) == 1:
            return next(iter(self._populations))
        raise CatalogError(
            f"cannot infer which population metadata {metadata_name!r} belongs to; "
            "use CREATE METADATA <name> FOR <population> AS (...) or the "
            "<population>_Mk naming convention"
        )

    # ------------------------------------------------------------------ #
    # Drop
    # ------------------------------------------------------------------ #

    def drop(self, kind: str, name: str) -> None:
        kind = kind.upper()
        if kind == "TABLE":
            if name not in self._auxiliary:
                raise UnknownRelationError(name)
            del self._auxiliary[name]
            self._bump()
            return
        if kind == "POPULATION":
            if name not in self._populations:
                raise UnknownRelationError(name)
            dependents = [s.name for s in self.samples_of(name)]
            if dependents:
                raise CatalogError(
                    f"cannot drop population {name!r}: samples {dependents} depend on it"
                )
            derived = [
                p.name for p in self._populations.values() if p.source_population == name
            ]
            if derived:
                raise CatalogError(
                    f"cannot drop population {name!r}: populations {derived} are views over it"
                )
            for metadata_name in [
                m for m, owner in self._metadata_owner.items() if owner == name
            ]:
                del self._metadata_owner[metadata_name]
            if self._global_population == name:
                self._global_population = None
            del self._populations[name]
            self._bump()
            return
        if kind == "SAMPLE":
            if name not in self._samples:
                raise UnknownRelationError(name)
            del self._samples[name]
            self._bump()
            return
        if kind == "METADATA":
            owner = self._metadata_owner.get(name)
            if owner is None:
                raise UnknownRelationError(name)
            self._populations[owner].drop_marginal(name)
            del self._metadata_owner[name]
            self._bump()
            return
        raise CatalogError(f"unknown DROP kind: {kind!r}")

    def __repr__(self) -> str:
        return (
            f"Catalog(auxiliary={len(self._auxiliary)}, "
            f"populations={len(self._populations)}, samples={len(self._samples)})"
        )
