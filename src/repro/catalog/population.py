"""Population relations: queryable sets of tuples that need not exist."""

from __future__ import annotations

import itertools

from repro.catalog.metadata import Marginal
from repro.errors import CatalogError
from repro.relational.expressions import Expr
from repro.relational.schema import Schema


class PopulationRelation:
    """A population the user can query (paper Sec. 3.1, relation kind 1).

    A population never stores tuples.  The *global* population (GP) is the
    reference everything else is defined against; a non-global population is
    a view ``SELECT ... FROM <gp> WHERE <predicate>`` over the GP.

    Marginal metadata attached to a population (``CREATE METADATA``) is the
    ground truth the engine fits reweighting and generation against.

    ``uid`` is process-unique; ``metadata_version`` increases monotonically
    whenever a marginal is added or dropped.  Caches of artifacts fitted
    against this population's metadata (IPF reweights, OPEN generators)
    stamp their entries with the version, so metadata changes invalidate
    exactly the artifacts derived from this population and nothing else.

    Marginal mutation (``add_marginal`` / ``drop_marginal``) happens only
    under the engine's write lock; queries holding the read lock see
    ``metadata_version`` and the marginal dict in lockstep.
    """

    _uid_counter = itertools.count()

    def __init__(
        self,
        name: str,
        schema: Schema,
        is_global: bool = False,
        source_population: str | None = None,
        defining_predicate: Expr | None = None,
    ):
        if not is_global and source_population is None:
            raise CatalogError(
                f"population {name!r} must either be GLOBAL or be defined as a "
                "SELECT over a global population"
            )
        self.name = name
        self.schema = schema
        self.is_global = is_global
        self.source_population = source_population
        self.defining_predicate = defining_predicate
        self.uid = next(PopulationRelation._uid_counter)
        self.metadata_version = 0
        self._marginals: dict[str, Marginal] = {}

    # ------------------------------------------------------------------ #
    # Metadata
    # ------------------------------------------------------------------ #

    def add_marginal(self, name: str, marginal: Marginal) -> None:
        if name in self._marginals:
            raise CatalogError(f"metadata {name!r} already exists on population {self.name!r}")
        for attribute in marginal.attributes:
            if attribute not in self.schema:
                raise CatalogError(
                    f"metadata {name!r} references {attribute!r}, which is not an "
                    f"attribute of population {self.name!r}"
                )
        self._marginals[name] = marginal
        self.metadata_version += 1

    def drop_marginal(self, name: str) -> None:
        if name not in self._marginals:
            raise CatalogError(f"no metadata {name!r} on population {self.name!r}")
        del self._marginals[name]
        self.metadata_version += 1

    @property
    def marginals(self) -> dict[str, Marginal]:
        return dict(self._marginals)

    @property
    def has_metadata(self) -> bool:
        return bool(self._marginals)

    def marginal_list(self) -> list[Marginal]:
        return list(self._marginals.values())

    def estimated_size(self) -> float | None:
        """Population size implied by the metadata.

        Every marginal over the full population should report the same
        total mass; we use the median across marginals for robustness to
        slightly inconsistent reports.
        """
        if not self._marginals:
            return None
        totals = sorted(m.total_mass for m in self._marginals.values())
        mid = len(totals) // 2
        if len(totals) % 2:
            return totals[mid]
        return 0.5 * (totals[mid - 1] + totals[mid])

    def __repr__(self) -> str:
        kind = "GLOBAL POPULATION" if self.is_global else "POPULATION"
        return f"{kind} {self.name} ({', '.join(self.schema.names)})"
