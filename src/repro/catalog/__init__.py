"""The Mosaic data model: populations, samples, marginal metadata, catalog.

Three relation kinds (paper Sec. 3.1):

- **Population** (:class:`~repro.catalog.population.PopulationRelation`) —
  a set of tuples that *could* exist but is not fully known; queried, never
  stored.
- **Sample** (:class:`~repro.catalog.sample.SampleRelation`) — concrete
  tuples from the global population, with per-tuple weights (initialised to
  one) and an optional known sampling mechanism.
- **Auxiliary** — ordinary SQL tables used for staging/ingestion; stored
  directly in the catalog as plain relations.

Population metadata (Sec. 3.2) is 1- or 2-dimensional marginal histograms
(:class:`~repro.catalog.metadata.Marginal`).
"""

from repro.catalog.catalog import Catalog
from repro.catalog.metadata import Marginal
from repro.catalog.population import PopulationRelation
from repro.catalog.sample import SampleRelation

__all__ = ["Catalog", "Marginal", "PopulationRelation", "SampleRelation"]
